"""Benchmark: regenerate Figure 1 (per-client accuracy vs pruning %).

Sub-FedAvg (Un) on the CIFAR-10 family, sweeping target pruning rates and
printing the per-client (sparsity, accuracy) series the figure plots.
"""

import pytest

from repro.experiments import fig1_series, run_fig1_trajectory, run_sparsity_sweep

TARGETS = (0.0, 0.3, 0.5, 0.7)


@pytest.mark.benchmark(group="fig1")
def test_fig1_cifar10(benchmark, once, capsys):
    points = once(
        benchmark,
        run_sparsity_sweep,
        "cifar10",
        targets=TARGETS,
        preset="smoke",
        seed=0,
    )
    sampled_clients = list(points[0].per_client_accuracy)[:4]
    series = fig1_series(points, sampled_clients)

    with capsys.disabled():
        print("\nFigure 1 — cifar10: test accuracy vs pruning % (sampled clients)")
        for client_id, curve in series.items():
            formatted = ", ".join(f"({s:.2f}, {a:.3f})" for s, a in curve)
            print(f"  client {client_id}: {formatted}")

    assert len(points) == len(TARGETS)
    # Sparsity grows along the sweep.
    sparsities = [point.achieved_sparsity for point in points]
    assert sparsities == sorted(sparsities)
    # Every sampled client produced a full curve.
    assert all(len(curve) == len(TARGETS) for curve in series.values())


@pytest.mark.benchmark(group="fig1")
def test_fig1_in_run_trajectory(benchmark, once, capsys):
    """The figure's literal form: one run, 5-10% pruning per iteration."""
    curves = once(
        benchmark, run_fig1_trajectory, "mnist", preset="smoke", seed=0, step=0.08
    )
    with capsys.disabled():
        print("\nFigure 1 (trajectory form) — mnist: per-client (sparsity, acc)")
        for client_id, curve in sorted(curves.items())[:5]:
            formatted = ", ".join(f"({s:.2f}, {a:.3f})" for s, a in curve)
            print(f"  client {client_id}: {formatted}")

    assert curves, "no trajectory points recorded"
    for curve in curves.values():
        sparsities = [s for s, _ in curve]
        # Within a client, sparsity is monotone non-decreasing over rounds.
        assert all(a <= b + 1e-12 for a, b in zip(sparsities, sparsities[1:]))
