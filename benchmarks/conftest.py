"""Benchmark-suite configuration.

Every paper table/figure has one benchmark module.  Expensive full-run
benchmarks use ``benchmark.pedantic(..., rounds=1)`` so the experiment
executes exactly once; its printed output is the regenerated table/figure
series, and the recorded time is the end-to-end cost of reproducing it.
"""

import pytest


def run_once(benchmark, func, *args, **kwargs):
    """Run an expensive experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once():
    return run_once
