"""Benchmarks: the DESIGN.md §7 ablations on Sub-FedAvg's design choices."""

import pytest

from repro.experiments.ablations import (
    ablate_aggregation,
    ablate_heterogeneity,
    ablate_mask_distance_gate,
    ablate_pruning_step,
)


@pytest.mark.benchmark(group="ablations")
def test_aggregation_rule(benchmark, once, capsys):
    results = once(benchmark, ablate_aggregation, "mnist", preset="smoke", seed=0)
    with capsys.disabled():
        print("\nAblation — aggregation rule (intersection vs zero-filling):")
        for result in results:
            print(
                f"  {result.variant:>12}: acc={result.accuracy:.3f} "
                f"sparsity={result.sparsity:.0%}"
            )
    by_name = {result.variant: result for result in results}
    # Zero-filling shrinks rarely-kept personalized coordinates; it must not
    # beat the intersection rule (ties possible at smoke scale).
    assert by_name["intersection"].accuracy >= by_name["zerofill"].accuracy - 0.02


@pytest.mark.benchmark(group="ablations")
def test_mask_distance_gate(benchmark, once, capsys):
    results = once(benchmark, ablate_mask_distance_gate, "mnist", preset="smoke", seed=0)
    with capsys.disabled():
        print("\nAblation — mask-distance gate:")
        for result in results:
            print(
                f"  {result.variant:>18}: acc={result.accuracy:.3f} "
                f"final sparsity={result.sparsity:.0%}"
            )
    # Both settings must complete and produce sane accuracy.
    assert all(0.0 <= result.accuracy <= 1.0 for result in results)
    # The ungated variant prunes at least as deep as the gated one.
    gated, ungated = results
    assert ungated.sparsity >= gated.sparsity - 1e-9


@pytest.mark.benchmark(group="ablations")
def test_heterogeneity_sweep(benchmark, once, capsys):
    table = once(
        benchmark, ablate_heterogeneity, "mnist", alphas=(0.1, 5.0), preset="smoke",
        seed=0,
    )
    with capsys.disabled():
        print("\nAblation — Dirichlet heterogeneity sweep:")
        for alpha, cell in table.items():
            advantage = cell["sub-fedavg-un"] - cell["fedavg"]
            print(
                f"  alpha={alpha:<4}: sub-fedavg={cell['sub-fedavg-un']:.3f} "
                f"fedavg={cell['fedavg']:.3f} (advantage {advantage:+.3f})"
            )
    # Personalization pays off under strong heterogeneity.
    assert table[0.1]["sub-fedavg-un"] >= table[0.1]["fedavg"] - 0.02


@pytest.mark.benchmark(group="ablations")
def test_pruning_step_sensitivity(benchmark, once, capsys):
    results = once(
        benchmark, ablate_pruning_step, "mnist", steps=(0.1, 0.5), preset="smoke",
        seed=0,
    )
    with capsys.disabled():
        print("\nAblation — pruning step r_us sensitivity (target 50%):")
        for result in results:
            print(
                f"  {result.variant}: acc={result.accuracy:.3f} "
                f"sparsity={result.sparsity:.0%} "
                f"comm={result.communication_gb * 1000:.2f} MB"
            )
    # Larger steps reach deeper sparsity within the same round budget.
    assert results[-1].sparsity >= results[0].sparsity - 1e-9
