"""Benchmark: regenerate Figure 3 (accuracy vs communication rounds).

Per-round personalized-accuracy curves for Sub-FedAvg (Un) against FedAvg,
LG-FedAvg and MTL, plus the rounds-to-target-accuracy summary behind the
paper's "2-10x fewer rounds" claim (§4.2.2).
"""

import pytest

from repro.experiments import fig3_series, rounds_to_target, run_convergence

ALGORITHMS = ("sub-fedavg-un", "fedavg", "lg-fedavg", "mtl")


@pytest.mark.benchmark(group="fig3")
def test_fig3_mnist(benchmark, once, capsys):
    histories = once(
        benchmark, run_convergence, "mnist", algorithms=ALGORITHMS, preset="smoke",
        seed=0,
    )
    series = fig3_series(histories)

    with capsys.disabled():
        print("\nFigure 3 — mnist: mean personalized accuracy per round")
        for name, curve in series.items():
            formatted = ", ".join(f"r{r}={a:.3f}" for r, a in curve)
            print(f"  {name:14s}: {formatted}")
        # Rounds needed to reach a mid-range target.
        target = 0.7
        needed = rounds_to_target(histories, target)
        print(f"  rounds to reach {target:.0%}: {needed}")

    assert set(series) == set(ALGORITHMS)
    assert all(len(curve) == len(histories[name].rounds) for name, curve in series.items())

    # Shape claim: the personalized method converges at least as fast as
    # global FedAvg to any accuracy FedAvg eventually reaches.
    sub_final = series["sub-fedavg-un"][-1][1]
    fedavg_final = series["fedavg"][-1][1]
    assert sub_final >= fedavg_final - 0.02
