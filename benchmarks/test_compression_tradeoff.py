"""Benchmark: gradient compression vs Sub-FedAvg pruning (related work, §2).

The paper's communication claim is that pruning beats generic update
compression because it *also* personalizes.  This benchmark runs FedAvg
with top-k / random / 8-bit-quantized uplinks against Sub-FedAvg (Un) at
matched scale and prints the accuracy-vs-uplink frontier.
"""

import pytest

from repro.federated import (
    FedAvgCompressed,
    FederationConfig,
    LocalTrainConfig,
    QuantizationCompressor,
    RandomMaskCompressor,
    TopKCompressor,
    build_trainer,
    make_clients,
)
from repro.federated.builder import model_factory
from repro.pruning import UnstructuredConfig

SETTINGS = dict(
    dataset="mnist",
    num_clients=8,
    rounds=4,
    sample_fraction=0.5,
    n_train=480,
    n_test=240,
    seed=0,
    local=LocalTrainConfig(epochs=3, batch_size=10),
)


def run_compressed(compressor):
    config = FederationConfig(algorithm="fedavg", **SETTINGS)
    clients = make_clients(config)
    trainer = FedAvgCompressed(
        clients=clients,
        model_fn=model_factory(config),
        rounds=config.rounds,
        sample_fraction=config.sample_fraction,
        seed=config.seed,
        compressor=compressor,
    )
    return trainer.run()


def run_subfedavg():
    config = FederationConfig(
        algorithm="sub-fedavg-un",
        unstructured=UnstructuredConfig(target_rate=0.7, step=0.25),
        **SETTINGS,
    )
    return build_trainer(config, make_clients(config)).run()


@pytest.mark.benchmark(group="compression")
def test_compression_vs_pruning_frontier(benchmark, once, capsys):
    def frontier():
        return {
            "fedavg+top10%": run_compressed(TopKCompressor(0.1)),
            "fedavg+random10%": run_compressed(RandomMaskCompressor(0.1, seed=0)),
            "fedavg+int8": run_compressed(QuantizationCompressor(bits=8)),
            "sub-fedavg-un@70": run_subfedavg(),
        }

    results = once(benchmark, frontier)
    with capsys.disabled():
        print("\nAccuracy vs uplink (compression baselines vs pruning):")
        for name, history in results.items():
            uploaded = sum(record.uploaded_bytes for record in history.rounds)
            print(
                f"  {name:>18}: acc={history.final_accuracy:.3f} "
                f"uplink={uploaded / 1e6:.2f} MB"
            )

    # Personalized pruning must beat every global-model compression baseline
    # on accuracy under non-IID (they inherit FedAvg's collapse).
    sub = results["sub-fedavg-un@70"].final_accuracy
    for name, history in results.items():
        if name != "sub-fedavg-un@70":
            assert sub >= history.final_accuracy - 0.02, name
