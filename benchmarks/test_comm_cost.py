"""Benchmark: the §4.2.2 communication-cost model.

Verifies the closed form against the paper's own Table 1 numbers (FedAvg
CIFAR-10: 500 rounds x 10 clients x ~62k params x 32 bits x 2 = 2.48 GB;
MNIST: 524.16 MB) and benchmarks the per-round metering path.
"""

import pytest

from repro.federated.accounting import (
    closed_form_cost,
    dense_exchange,
    sparse_exchange,
)


@pytest.mark.benchmark(group="comm-cost")
def test_paper_fedavg_costs(benchmark, capsys):
    def compute():
        return {
            "cifar10": closed_form_cost(500, 62000, 10),
            "mnist": closed_form_cost(300, 21840, 10),
        }

    costs = benchmark(compute)
    with capsys.disabled():
        print("\nClosed-form FedAvg costs (paper's Table 1 formula):")
        for name, cost in costs.items():
            print(f"  {name}: {cost / 1e9:.3f} GB")
    # Paper: CIFAR-10 FedAvg at 500 rounds = 2.48 GB.
    assert costs["cifar10"] == pytest.approx(2.48e9, rel=0.01)
    # MNIST model (~21.9k params here, paper quotes 30.9k): same formula,
    # so the value scales with the census; check order of magnitude.
    assert 0.3e9 < costs["mnist"] < 0.9e9


@pytest.mark.benchmark(group="comm-cost")
def test_metering_throughput(benchmark):
    """Cost of metering one full round of 100 sparse exchanges."""

    def meter_round():
        total = 0.0
        for _ in range(100):
            total += sparse_exchange(40000, 62000, 40000).total
        return total

    total = benchmark(meter_round)
    assert total > 0


@pytest.mark.benchmark(group="comm-cost")
def test_sparse_saves_vs_dense_sweep(benchmark, capsys):
    """Upload savings as sparsity ramps — the paper's gradual-cost effect."""

    def sweep():
        dense = dense_exchange(62000, 1).total
        rows = []
        for sparsity in (0.0, 0.3, 0.5, 0.7, 0.9):
            kept = int(62000 * (1 - sparsity))
            sparse = sparse_exchange(kept, 62000, kept).total
            rows.append((sparsity, sparse / dense))
        return rows

    rows = benchmark(sweep)
    with capsys.disabled():
        print("\nRelative cost vs sparsity (Sub-FedAvg / FedAvg):")
        for sparsity, ratio in rows:
            print(f"  sparsity {sparsity:.0%}: {ratio:.3f}")
    ratios = [ratio for _, ratio in rows]
    assert ratios == sorted(ratios, reverse=True)
    assert ratios[-1] < 0.2
