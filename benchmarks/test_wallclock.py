"""Benchmark: seconds-to-accuracy under edge device profiles.

Converts the Figure 3 convergence curves into simulated wall-clock time on
a 1 MB/s-uplink edge device — the deployment framing behind the paper's
communication argument.
"""

import pytest

from repro.experiments import run_convergence
from repro.federated import (
    EDGE_PHONE,
    WallClockModel,
    compare_time_to_accuracy,
)
from repro.federated.accounting import dense_conv_flops
from repro.models import create_model

TARGET = 0.7


@pytest.mark.benchmark(group="wallclock")
def test_seconds_to_accuracy(benchmark, once, capsys):
    histories = once(
        benchmark,
        run_convergence,
        "mnist",
        algorithms=("sub-fedavg-un", "fedavg"),
        preset="smoke",
        seed=0,
    )
    flops = dense_conv_flops(create_model("mnist"), 28)
    model = WallClockModel(
        profiles=[EDGE_PHONE],
        flops_per_example=flops,
        examples_per_round=60 * 3,  # shard size x local epochs at smoke scale
    )
    table = compare_time_to_accuracy(histories, model, TARGET)
    totals = {name: model.total_seconds(history) for name, history in histories.items()}

    with capsys.disabled():
        print(f"\nSimulated wall-clock on {EDGE_PHONE.name} (uplink 1 MB/s):")
        for name, seconds in table.items():
            text = f"{seconds:.1f} s" if seconds is not None else "never"
            print(
                f"  {name:>14}: to {TARGET:.0%} accuracy in {text} "
                f"(full run {totals[name]:.1f} s)"
            )

    # Sub-FedAvg's cheaper uplink must not make the full run slower.
    assert totals["sub-fedavg-un"] <= totals["fedavg"] + 1.0
