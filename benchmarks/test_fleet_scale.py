"""Fleet-scale round planning: rounds/sec and memory vs population size.

The vectorized pricing path (PR 7) promises that *planning* a round —
sampling a cohort, pricing its timelines, deciding deliveries, advancing
the clock — costs O(cohort) numpy work, independent of how many million
clients the fleet holds.  This module tracks that trajectory from 100
clients to 1,000,000 at 1% participation, pins the vector-vs-scalar
speedup acceptance, and runs the 100k-client CI smoke cell.

Model training is *not* in the loop here (that is
``test_parallel_scaling.py``'s axis); the workload is the pure systems
layer every million-client study runs per round.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.federated import (
    AvailabilitySampler,
    EDGE_PHONE,
    RASPBERRY_PI,
    WORKSTATION,
)
from repro.systems import DeadlinePolicy, Fleet, FleetSimulator, SynchronousPolicy

THREE_TIER = Fleet(cycle=(EDGE_PHONE, RASPBERRY_PI, WORKSTATION))
PARTICIPATION = {"edge-phone": 0.6, "raspberry-pi": 0.4, "workstation": 0.9}
#: Uniform dense-exchange estimate (2 MB each way) — the tuple fast path,
#: so planning never builds a per-client dict.
TRAFFIC = (2e6, 2e6)

FLEET_SIZES = (100, 1_000, 10_000, 100_000, 1_000_000)


def rss_mb() -> float:
    """Current resident set of this process, in MB."""
    with open("/proc/self/status") as handle:
        for line in handle:
            if line.startswith("VmRSS:"):
                return int(line.split()[1]) / 1024.0
    return float("nan")


def make_fleet_run(num_clients: int, pricing: str = "vector"):
    """A (sampler, simulator) pair for a 1%-participation deployment."""
    sampler = AvailabilitySampler(
        num_clients,
        sample_fraction=0.01,
        seed=0,
        fleet=THREE_TIER,
        profile_participation=PARTICIPATION,
        dropout=0.05,
    )
    simulator = FleetSimulator(
        THREE_TIER,
        DeadlinePolicy(2.5),
        flops_per_example=1e6,
        examples_per_round=100,
        jitter=0.1,
        seed=0,
        pricing=pricing,
    )
    return sampler, simulator


def drive_rounds(sampler, simulator, rounds: int) -> int:
    """Sample + plan + complete ``rounds`` rounds; returns cohort total."""
    first = len(simulator.outcomes) + 1
    planned = 0
    for round_index in range(first, first + rounds):
        cohort = sampler.sample()
        simulator.plan_round(round_index, cohort, TRAFFIC)
        simulator.complete_round(None)
        planned += len(cohort)
    return planned


@pytest.mark.benchmark(group="fleet-scale")
@pytest.mark.parametrize("num_clients", FLEET_SIZES)
def test_round_planning_throughput(benchmark, num_clients):
    """Rounds/sec of the full sample→plan→complete loop, 1% participation."""
    sampler, simulator = make_fleet_run(num_clients)
    drive_rounds(sampler, simulator, 1)  # warm-up: rate tables, prob arrays
    benchmark.pedantic(
        lambda: drive_rounds(sampler, simulator, 1), rounds=3, iterations=1
    )
    benchmark.extra_info["num_clients"] = num_clients
    benchmark.extra_info["rss_mb"] = round(rss_mb(), 1)


def test_vector_speedup_at_10k_clients():
    """Acceptance: vectorized planning >= 10x the scalar loop at 1e4+."""

    def seconds_per_round(pricing: str, rounds: int = 3) -> float:
        simulator = make_fleet_run(10_000, pricing=pricing)[1]
        cohort = np.arange(10_000)  # full cohort: the worst-case round
        simulator.plan_round(1, cohort, TRAFFIC)
        simulator.complete_round(None)
        start = time.perf_counter()
        for round_index in range(2, 2 + rounds):
            simulator.plan_round(round_index, cohort, TRAFFIC)
            simulator.complete_round(None)
        return (time.perf_counter() - start) / rounds

    vector = seconds_per_round("vector")
    scalar = seconds_per_round("scalar")
    speedup = scalar / vector
    print(
        f"\n10k-client round: vector {vector * 1e3:.2f} ms, "
        f"scalar {scalar * 1e3:.2f} ms, speedup {speedup:.1f}x"
    )
    assert speedup >= 10.0, (
        f"vectorized planning only reached {speedup:.1f}x the scalar loop "
        f"({vector * 1e3:.2f} vs {scalar * 1e3:.2f} ms per 10k-client round)"
    )


def test_smoke_100k_fleet():
    """CI smoke cell: 100k clients at 1% participation, 5 priced rounds."""
    sampler, simulator = make_fleet_run(100_000)
    start = time.perf_counter()
    planned = drive_rounds(sampler, simulator, 5)
    elapsed = time.perf_counter() - start
    print(
        f"\n100k-client smoke: 5 rounds, {planned} cohort slots in "
        f"{elapsed:.2f}s, RSS {rss_mb():.0f} MB"
    )
    assert len(simulator.outcomes) == 5
    assert planned >= 5 * 100  # ~1% of 100k survive availability + dropout
    assert simulator.total_seconds > 0
    assert elapsed < 60.0


def test_million_client_fleet_fits_the_budget():
    """Acceptance: a 1M-client 1%-participation systems run stays in
    minutes of wall clock and a few GB of memory (it is, in fact, orders
    of magnitude under both)."""
    sampler, simulator = make_fleet_run(1_000_000)
    start = time.perf_counter()
    planned = drive_rounds(sampler, simulator, 3)
    elapsed = time.perf_counter() - start
    memory = rss_mb()
    print(
        f"\n1M-client fleet: 3 rounds, {planned} cohort slots in "
        f"{elapsed:.2f}s, RSS {memory:.0f} MB"
    )
    assert planned >= 3 * 1_000
    assert elapsed < 180.0
    assert memory < 4096.0
