"""Serving load test: concurrent wire clients against a live server.

The acceptance axis for the federation-as-a-service stack: a real
:class:`~repro.serving.server.FederationServer` on localhost must sustain
a thousand concurrently attached clients — every one registering,
long-polling, downloading the round's global weights and uploading an
update — and still close rounds promptly.  The recorded
``BENCH_serving`` artifact carries per-round dispatch-to-close latency
and aggregate task throughput (``extra_info``).

Clients here are protocol-complete fakes (they echo weights instead of
running SGD) so the measured cost is the serving path itself; see
``tests/serving/test_server.py`` for the bit-identity of real runs.
"""

from __future__ import annotations

import pytest

from repro.data.registry import available_datasets, unregister_dataset
from repro.serving import run_load_test
from repro.serving.loadtest import MICRO_DATASET


@pytest.fixture(scope="module", autouse=True)
def isolated_micro_dataset():
    """Drop the harness's dataset registration after this module.

    The registry is process-global and ``SPECS`` is a live view of it;
    later-collected suites assert the exact stock family set.
    """
    registered_before = MICRO_DATASET in available_datasets()
    yield
    if not registered_before and MICRO_DATASET in available_datasets():
        unregister_dataset(MICRO_DATASET)

#: (clients, rounds) scale points; the 1k cell is the acceptance gate.
SCALE_POINTS = ((300, 2), (1000, 2))


@pytest.mark.parametrize(
    "num_clients,rounds",
    SCALE_POINTS,
    ids=[f"{clients}c" for clients, _ in SCALE_POINTS],
)
def test_serving_sustains_concurrent_clients(benchmark, once, num_clients, rounds):
    report = once(
        benchmark,
        run_load_test,
        num_clients=num_clients,
        rounds=rounds,
        poll_seconds=5.0,
        timeout=300.0,
    )
    # Every client survives, and every task the trainer published (one
    # train task per client per round + the final evaluation pass) was
    # executed over the wire.
    assert report.failed_clients == 0
    assert report.tasks_completed == num_clients * (rounds + 1)
    assert len(report.round_latencies) == rounds
    assert report.tasks_per_second > 0
    benchmark.extra_info.update(report.to_dict())
