"""Parallel client-execution scaling: rounds/sec, serial vs threaded.

The execution-backend subsystem promises that running a round's sampled
clients concurrently buys wall-clock throughput without changing results
(equivalence is covered by ``tests/federated/test_execution.py``; this
module tracks the *perf* trajectory).  The workload is one FedAvg round at
8 sampled clients — the smoke-preset population — with batch sizes large
enough that local SGD spends its time inside GIL-releasing BLAS kernels,
which is exactly the regime edge-scale simulation runs in.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.federated import FederationConfig, LocalTrainConfig
from repro.federated.builder import build_trainer, make_clients

SAMPLED_CLIENTS = 8


def build_trainer_for(backend: str, workers: int = 0):
    config = FederationConfig(
        dataset="mnist",
        algorithm="fedavg",
        num_clients=SAMPLED_CLIENTS,
        rounds=1,
        sample_fraction=1.0,
        n_train=1024,
        n_test=256,
        seed=0,
        backend=backend,
        workers=workers,
        local=LocalTrainConfig(epochs=1, batch_size=32),
    )
    return build_trainer(config, make_clients(config))


def rounds_per_second(trainer, measured_rounds: int = 3) -> float:
    """Best-of-N round throughput.

    The best (not mean) round is what the backend can deliver; it shields
    the CI assertion from noisy-neighbor interference on shared runners.
    """
    sampled = list(range(SAMPLED_CLIENTS))
    trainer._round(1, sampled)  # warm-up: page in data, stabilize BLAS pools
    best = float("inf")
    for offset in range(measured_rounds):
        start = time.perf_counter()
        trainer._round(2 + offset, sampled)
        best = min(best, time.perf_counter() - start)
    return 1.0 / best


@pytest.mark.benchmark(group="parallel-scaling")
@pytest.mark.parametrize("backend", ("serial", "thread"))
def test_round_throughput(benchmark, backend):
    """One FedAvg round over 8 sampled clients, per backend."""
    workers = min(4, os.cpu_count() or 1)
    trainer = build_trainer_for(backend, workers=workers)
    sampled = list(range(SAMPLED_CLIENTS))
    trainer._round(1, sampled)  # warm-up outside the timer
    round_counter = iter(range(2, 1_000_000))
    benchmark.pedantic(
        lambda: trainer._round(next(round_counter), sampled),
        rounds=3,
        iterations=1,
    )


def test_thread_speedup_at_8_clients():
    """Acceptance: threaded round throughput >= 1.5x serial on >=2 cores."""
    cores = os.cpu_count() or 1
    if cores < 2:
        pytest.skip(f"parallel speedup needs >= 2 cores (have {cores})")
    serial = rounds_per_second(build_trainer_for("serial"))
    threaded = rounds_per_second(
        build_trainer_for("thread", workers=min(4, cores))
    )
    speedup = threaded / serial
    print(f"\nserial {serial:.3f} rounds/s, threaded {threaded:.3f} rounds/s, "
          f"speedup {speedup:.2f}x on {cores} cores")
    assert speedup >= 1.5, (
        f"threaded backend only reached {speedup:.2f}x serial throughput "
        f"({threaded:.3f} vs {serial:.3f} rounds/s on {cores} cores)"
    )
