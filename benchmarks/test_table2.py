"""Benchmark: regenerate Table 2 (FLOP and parameter reduction factors).

Analytic — derived from the channel census exactly as the paper does.
Asserts the headline 2.4x-ish FLOP factor for the hybrid variant.
"""

import pytest

from repro.experiments import format_table2, run_table2


@pytest.mark.benchmark(group="table2")
@pytest.mark.parametrize("dataset", ["cifar10", "mnist"])
def test_table2(benchmark, dataset, capsys):
    rows = benchmark(run_table2, dataset)
    with capsys.disabled():
        print()
        print(format_table2(dataset, rows))

    hybrid = [row for row in rows if row.algorithm.startswith("sub-fedavg-hy")]
    assert hybrid, "hybrid rows missing"
    for row in hybrid:
        assert row.flop_reduction > 1.5  # paper: 2.4x on LeNet-5

    unstructured = [row for row in rows if row.algorithm.startswith("sub-fedavg-un")]
    for row in unstructured:
        assert row.flop_reduction == 1.0  # paper reports 0x for Un
        assert row.param_reduction in (0.3, 0.5, 0.7)

    baselines = [row for row in rows if not row.algorithm.startswith("sub-fedavg")]
    for row in baselines:
        assert row.param_reduction == 0.0
