"""Micro-benchmarks of the substrate's hot paths.

These quantify the per-round cost drivers of the federation simulator:
convolution forward/backward, one client SGD step, mask derivation and the
Sub-FedAvg intersection average.
"""

import numpy as np
import pytest

from repro import nn
from repro.federated import intersection_average
from repro.models import LeNet5, create_model
from repro.optim import SGD
from repro.pruning import MaskSet, bn_scale_channel_mask, magnitude_mask
from repro.tensor import Tensor, conv2d


@pytest.fixture(scope="module")
def lenet():
    return LeNet5(rng=np.random.default_rng(0))


@pytest.mark.benchmark(group="micro")
def test_conv_forward(benchmark, rng=np.random.default_rng(0)):
    x = Tensor(rng.normal(size=(10, 3, 32, 32)))
    w = Tensor(rng.normal(size=(6, 3, 5, 5)))
    b = Tensor(rng.normal(size=6))
    benchmark(lambda: conv2d(x, w, b))


@pytest.mark.benchmark(group="micro")
def test_conv_backward(benchmark, rng=np.random.default_rng(0)):
    x = Tensor(rng.normal(size=(10, 3, 32, 32)), requires_grad=True)
    w = Tensor(rng.normal(size=(6, 3, 5, 5)), requires_grad=True)
    b = Tensor(rng.normal(size=6), requires_grad=True)

    def run():
        for tensor in (x, w, b):
            tensor.zero_grad()
        conv2d(x, w, b).sum().backward()

    benchmark(run)


@pytest.mark.benchmark(group="micro")
def test_lenet_training_step(benchmark, lenet, rng=np.random.default_rng(0)):
    """One batch-10 SGD step on LeNet-5 — the paper's unit of local work."""
    images = rng.normal(size=(10, 3, 32, 32))
    labels = rng.integers(0, 10, size=10)
    optimizer = SGD(list(lenet.named_parameters()), lr=0.01, momentum=0.5)
    loss_fn = nn.CrossEntropyLoss()

    def step():
        optimizer.zero_grad()
        loss = loss_fn(lenet(Tensor(images)), labels)
        loss.backward()
        optimizer.step()
        return loss.item()

    benchmark(step)


@pytest.mark.benchmark(group="micro")
def test_magnitude_mask_derivation(benchmark, lenet):
    state = {name: param.data for name, param in lenet.named_parameters()}
    names = lenet.prunable_weight_names()
    benchmark(lambda: magnitude_mask(state, names, rate=0.5))


@pytest.mark.benchmark(group="micro")
def test_channel_mask_derivation(benchmark, lenet):
    benchmark(lambda: bn_scale_channel_mask(lenet, rate=0.5))


@pytest.mark.benchmark(group="micro")
def test_intersection_average_10_clients(benchmark):
    model = create_model("cifar10")
    base = model.state_dict()
    rng = np.random.default_rng(0)
    states, masks = [], []
    for _ in range(10):
        states.append({k: v + rng.normal(size=v.shape) for k, v in base.items()})
        masks.append(
            MaskSet(
                {
                    name: (rng.random(base[name].shape) > 0.5).astype(float)
                    for name in model.prunable_weight_names()
                }
            )
        )
    benchmark(lambda: intersection_average(states, masks, base))
