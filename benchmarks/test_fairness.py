"""Benchmark: per-client accuracy distributions (the story behind Table 1).

The paper reports mean accuracy; the distribution over clients is where
FedAvg's failure actually lives — some clients are served well, others
collapse entirely.  This benchmark compares the fairness profile of
FedAvg vs Sub-FedAvg (Un) and ties it to the measured heterogeneity of the
partition (Zhao et al. 2018-style EMD).
"""

import pytest

from repro.data import heterogeneity_index
from repro.federated import (
    FederationConfig,
    LocalTrainConfig,
    build_trainer,
    fairness_report,
    make_clients,
)
from repro.pruning import UnstructuredConfig

SETTINGS = dict(
    dataset="mnist",
    num_clients=10,
    rounds=5,
    sample_fraction=0.5,
    n_train=600,
    n_test=300,
    seed=4,
    local=LocalTrainConfig(epochs=3, batch_size=10),
)


def run(algorithm, **extra):
    config = FederationConfig(algorithm=algorithm, **SETTINGS, **extra)
    clients = make_clients(config)
    trainer = build_trainer(config, clients)
    history = trainer.run()
    return clients, history


@pytest.mark.benchmark(group="fairness")
def test_fairness_profile(benchmark, once, capsys):
    def experiment():
        clients, fedavg = run("fedavg")
        _, sub = run(
            "sub-fedavg-un",
            unstructured=UnstructuredConfig(target_rate=0.5, step=0.2),
        )
        hetero = heterogeneity_index(
            [client.data for client in clients], num_classes=10
        )
        return hetero, fairness_report(fedavg), fairness_report(sub)

    hetero, fedavg_fair, sub_fair = once(benchmark, experiment)

    with capsys.disabled():
        print("\nPartition heterogeneity (Zhao-style EMD):")
        print(f"  mean EMD {hetero['mean_emd']:.2f}, "
              f"labels/client {hetero['mean_labels_per_client']:.1f}")
        print("Per-client accuracy distribution:")
        print(f"  fedavg:        {fedavg_fair.describe()}")
        print(f"  sub-fedavg-un: {sub_fair.describe()}")

    # The partition is pathological, as the protocol intends.
    assert hetero["mean_emd"] > 0.5
    # Personalization lifts the tail: the worst-served client does better.
    assert sub_fair.percentile_10 >= fedavg_fair.percentile_10 - 0.02
    assert sub_fair.below_half <= fedavg_fair.below_half
