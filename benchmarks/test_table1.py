"""Benchmark: regenerate Table 1 (accuracy / pruned % / communication cost).

Prints the same row structure as the paper's Table 1 at smoke scale and
asserts the paper's qualitative claims:

* FedAvg under pathological non-IID loses to Standalone (Remark-2),
* Sub-FedAvg (Un) beats FedAvg on personalized accuracy,
* Sub-FedAvg exchanges fewer bytes than FedAvg at equal rounds.
"""

import pytest

from repro.experiments import format_table1, run_table1


@pytest.fixture(scope="module")
def mnist_rows():
    return run_table1("mnist", preset="smoke", seed=0)


@pytest.fixture(scope="module")
def cifar_rows():
    return run_table1("cifar10", preset="smoke", seed=0, include_fedprox=False)


def _by_name(rows, prefix):
    return next(row for row in rows if row.algorithm.startswith(prefix))


@pytest.mark.benchmark(group="table1")
def test_table1_mnist(benchmark, once, capsys):
    rows = once(benchmark, run_table1, "mnist", preset="smoke", seed=1)
    with capsys.disabled():
        print()
        print(format_table1("mnist (smoke preset)", rows))
    assert len(rows) >= 11


@pytest.mark.benchmark(group="table1")
def test_table1_cifar10(benchmark, once, capsys):
    rows = once(
        benchmark, run_table1, "cifar10", preset="smoke", seed=1, include_fedprox=False
    )
    with capsys.disabled():
        print()
        print(format_table1("cifar10 (smoke preset)", rows))
    assert len(rows) >= 10


class TestTable1Shape:
    """The paper's qualitative orderings, checked on module-cached rows."""

    def test_fedavg_below_standalone_mnist_or_cifar(self, mnist_rows, cifar_rows):
        # Remark-2: under 2-shard non-IID, FedAvg <= Standalone on at least
        # one benchmark family (the paper shows it on CIFAR-10/100/EMNIST).
        gaps = []
        for rows in (mnist_rows, cifar_rows):
            standalone = _by_name(rows, "standalone").accuracy
            fedavg = _by_name(rows, "fedavg").accuracy
            gaps.append(standalone - fedavg)
        assert max(gaps) > 0.0

    def test_subfedavg_un_beats_fedavg(self, mnist_rows):
        fedavg = _by_name(mnist_rows, "fedavg").accuracy
        sub = max(
            row.accuracy
            for row in mnist_rows
            if row.algorithm.startswith("sub-fedavg-un")
        )
        assert sub > fedavg

    def test_subfedavg_cheaper_communication(self, mnist_rows):
        fedavg = _by_name(mnist_rows, "fedavg").communication_gb
        sub70 = _by_name(mnist_rows, "sub-fedavg-un@70").communication_gb
        assert sub70 < fedavg

    def test_deeper_pruning_cheaper(self, mnist_rows):
        sub30 = _by_name(mnist_rows, "sub-fedavg-un@30").communication_gb
        sub70 = _by_name(mnist_rows, "sub-fedavg-un@70").communication_gb
        assert sub70 <= sub30
