"""Tensor hot path: eager reference vs the lazy engine, per runtime.

One benchmark row per (model, compute mode): the eager engine and a lazy
scope for every registered runtime (numpy always; torch when importable).
The timed unit is a full training step — forward, backward, SGD update —
i.e. the paper's unit of local client work, plus a no-grad inference pass
where elementwise fusion actually gets to collapse kernels.
"""

import numpy as np
import pytest

from repro import nn
from repro.engine import ComputeConfig, available_runtimes, compute_scope
from repro.optim import SGD
from repro.tensor import Tensor, no_grad

MODES = [("eager", None)] + [
    (f"lazy-{name}", ComputeConfig(engine="lazy", runtime=name))
    for name in available_runtimes()
]
MODE_IDS = [mode for mode, _ in MODES]


def make_mlp(rng):
    return nn.Sequential(
        nn.Flatten(),
        nn.Linear(784, 256, rng=rng),
        nn.ReLU(),
        nn.Linear(256, 64, rng=rng),
        nn.ReLU(),
        nn.Linear(64, 10, rng=rng),
    )


def make_cnn(rng):
    return nn.Sequential(
        nn.Conv2d(1, 8, kernel_size=3, padding=1, rng=rng),
        nn.ReLU(),
        nn.MaxPool2d(2),
        nn.Conv2d(8, 16, kernel_size=3, padding=1, rng=rng),
        nn.ReLU(),
        nn.MaxPool2d(2),
        nn.Flatten(),
        nn.Linear(16 * 7 * 7, 10, rng=rng),
    )


def training_step(model, images, labels):
    optimizer = SGD(list(model.named_parameters()), lr=0.01, momentum=0.5)
    loss_fn = nn.CrossEntropyLoss()

    def step():
        optimizer.zero_grad()
        loss = loss_fn(model(Tensor(images)), labels)
        loss.backward()
        optimizer.step()
        return loss.item()

    return step


@pytest.mark.benchmark(group="tensor-engine-mlp")
@pytest.mark.parametrize("mode,config", MODES, ids=MODE_IDS)
def test_mlp_training_step(benchmark, mode, config):
    rng = np.random.default_rng(0)
    model = make_mlp(rng)
    images = rng.normal(size=(32, 1, 28, 28))
    labels = rng.integers(0, 10, size=32)
    with compute_scope(config):
        benchmark(training_step(model, images, labels))


@pytest.mark.benchmark(group="tensor-engine-cnn")
@pytest.mark.parametrize("mode,config", MODES, ids=MODE_IDS)
def test_cnn_training_step(benchmark, mode, config):
    rng = np.random.default_rng(0)
    model = make_cnn(rng)
    images = rng.normal(size=(16, 1, 28, 28))
    labels = rng.integers(0, 10, size=16)
    with compute_scope(config):
        benchmark(training_step(model, images, labels))


@pytest.mark.benchmark(group="tensor-engine-inference")
@pytest.mark.parametrize("mode,config", MODES, ids=MODE_IDS)
def test_mlp_inference_batch(benchmark, mode, config):
    """Forward-only under no_grad — the fully fusable path."""
    rng = np.random.default_rng(0)
    model = make_mlp(rng)
    model.eval()
    images = rng.normal(size=(64, 1, 28, 28))
    with compute_scope(config), no_grad():
        benchmark(lambda: model(Tensor(images)).data.argmax(axis=1))
