"""Benchmark: regenerate Figure 2 (mean accuracy vs mean pruning %).

The paper's Figure 2 shows, for CIFAR-10 / MNIST / EMNIST, mean accuracy
rising with moderate pruning (common parameters removed) and degrading past
heavy pruning (personal parameters removed).  At smoke scale the exact hump
position is noisy, so the asserted shape is the robust part of the claim:
moderate pruning does not collapse accuracy relative to dense training,
while the sweep itself spans the full sparsity range.
"""

import pytest

from repro.experiments import ascii_plot, fig2_series, run_sparsity_sweep

TARGETS = (0.0, 0.3, 0.5, 0.8)


@pytest.mark.benchmark(group="fig2")
@pytest.mark.parametrize("dataset", ["mnist", "emnist", "cifar10"])
def test_fig2(benchmark, once, dataset, capsys):
    points = once(
        benchmark,
        run_sparsity_sweep,
        dataset,
        targets=TARGETS,
        preset="smoke",
        seed=0,
    )
    curve = fig2_series(points)
    with capsys.disabled():
        print(f"\nFigure 2 — {dataset}: mean accuracy vs mean pruning %")
        for sparsity, accuracy in curve:
            print(f"  sparsity {sparsity:.2f} -> accuracy {accuracy:.3f}")
        print(ascii_plot(curve))

    dense_accuracy = curve[0][1]
    moderate = [acc for sparsity, acc in curve if 0.0 < sparsity <= 0.6]
    assert moderate, "sweep produced no moderate-sparsity points"
    # Moderate pruning keeps (or improves) accuracy vs dense — the rising
    # left side of the paper's hump, within smoke-scale noise.
    assert max(moderate) >= dense_accuracy - 0.10
