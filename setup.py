"""Setup shim for environments without the `wheel` package.

Enables `pip install -e .` through the legacy setup.py-develop path; all
project metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
