"""Neural-network layers and containers (PyTorch-style, numpy-backed)."""

from .module import Module, Parameter
from .layers import (
    BatchNorm1d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
    Tanh,
)
from .loss import CrossEntropyLoss, L1Loss, MSELoss
from . import init

__all__ = [
    "Module",
    "Parameter",
    "Linear",
    "Conv2d",
    "BatchNorm1d",
    "BatchNorm2d",
    "MaxPool2d",
    "ReLU",
    "Tanh",
    "Flatten",
    "Sequential",
    "CrossEntropyLoss",
    "MSELoss",
    "L1Loss",
    "init",
]
