"""Core neural-network layers: linear, convolution, batch norm, pooling.

Every layer takes an explicit ``numpy.random.Generator`` for weight
initialization so that all clients in a federation can be constructed from
identical ``theta_0`` by sharing a seed (the paper's Algorithms 1-2 both
start clients and server from the same initialization).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..tensor import Tensor, batch_norm, conv2d, max_pool2d
from . import init
from .module import Module, Parameter


def _default_rng(rng: Optional[np.random.Generator]) -> np.random.Generator:
    return rng if rng is not None else np.random.default_rng()


class Linear(Module):
    """Affine map ``y = x W^T + b`` with weight shape ``(out, in)``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = _default_rng(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_uniform((out_features, in_features), rng))
        if bias:
            self.bias = Parameter(init.bias_uniform((out_features, in_features), rng))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight.transpose()
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return f"Linear(in={self.in_features}, out={self.out_features})"


class Conv2d(Module):
    """2-D convolution with square kernels; weight shape ``(out, in, k, k)``."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = _default_rng(rng)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Parameter(init.kaiming_uniform(shape, rng))
        if bias:
            self.bias = Parameter(init.bias_uniform(shape, rng))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)

    def __repr__(self) -> str:
        return (
            f"Conv2d(in={self.in_channels}, out={self.out_channels}, "
            f"k={self.kernel_size}, stride={self.stride}, padding={self.padding})"
        )


class BatchNorm2d(Module):
    """Per-channel batch normalization for ``(N, C, H, W)`` inputs.

    The learnable scale ``weight`` (γ in the paper) is the channel-importance
    signal used by structured pruning (network-slimming style, Liu et al.
    2017): channels whose |γ| falls below a percentile threshold are pruned.
    """

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5) -> None:
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.weight = Parameter(np.ones(num_features))
        self.bias = Parameter(np.zeros(num_features))
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))

    def forward(self, x: Tensor) -> Tensor:
        return batch_norm(
            x,
            self.weight,
            self.bias,
            self.running_mean,
            self.running_var,
            training=self.training,
            momentum=self.momentum,
            eps=self.eps,
        )

    def __repr__(self) -> str:
        return f"BatchNorm2d({self.num_features})"


class BatchNorm1d(BatchNorm2d):
    """Batch normalization for ``(N, C)`` inputs (shares the 2-D kernel)."""

    def __repr__(self) -> str:
        return f"BatchNorm1d({self.num_features})"


class MaxPool2d(Module):
    """Max pooling with square windows."""

    def __init__(self, kernel_size: int, stride: Optional[int] = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return max_pool2d(x, kernel=self.kernel_size, stride=self.stride)

    def __repr__(self) -> str:
        return f"MaxPool2d(k={self.kernel_size}, stride={self.stride})"


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()

    def __repr__(self) -> str:
        return "ReLU()"


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()

    def __repr__(self) -> str:
        return "Tanh()"


class Flatten(Module):
    """Flatten all dimensions after the batch dimension."""

    def forward(self, x: Tensor) -> Tensor:
        return x.flatten_batch()

    def __repr__(self) -> str:
        return "Flatten()"


class Sequential(Module):
    """Run child modules in order."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        for index, layer in enumerate(layers):
            setattr(self, str(index), layer)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self._modules.values():
            x = layer(x)
        return x

    def __getitem__(self, index: int) -> Module:
        return list(self._modules.values())[index]

    def __len__(self) -> int:
        return len(self._modules)
