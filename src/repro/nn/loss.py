"""Loss functions."""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor, cross_entropy
from .module import Module


class CrossEntropyLoss(Module):
    """Softmax cross-entropy over integer class targets (mean reduction)."""

    def forward(self, logits: Tensor, targets: np.ndarray) -> Tensor:
        return cross_entropy(logits, targets)

    def __repr__(self) -> str:
        return "CrossEntropyLoss()"


class MSELoss(Module):
    """Mean squared error between prediction and target tensors/arrays."""

    def forward(self, prediction: Tensor, target) -> Tensor:
        target = target if isinstance(target, Tensor) else Tensor(target)
        diff = prediction - target
        return (diff * diff).mean()

    def __repr__(self) -> str:
        return "MSELoss()"


class L1Loss(Module):
    """Mean absolute error."""

    def forward(self, prediction: Tensor, target) -> Tensor:
        target = target if isinstance(target, Tensor) else Tensor(target)
        return (prediction - target).abs().mean()

    def __repr__(self) -> str:
        return "L1Loss()"
