"""Module/Parameter abstractions mirroring the PyTorch container model.

A :class:`Module` owns named :class:`Parameter` leaves (trainable tensors),
named buffers (non-trainable state such as batch-norm running statistics) and
named child modules.  State dicts are flat ``name -> ndarray`` mappings, which
is the currency of the federated layer: clients exchange state dicts with the
server, and pruning masks are keyed by the same names.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from ..tensor import Tensor


class Parameter(Tensor):
    """A tensor that is registered as trainable state of a module."""

    def __init__(self, data, name: Optional[str] = None) -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for neural-network components."""

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register non-trainable array state (saved in the state dict)."""
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield prefix + name, param
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix + child_name + ".")

    def parameters(self) -> Iterator[Parameter]:
        for _, param in self.named_parameters():
            yield param

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        for name in self._buffers:
            # Read through the attribute so in-place replacement is visible.
            yield prefix + name, self._buffers[name]
        for child_name, child in self._modules.items():
            yield from child.named_buffers(prefix + child_name + ".")

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield prefix.rstrip("."), self
        for child_name, child in self._modules.items():
            yield from child.named_modules(prefix + child_name + ".")

    def modules(self) -> Iterator["Module"]:
        for _, module in self.named_modules():
            yield module

    # ------------------------------------------------------------------
    # Mode and gradient management
    # ------------------------------------------------------------------
    def train(self) -> "Module":
        object.__setattr__(self, "training", True)
        for child in self._modules.values():
            child.train()
        return self

    def eval(self) -> "Module":
        object.__setattr__(self, "training", False)
        for child in self._modules.values():
            child.eval()
        return self

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------
    # State dict
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Flat copy of all parameters and buffers, keyed by dotted names."""
        state: Dict[str, np.ndarray] = OrderedDict()
        for name, param in self.named_parameters():
            state[name] = param.data.copy()
        for name, buffer in self.named_buffers():
            state[name] = buffer.copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        """Copy values from ``state`` into matching parameters and buffers."""
        own_params = dict(self.named_parameters())
        own_buffers = dict(self.named_buffers())
        missing = (set(own_params) | set(own_buffers)) - set(state)
        unexpected = set(state) - set(own_params) - set(own_buffers)
        if strict and (missing or unexpected):
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}"
            )
        for name, param in own_params.items():
            if name in state:
                value = np.asarray(state[name], dtype=param.data.dtype)
                if value.shape != param.data.shape:
                    raise ValueError(
                        f"shape mismatch for {name}: {value.shape} vs {param.data.shape}"
                    )
                param.data[...] = value
        for name, buffer in own_buffers.items():
            if name in state:
                value = np.asarray(state[name], dtype=buffer.dtype)
                if value.shape != buffer.shape:
                    raise ValueError(
                        f"shape mismatch for buffer {name}: {value.shape} vs {buffer.shape}"
                    )
                buffer[...] = value

    def num_parameters(self) -> int:
        """Total count of trainable scalars in the module tree."""
        return sum(param.size for param in self.parameters())

    # ------------------------------------------------------------------
    # Forward
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        child_lines = [
            f"  ({name}): {child!r}".replace("\n", "\n  ")
            for name, child in self._modules.items()
        ]
        header = self.__class__.__name__
        if not child_lines:
            return f"{header}()"
        return header + "(\n" + "\n".join(child_lines) + "\n)"
