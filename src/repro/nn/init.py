"""Weight initialization schemes.

Defaults mirror PyTorch: Kaiming-uniform fan-in initialization for conv and
linear weights, uniform bias initialization scaled by fan-in.  Initializers
take an explicit ``numpy.random.Generator`` so model creation is fully
deterministic given a seed — a requirement for the paper's protocol, where
every client and the server start from the same ``theta_0``.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np


def _fan_in_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    if len(shape) == 2:  # linear: (out, in)
        fan_out, fan_in = shape
    elif len(shape) == 4:  # conv: (out, in, kh, kw)
        receptive = shape[2] * shape[3]
        fan_in = shape[1] * receptive
        fan_out = shape[0] * receptive
    else:
        raise ValueError(f"cannot infer fan for shape {shape}")
    return fan_in, fan_out


def kaiming_uniform(shape: Tuple[int, ...], rng: np.random.Generator, a: float = math.sqrt(5)) -> np.ndarray:
    """He-uniform init as used by PyTorch's default layer reset."""
    fan_in, _ = _fan_in_out(shape)
    gain = math.sqrt(2.0 / (1.0 + a * a))
    bound = gain * math.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def xavier_uniform(shape: Tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot-uniform initialization."""
    fan_in, fan_out = _fan_in_out(shape)
    bound = gain * math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def bias_uniform(weight_shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """PyTorch-style bias init: uniform in ±1/sqrt(fan_in)."""
    fan_in, _ = _fan_in_out(weight_shape)
    bound = 1.0 / math.sqrt(fan_in) if fan_in > 0 else 0.0
    out_features = weight_shape[0]
    return rng.uniform(-bound, bound, size=(out_features,))
