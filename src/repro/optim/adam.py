"""Adam optimizer (used by ablation experiments; the paper's runs use SGD)."""

from __future__ import annotations

from typing import Dict, Iterable

import numpy as np

from .sgd import SGD


class Adam(SGD):
    """Adam with bias correction; inherits mask handling from :class:`SGD`."""

    def __init__(
        self,
        named_params: Iterable,
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(named_params, lr=lr, momentum=0.0, weight_decay=weight_decay)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._step_count = 0
        self._exp_avg: Dict[str, np.ndarray] = {}
        self._exp_avg_sq: Dict[str, np.ndarray] = {}

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1 ** self._step_count
        bias2 = 1.0 - self.beta2 ** self._step_count
        for name, param in self._named:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            mask = self._masks.get(name)
            if mask is not None:
                grad = grad * mask
            avg = self._exp_avg.setdefault(name, np.zeros_like(param.data))
            avg_sq = self._exp_avg_sq.setdefault(name, np.zeros_like(param.data))
            avg *= self.beta1
            avg += (1.0 - self.beta1) * grad
            avg_sq *= self.beta2
            avg_sq += (1.0 - self.beta2) * grad * grad
            step_size = self.lr / bias1
            denom = np.sqrt(avg_sq / bias2) + self.eps
            param.data -= step_size * avg / denom
            if mask is not None:
                param.data *= mask
