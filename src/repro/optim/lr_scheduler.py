"""Learning-rate schedules for the local optimizers."""

from __future__ import annotations

import math

from .sgd import SGD


class StepLR:
    """Multiply the learning rate by ``gamma`` every ``step_size`` steps."""

    def __init__(self, optimizer: SGD, step_size: int, gamma: float = 0.1) -> None:
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self.base_lr = optimizer.lr
        self.last_epoch = 0

    def step(self) -> None:
        self.last_epoch += 1
        decays = self.last_epoch // self.step_size
        self.optimizer.lr = self.base_lr * (self.gamma ** decays)


class CosineAnnealingLR:
    """Cosine decay from the base LR to ``eta_min`` over ``t_max`` steps."""

    def __init__(self, optimizer: SGD, t_max: int, eta_min: float = 0.0) -> None:
        if t_max <= 0:
            raise ValueError("t_max must be positive")
        self.optimizer = optimizer
        self.t_max = t_max
        self.eta_min = eta_min
        self.base_lr = optimizer.lr
        self.last_epoch = 0

    def step(self) -> None:
        self.last_epoch += 1
        progress = min(self.last_epoch, self.t_max) / self.t_max
        self.optimizer.lr = self.eta_min + 0.5 * (self.base_lr - self.eta_min) * (
            1.0 + math.cos(math.pi * progress)
        )
