"""Gradient clipping utilities.

Corrupted or heterogeneous clients can produce exploding local gradients
(the robustness tests inject exactly that); global-norm clipping is the
standard guard.  Matches PyTorch semantics: gradients are scaled in place
so their joint L2 norm is at most ``max_norm``.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..nn.module import Parameter


def grad_norm(parameters: Iterable) -> float:
    """Joint L2 norm of all existing gradients."""
    total = 0.0
    for entry in parameters:
        param = entry[1] if isinstance(entry, tuple) else entry
        if param.grad is not None:
            total += float((param.grad ** 2).sum())
    return float(np.sqrt(total))


def clip_grad_norm(parameters: Iterable, max_norm: float) -> float:
    """Scale gradients in place so their joint norm is <= ``max_norm``.

    Returns the pre-clipping norm (PyTorch convention).  Accepts the same
    ``(name, Parameter)`` tuples or bare parameters the optimizers take.
    """
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    params = [
        (entry[1] if isinstance(entry, tuple) else entry) for entry in parameters
    ]
    norm = grad_norm(params)
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for param in params:
            if param.grad is not None:
                param.grad = param.grad * scale
    return norm


def clip_grad_value(parameters: Iterable, max_value: float) -> None:
    """Clamp every gradient coordinate into ``[-max_value, max_value]``."""
    if max_value <= 0:
        raise ValueError(f"max_value must be positive, got {max_value}")
    for entry in parameters:
        param = entry[1] if isinstance(entry, tuple) else entry
        if param.grad is not None:
            np.clip(param.grad, -max_value, max_value, out=param.grad)
