"""Stochastic gradient descent with momentum, weight decay and grad masking.

The paper trains every client with SGD (lr 0.01, momentum 0.5).  ``SGD``
additionally accepts a per-parameter gradient mask so pruned coordinates stay
exactly zero during local training: masked entries have their gradient (and
momentum) forced to zero before the update.  This matches the reference
implementation's behaviour of multiplying weights by the binary mask after
every step, but without momentum leakage into pruned coordinates.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from ..nn.module import Parameter


class SGD:
    """Vanilla/momentum SGD over a list of named parameters."""

    def __init__(
        self,
        named_params: Iterable,
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if momentum < 0:
            raise ValueError(f"momentum must be non-negative, got {momentum}")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._named: List[tuple] = self._normalize(named_params)
        self._velocity: Dict[str, np.ndarray] = {}
        self._masks: Dict[str, np.ndarray] = {}

    @staticmethod
    def _normalize(named_params) -> List[tuple]:
        items = []
        for entry in named_params:
            if isinstance(entry, tuple):
                name, param = entry
            elif isinstance(entry, Parameter):
                name, param = f"param{len(items)}", entry
            else:
                raise TypeError(f"expected (name, Parameter) or Parameter, got {type(entry)}")
            items.append((name, param))
        if not items:
            raise ValueError("optimizer received no parameters")
        return items

    @property
    def named_parameters(self) -> List[tuple]:
        return list(self._named)

    def set_masks(self, masks: Optional[Dict[str, np.ndarray]]) -> None:
        """Install binary keep-masks keyed by parameter name (1 = trainable).

        Pass ``None`` or an empty dict to clear masking.  Installing a mask
        also zeroes any accumulated momentum on pruned coordinates.
        """
        self._masks = dict(masks) if masks else {}
        for name, velocity in self._velocity.items():
            if name in self._masks:
                velocity *= self._masks[name]

    def zero_grad(self) -> None:
        for _, param in self._named:
            param.zero_grad()

    def step(self) -> None:
        """Apply one update to every parameter that has a gradient."""
        for name, param in self._named:
            if param.grad is None:
                continue
            data = param.data  # one realize/property access per parameter
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * data
            mask = self._masks.get(name)
            if mask is not None:
                grad = grad * mask
            if self.momentum:
                velocity = self._velocity.get(name)
                if velocity is None:
                    velocity = np.zeros_like(data)
                    self._velocity[name] = velocity
                velocity *= self.momentum
                velocity += grad
                update = velocity
            else:
                update = grad
            data -= self.lr * update
            if mask is not None:
                # Keep pruned coordinates exactly zero even under weight decay.
                data *= mask

    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: velocity.copy() for name, velocity in self._velocity.items()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        self._velocity = {name: np.array(value) for name, value in state.items()}
