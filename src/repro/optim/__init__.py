"""Optimizers, learning-rate schedules and gradient clipping."""

from .sgd import SGD
from .adam import Adam
from .clip import clip_grad_norm, clip_grad_value, grad_norm
from .lr_scheduler import CosineAnnealingLR, StepLR

__all__ = [
    "SGD",
    "Adam",
    "StepLR",
    "CosineAnnealingLR",
    "clip_grad_norm",
    "clip_grad_value",
    "grad_norm",
]
