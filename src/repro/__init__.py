"""Sub-FedAvg reproduction: personalized federated learning by pruning.

Reproduces "Personalized Federated Learning by Structured and Unstructured
Pruning under Data Heterogeneity" (Vahidian, Morafah, Lin — ICDCS 2021)
from scratch: a numpy autograd engine, CNN layers, synthetic non-IID
benchmarks, the Sub-FedAvg algorithms and all paper baselines.

Quickstart
----------
>>> from repro.federated import Federation, FederationConfig
>>> federation = Federation.from_config(FederationConfig(
...     dataset="mnist", algorithm="sub-fedavg-un",
...     num_clients=10, rounds=3, n_train=600, n_test=200))
>>> history = federation.run()  # doctest: +SKIP

Every experiment axis is a plugin registry: algorithms
(``repro.federated.register_trainer``), datasets
(``repro.data.register_dataset``), partition strategies
(``repro.data.register_partitioner``) and client-participation models
(``repro.federated.register_sampler``).  Run configs serialize to JSON
(including the nested ``data``/``scenario`` scenario sections), and
callbacks (``ProgressLogger``, ``EarlyStopping``, ``CheckpointCallback``,
``WallClockCallback``) hook into the round loop.
"""

from . import data, experiments, federated, models, nn, optim, pruning, tensor, utils

__version__ = "1.0.0"

__all__ = [
    "tensor",
    "nn",
    "optim",
    "data",
    "models",
    "pruning",
    "federated",
    "experiments",
    "utils",
    "__version__",
]
