"""Lazy compute engine: op-graph recording, fusion, pluggable runtimes.

The tensor layer (:mod:`repro.tensor`) records every primitive through
this package.  In the default **eager** mode each op's reference kernel
runs immediately — the historical engine, bit for bit.  Under a **lazy**
:class:`ComputeConfig` (``compute: {engine: lazy}`` in a run config, or
``--runtime`` on the CLI), ops build a :class:`LazyBuffer` graph instead;
the scheduler linearizes it at ``realize()`` points (``.data`` access,
``backward()``, ``.item()``), fuses elementwise chains, folds movement
ops into their consumers, and dispatches kernels through the
``@register_runtime`` backend registry (``numpy`` reference kernels by
default; a ``torch`` runtime auto-registers when torch is importable).
"""

from .config import ComputeConfig
from .lazy import MOVEMENT_OPS, STATS, KernelStats, LazyBuffer, wrap
from .ops import (
    CONTRACT,
    ELEMENTWISE,
    MOVEMENT,
    OPS,
    OTHER,
    REDUCE,
    OpSpec,
    col2im,
    im2col,
    infer_shape,
    run_kernel,
)
from .runtime import (
    NumpyRuntime,
    Runtime,
    RuntimeSpec,
    active_runtime,
    available_runtimes,
    compute_scope,
    fusion_enabled,
    get_runtime,
    get_runtime_spec,
    register_runtime,
    runtime_specs,
    set_compute,
    unregister_runtime,
)
from .schedule import realize_buffer
from . import runtime_torch  # noqa: F401  (auto-registers torch when importable)

__all__ = [
    "ComputeConfig",
    "KernelStats",
    "LazyBuffer",
    "MOVEMENT_OPS",
    "NumpyRuntime",
    "OPS",
    "OpSpec",
    "Runtime",
    "RuntimeSpec",
    "STATS",
    "active_runtime",
    "available_runtimes",
    "col2im",
    "compute_scope",
    "fusion_enabled",
    "get_runtime",
    "get_runtime_spec",
    "im2col",
    "infer_shape",
    "realize_buffer",
    "register_runtime",
    "run_kernel",
    "runtime_specs",
    "set_compute",
    "unregister_runtime",
    "wrap",
    "ELEMENTWISE",
    "REDUCE",
    "CONTRACT",
    "MOVEMENT",
    "OTHER",
]
