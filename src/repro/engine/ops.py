"""The op vocabulary of the compute engine and its numpy reference kernels.

Every primitive the tensor layer can record is declared here as an
:class:`OpSpec`: a kind (elementwise / reduce / contract / movement /
other), the reference numpy kernel, a shape-inference rule, and whether
the kernel produces *saved* intermediates that the autograd layer's
backward closures consume (e.g. the im2col columns of a convolution).

The reference kernels are the exact expressions the historical eager
engine inlined, so eager and lazy realization are bit-identical; pluggable
runtimes (:mod:`repro.engine.runtime`) may override any non-saving op and
fall back to these kernels for the rest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

ELEMENTWISE = "elementwise"
REDUCE = "reduce"
CONTRACT = "contract"
MOVEMENT = "movement"
OTHER = "other"


@dataclass(frozen=True)
class OpSpec:
    """Declaration of one engine primitive."""

    name: str
    kind: str
    kernel: Callable  # kernel(attrs, *arrays) -> value (or (value, saved))
    shape: Callable  # shape(attrs, *src_shapes) -> output shape
    saves: bool = False  # kernel returns (value, saved-intermediates dict)


#: name -> OpSpec registry of every primitive the tensor layer records.
OPS: Dict[str, OpSpec] = {}


def _register(name, kind, kernel, shape, saves=False) -> None:
    OPS[name] = OpSpec(name, kind, kernel, shape, saves)


def run_kernel(
    op: str, attrs: Optional[Dict[str, Any]], arrays
) -> Tuple[np.ndarray, Optional[Dict[str, Any]]]:
    """Execute ``op``'s reference kernel; returns ``(value, saved-or-None)``."""
    spec = OPS[op]
    out = spec.kernel(attrs or {}, *arrays)
    if spec.saves:
        return out
    return out, None


def infer_shape(op: str, attrs: Optional[Dict[str, Any]], shapes) -> Tuple[int, ...]:
    """Output shape of ``op`` from its source shapes, without computing."""
    return tuple(OPS[op].shape(attrs or {}, *shapes))


# ----------------------------------------------------------------------
# Shape-inference rules
# ----------------------------------------------------------------------
def _broadcast(attrs, *shapes):
    return np.broadcast_shapes(*shapes)


def _same(attrs, shape):
    return shape


def reduce_shape(shape, axis, keepdims: bool) -> Tuple[int, ...]:
    """Shape of a numpy reduction over ``axis`` of ``shape``."""
    if axis is None:
        return tuple(1 for _ in shape) if keepdims else ()
    axes = axis if isinstance(axis, tuple) else (axis,)
    normalized = {a % len(shape) for a in axes}
    if keepdims:
        return tuple(1 if i in normalized else dim for i, dim in enumerate(shape))
    return tuple(dim for i, dim in enumerate(shape) if i not in normalized)


def _reduce(attrs, shape):
    return reduce_shape(shape, attrs.get("axis"), attrs.get("keepdims", False))


def matmul_shape(a: Tuple[int, ...], b: Tuple[int, ...]) -> Tuple[int, ...]:
    """Shape of ``a @ b`` under numpy matmul rules (1-D promotion included)."""
    if len(a) == 1 and len(b) == 1:
        return ()
    if len(a) == 1:
        return tuple(b[:-2]) + (b[-1],)
    if len(b) == 1:
        return tuple(a[:-1])
    batch = np.broadcast_shapes(a[:-2], b[:-2])
    return tuple(batch) + (a[-2], b[-1])


def _matmul(attrs, a, b):
    return matmul_shape(a, b)


def _attr_shape(attrs, *shapes):
    return attrs["out_shape"]


def _getitem_shape(attrs, shape):
    # Index semantics (basic/advanced/boolean) are numpy's; probe them on a
    # 1-byte-per-element dummy instead of reimplementing the rules.
    return np.empty(shape, dtype=np.int8)[attrs["index"]].shape


def _pad2d_shape(attrs, shape):
    padding = attrs["padding"]
    return tuple(shape[:-2]) + (shape[-2] + 2 * padding, shape[-1] + 2 * padding)


def _concat_shape(attrs, *shapes):
    axis = attrs.get("axis", 0)
    out = list(shapes[0])
    out[axis] = sum(shape[axis] for shape in shapes)
    return tuple(out)


def _stack_shape(attrs, *shapes):
    axis = attrs.get("axis", 0) % (len(shapes[0]) + 1)
    out = list(shapes[0])
    out.insert(axis, len(shapes))
    return tuple(out)


# ----------------------------------------------------------------------
# Elementwise kernels (the historical eager expressions, verbatim)
# ----------------------------------------------------------------------
_register("add", ELEMENTWISE, lambda attrs, a, b: a + b, _broadcast)
_register("mul", ELEMENTWISE, lambda attrs, a, b: a * b, _broadcast)
_register("div", ELEMENTWISE, lambda attrs, a, b: a / b, _broadcast)
_register("neg", ELEMENTWISE, lambda attrs, a: -a, _same)
_register("pow", ELEMENTWISE, lambda attrs, a: a ** attrs["exponent"], _same)
_register("exp", ELEMENTWISE, lambda attrs, a: np.exp(a), _same)
_register("log", ELEMENTWISE, lambda attrs, a: np.log(a), _same)
_register("tanh", ELEMENTWISE, lambda attrs, a: np.tanh(a), _same)
_register("sigmoid", ELEMENTWISE, lambda attrs, a: 1.0 / (1.0 + np.exp(-a)), _same)
_register("relu", ELEMENTWISE, lambda attrs, a: a * (a > 0), _same)
_register("abs", ELEMENTWISE, lambda attrs, a: np.abs(a), _same)

# ----------------------------------------------------------------------
# Reductions
# ----------------------------------------------------------------------
_register(
    "sum",
    REDUCE,
    lambda attrs, a: a.sum(axis=attrs.get("axis"), keepdims=attrs.get("keepdims", False)),
    _reduce,
)
_register(
    "max",
    REDUCE,
    lambda attrs, a: a.max(axis=attrs.get("axis"), keepdims=attrs.get("keepdims", False)),
    _reduce,
)

# ----------------------------------------------------------------------
# Movement ops (realized as views folded into consumers, never kernels)
# ----------------------------------------------------------------------
_register(
    "reshape",
    MOVEMENT,
    lambda attrs, a: a.reshape(attrs["shape"]),
    lambda attrs, shape: tuple(attrs["shape"]),
)
_register(
    "transpose",
    MOVEMENT,
    lambda attrs, a: a.transpose(attrs["axes"]),
    lambda attrs, shape: tuple(shape[a] for a in attrs["axes"]),
)
_register(
    "expand",
    MOVEMENT,
    lambda attrs, a: np.broadcast_to(a, attrs["shape"]),
    lambda attrs, shape: tuple(attrs["shape"]),
)


def movement_apply(op: str, attrs: Dict[str, Any], array: np.ndarray) -> np.ndarray:
    """Apply a movement op as a (cheap, usually zero-copy) numpy view."""
    return OPS[op].kernel(attrs, array)


# ----------------------------------------------------------------------
# Contractions
# ----------------------------------------------------------------------
_register("matmul", CONTRACT, lambda attrs, a, b: a @ b, _matmul)


def im2col(
    padded: np.ndarray, kernel_h: int, kernel_w: int, stride: int, out_h: int, out_w: int
) -> np.ndarray:
    """Unfold a padded ``(N, C, H, W)`` batch into ``(N, C*kh*kw, out_h*out_w)``."""
    batch, channels = padded.shape[:2]
    cols = np.empty(
        (batch, channels, kernel_h, kernel_w, out_h, out_w), dtype=padded.dtype
    )
    for i in range(kernel_h):
        i_end = i + stride * out_h
        for j in range(kernel_w):
            j_end = j + stride * out_w
            cols[:, :, i, j] = padded[:, :, i:i_end:stride, j:j_end:stride]
    return cols.reshape(batch, channels * kernel_h * kernel_w, out_h * out_w)


def col2im(
    cols: np.ndarray,
    padded_shape: Tuple[int, int, int, int],
    kernel_h: int,
    kernel_w: int,
    stride: int,
    out_h: int,
    out_w: int,
) -> np.ndarray:
    """Fold ``(N, C*kh*kw, out_h*out_w)`` columns back, summing overlaps."""
    batch, channels = padded_shape[:2]
    grad = np.zeros(padded_shape, dtype=cols.dtype)
    cols = cols.reshape(batch, channels, kernel_h, kernel_w, out_h, out_w)
    for i in range(kernel_h):
        i_end = i + stride * out_h
        for j in range(kernel_w):
            j_end = j + stride * out_w
            grad[:, :, i:i_end:stride, j:j_end:stride] += cols[:, :, i, j]
    return grad


def _conv2d_kernel(attrs, x, weight, bias=None):
    stride, padding = attrs["stride"], attrs["padding"]
    out_h, out_w = attrs["out_shape"][-2:]
    batch = x.shape[0]
    out_channels, _, kernel_h, kernel_w = weight.shape
    if padding:
        padded = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    else:
        padded = x
    cols = im2col(padded, kernel_h, kernel_w, stride, out_h, out_w)
    w2d = weight.reshape(out_channels, -1)
    result = np.einsum("fk,nkl->nfl", w2d, cols, optimize=True)
    result = result.reshape(batch, out_channels, out_h, out_w)
    if bias is not None:
        result = result + bias.reshape(1, -1, 1, 1)
    return result, {"cols": cols, "w2d": w2d, "padded_shape": padded.shape}


_register("conv2d", CONTRACT, _conv2d_kernel, _attr_shape, saves=True)


def _max_pool2d_kernel(attrs, x):
    kernel, stride = attrs["kernel"], attrs["stride"]
    out_h, out_w = attrs["out_shape"][-2:]
    batch, channels = x.shape[:2]
    windows = np.empty((batch, channels, out_h, out_w, kernel * kernel), dtype=x.dtype)
    idx = 0
    for i in range(kernel):
        i_end = i + stride * out_h
        for j in range(kernel):
            j_end = j + stride * out_w
            windows[..., idx] = x[:, :, i:i_end:stride, j:j_end:stride]
            idx += 1
    argmax = windows.argmax(axis=-1)
    value = np.take_along_axis(windows, argmax[..., None], axis=-1)[..., 0]
    return value, {"argmax": argmax}


_register("max_pool2d", CONTRACT, _max_pool2d_kernel, _attr_shape, saves=True)


def _log_softmax_kernel(attrs, x):
    axis = attrs.get("axis", -1)
    shifted = x - x.max(axis=axis, keepdims=True)
    log_sum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    value = shifted - log_sum
    return value, {"softmax": np.exp(value)}


_register("log_softmax", CONTRACT, _log_softmax_kernel, _same, saves=True)


def _nll_loss_kernel(attrs, log_probs):
    targets = attrs["targets"]
    picked = log_probs[np.arange(log_probs.shape[0]), targets]
    return np.asarray(-picked.mean())


_register("nll_loss", OTHER, _nll_loss_kernel, lambda attrs, shape: ())

# ----------------------------------------------------------------------
# Indexing / padding / joining
# ----------------------------------------------------------------------
_register("getitem", OTHER, lambda attrs, a: a[attrs["index"]], _getitem_shape)


def _pad2d_kernel(attrs, a):
    padding = attrs["padding"]
    pad_width = [(0, 0)] * (a.ndim - 2) + [(padding, padding), (padding, padding)]
    return np.pad(a, pad_width)


_register("pad2d", OTHER, _pad2d_kernel, _pad2d_shape)
_register(
    "concat",
    OTHER,
    lambda attrs, *arrays: np.concatenate(arrays, axis=attrs.get("axis", 0)),
    _concat_shape,
)
_register(
    "stack",
    OTHER,
    lambda attrs, *arrays: np.stack(arrays, axis=attrs.get("axis", 0)),
    _stack_shape,
)
