"""Graph scheduling: linearize at realize() points, fuse, execute.

``realize_buffer`` is the engine's only exit to real numbers.  It walks
the pending graph below one :class:`~repro.engine.lazy.LazyBuffer` in
topological order, groups it into kernels, and executes the kernels
through the active runtime (numpy when none is active — a buffer can
always realize, even outside a ``compute_scope``).

Two optimizations happen between linearization and execution:

* **Elementwise fusion** — a chain of elementwise ops where each interior
  node has exactly one consumer and is not ``keep``-marked collapses into
  one fused kernel; only the chain tail materializes.  Interior values
  the autograd layer will read are ``keep``-marked at record time, so
  training never recomputes (and stays bit-identical with eager).
* **Movement folding** — reshape/transpose/expand never launch kernels;
  they resolve to numpy views at the consuming kernel's input fetch
  (``STATS.movements_folded`` counts them).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from .lazy import MOVEMENT_OPS, STATS, LazyBuffer
from .ops import ELEMENTWISE, OPS, movement_apply
from . import runtime as _runtime


def realize_buffer(root: LazyBuffer) -> np.ndarray:
    """Compute (and cache) the value of ``root``, fusing where possible."""
    if root.realized is not None:
        return root.realized
    active = _runtime.active_runtime()
    runtime = active if active is not None else _runtime.get_runtime("numpy")
    order = _linearize(root)
    for group in _fuse(order, _runtime.fusion_enabled()):
        _run_group(group, runtime)
    return _as_view(root)


def _linearize(root: LazyBuffer) -> List[LazyBuffer]:
    """Topological order of every unrealized node reachable from ``root``."""
    order: List[LazyBuffer] = []
    visited = set()
    stack = [(root, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            order.append(node)
            continue
        if id(node) in visited:
            continue
        visited.add(id(node))
        stack.append((node, True))
        for src in node.srcs:
            if src.realized is None and id(src) not in visited:
                stack.append((src, False))
    return order


def _fuse(order: List[LazyBuffer], fusion: bool) -> List[List[LazyBuffer]]:
    """Group the linearized nodes into kernels (movement ops join none)."""
    consumers: Dict[int, int] = {}
    for node in order:
        for src in node.srcs:
            if src.realized is None:
                consumers[id(src)] = consumers.get(id(src), 0) + 1
    groups: List[List[LazyBuffer]] = []
    group_of: Dict[int, List[LazyBuffer]] = {}
    for node in order:
        if node.op in MOVEMENT_OPS:
            continue
        tail = None
        if fusion and OPS[node.op].kind == ELEMENTWISE:
            for src in node.srcs:
                group = group_of.get(id(src))
                if (
                    group is not None
                    and group[-1] is src
                    and not src.keep
                    and consumers.get(id(src)) == 1
                    and OPS[src.op].kind == ELEMENTWISE
                ):
                    tail = group
                    break
        if tail is not None:
            tail.append(node)
            group_of[id(node)] = tail
        else:
            group = [node]
            groups.append(group)
            group_of[id(node)] = group
    return groups


def _run_group(group: List[LazyBuffer], runtime) -> None:
    """Execute one (possibly fused) kernel; materialize only the tail."""
    device_values: Dict[int, object] = {}
    for node in group:
        args = [_fetch(src, device_values, runtime) for src in node.srcs]
        value, saved = runtime.run(node.op, node.attrs, args)
        device_values[id(node)] = value
        if saved is not None:
            node.saved = saved
    tail = group[-1]
    value = device_values[id(tail)]
    if not isinstance(value, np.ndarray):
        value = runtime.to_host(value)
        if not isinstance(value, np.ndarray):
            value = np.asarray(value)  # numpy returns scalars for 0-d results
    tail.realized = value
    STATS.kernels += 1
    STATS.ops_fused += len(group) - 1


def _fetch(src: LazyBuffer, device_values: Dict[int, object], runtime):
    """Resolve one kernel input: group temp, cached result, or folded view.

    Host arrays are returned as-is; :meth:`Runtime.run` uploads them when
    (and only when) the op actually executes on the backend.
    """
    if id(src) in device_values:
        return device_values[id(src)]
    if src.realized is not None:
        return src.realized
    if src.op in MOVEMENT_OPS:
        return _as_view(src)
    # Defensive: topological order should have realized every source.
    return realize_buffer(src)


def _as_view(buf: LazyBuffer) -> np.ndarray:
    """Realize a movement chain as stacked numpy views over its base."""
    if buf.realized is not None:
        return buf.realized
    if buf.op not in MOVEMENT_OPS:
        # The scheduling pass materializes every non-movement tail; reaching
        # here means `buf` was not part of the schedule (e.g. a fresh root).
        return realize_buffer(buf)
    buf.realized = movement_apply(buf.op, buf.attrs, _as_view(buf.srcs[0]))
    STATS.movements_folded += 1
    return buf.realized
