"""The lazy op-graph IR: :class:`LazyBuffer` nodes and realization stats.

A :class:`LazyBuffer` is one node of a deferred computation: an op name
(resolved against :data:`repro.engine.ops.OPS`), source buffers, the op's
attributes and the inferred output shape.  Nothing is computed at
construction time — the scheduler (:mod:`repro.engine.schedule`)
linearizes and fuses the graph when :meth:`LazyBuffer.realize` is called,
dispatching kernels through the active runtime
(:mod:`repro.engine.runtime`).

Two flags shape scheduling:

* ``keep`` — the autograd layer marks buffers whose values a backward
  closure will read; the fusion pass never hides them inside a fused
  kernel, so training realizes every needed intermediate exactly once
  (no rematerialization, bit-identical to the eager engine).
* ``realized`` — the cached result.  Realizing is idempotent; a buffer
  reached from several realize() points is computed once.

:data:`STATS` counts recorded ops, launched kernels, ops fused away and
movement ops folded into their consumers — the currency of the fusion
tests and the ``BENCH_tensor`` microbenchmark.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

import numpy as np

#: Movement ops are pure reindexings: they realize as numpy views folded
#: into their consumers' input fetch, never as kernels of their own.
MOVEMENT_OPS = frozenset({"reshape", "transpose", "expand"})


class KernelStats:
    """Counters over lazy-graph recording and realization."""

    __slots__ = ("ops_recorded", "kernels", "ops_fused", "movements_folded", "fallbacks")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.ops_recorded = 0  # LazyBuffer nodes created (movement included)
        self.kernels = 0  # kernels actually launched at realize()
        self.ops_fused = 0  # ops that rode along inside a fused kernel
        self.movements_folded = 0  # movement ops resolved as views, not kernels
        self.fallbacks = 0  # ops a non-numpy runtime punted to the reference kernels

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"KernelStats({inner})"


#: Process-global counters; tests reset() around the region they measure.
STATS = KernelStats()


class LazyBuffer:
    """One node of the deferred op graph."""

    __slots__ = ("op", "srcs", "attrs", "shape", "keep", "realized", "saved")

    def __init__(
        self,
        op: str,
        srcs: Tuple["LazyBuffer", ...],
        attrs: Optional[Dict[str, Any]],
        shape: Tuple[int, ...],
    ) -> None:
        self.op = op
        self.srcs = srcs
        self.attrs = attrs
        self.shape = tuple(shape)
        self.keep = False
        self.realized: Optional[np.ndarray] = None
        self.saved: Optional[Dict[str, Any]] = None
        if op != "const":
            STATS.ops_recorded += 1

    @classmethod
    def const(cls, array: np.ndarray) -> "LazyBuffer":
        """Wrap an already-computed array as a realized leaf."""
        buf = cls("const", (), None, array.shape)
        buf.realized = array
        return buf

    # ------------------------------------------------------------------
    # ndarray-compatible introspection (no realization triggered)
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return int(np.prod(self.shape)) if self.shape else 1

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def dtype(self):
        if self.realized is not None:
            return self.realized.dtype
        return np.dtype(np.float64)

    def realize(self) -> np.ndarray:
        """Schedule, fuse and execute everything this buffer depends on."""
        from .schedule import realize_buffer

        return realize_buffer(self)

    def __repr__(self) -> str:
        state = "realized" if self.realized is not None else "pending"
        return f"LazyBuffer(op={self.op!r}, shape={self.shape}, {state})"


def wrap(value) -> LazyBuffer:
    """Lift an ndarray (or pass through a LazyBuffer) into the graph."""
    return value if type(value) is LazyBuffer else LazyBuffer.const(value)
