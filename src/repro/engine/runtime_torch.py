"""Optional torch runtime: registered only when ``torch`` is installed.

Implements the dense compute core — elementwise, reductions, matmul — on
torch tensors (CUDA when available, CPU otherwise); everything else falls
back to the numpy reference kernels through :meth:`Runtime.run`.  All
math stays in float64, matching the engine's default dtype.

Registration is gated on ``importlib.util.find_spec`` so importing this
module never pays for (or requires) the torch import itself; torch loads
on first :func:`~repro.engine.runtime.get_runtime` instantiation.  On a
torch-less install the registry simply lists only the numpy runtime.
"""

from __future__ import annotations

import importlib.util

import numpy as np

from .runtime import Runtime, register_runtime

if importlib.util.find_spec("torch") is not None:

    @register_runtime(
        "torch", summary="elementwise/reduce/matmul on torch (CUDA if available)"
    )
    class TorchRuntime(Runtime):
        """Torch-backed realization of the dense compute core."""

        _CORE = frozenset(
            {
                "add", "mul", "div", "neg", "pow", "exp", "log", "tanh",
                "sigmoid", "relu", "abs", "sum", "max", "matmul",
            }
        )

        def __init__(self) -> None:
            import torch

            self.torch = torch
            self.device = "cuda" if torch.cuda.is_available() else "cpu"

        def supports(self, op: str) -> bool:
            return op in self._CORE

        def to_device(self, array: np.ndarray):
            if not array.flags.writeable:
                # torch.from_numpy rejects or warns on read-only views
                # (e.g. broadcast results of folded expand ops).
                array = np.ascontiguousarray(array)
            try:
                tensor = self.torch.from_numpy(array)
            except ValueError:  # negative-stride views
                tensor = self.torch.from_numpy(np.ascontiguousarray(array))
            return tensor.to(self.device) if self.device != "cpu" else tensor

        def to_host(self, value) -> np.ndarray:
            return value.detach().cpu().numpy()

        def execute(self, op: str, attrs, args):
            torch, attrs = self.torch, attrs or {}
            if op == "add":
                return args[0] + args[1]
            if op == "mul":
                return args[0] * args[1]
            if op == "div":
                return args[0] / args[1]
            if op == "neg":
                return -args[0]
            if op == "pow":
                return args[0] ** attrs["exponent"]
            if op == "exp":
                return torch.exp(args[0])
            if op == "log":
                return torch.log(args[0])
            if op == "tanh":
                return torch.tanh(args[0])
            if op == "sigmoid":
                return torch.sigmoid(args[0])
            if op == "relu":
                return args[0] * (args[0] > 0)
            if op == "abs":
                return torch.abs(args[0])
            if op == "matmul":
                return args[0] @ args[1]
            if op in ("sum", "max"):
                return self._reduce(op, attrs, args[0])
            raise KeyError(f"torch runtime does not implement {op!r}")

        def _reduce(self, op, attrs, value):
            axis, keepdims = attrs.get("axis"), attrs.get("keepdims", False)
            if axis is None:
                result = value.sum() if op == "sum" else value.max()
                if keepdims:
                    result = result.reshape((1,) * value.ndim)
                return result
            if op == "sum":
                return value.sum(dim=axis, keepdim=keepdims)
            return self.torch.amax(value, dim=axis, keepdim=keepdims)
