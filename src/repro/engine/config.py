"""The ``compute:`` section of a run config: which engine executes tensors.

:class:`ComputeConfig` is attached to a
:class:`~repro.federated.builder.FederationConfig` as its ``compute``
section.  The default — the historical eager engine — joins the canonical
hash payload *only when changed*, so every pre-compute-section config
keeps its ``stable_hash`` and existing result stores still resume.

``engine="lazy"`` records tensor ops into the
:mod:`repro.engine` op graph instead of executing eagerly, realizing
through the named ``runtime`` (see :func:`repro.engine.register_runtime`;
``repro list`` prints the registry).  ``fusion=False`` disables
elementwise-chain fusion and movement-op folding while keeping the lazy
recording path — useful for bisecting scheduler issues.
"""

from __future__ import annotations

from dataclasses import dataclass

from .runtime import get_runtime_spec

_ENGINES = ("eager", "lazy")


@dataclass(frozen=True)
class ComputeConfig:
    """Declarative choice of tensor-execution engine for one run."""

    engine: str = "eager"  # eager (historical) | lazy (record + fuse + realize)
    runtime: str = "numpy"  # realization backend for the lazy engine
    fusion: bool = True  # fuse elementwise chains / fold movement ops

    def __post_init__(self) -> None:
        if self.engine not in _ENGINES:
            raise ValueError(
                f"engine must be one of {_ENGINES}, got {self.engine!r}"
            )
        get_runtime_spec(self.runtime)  # raises KeyError for unknown runtimes
