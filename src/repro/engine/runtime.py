"""Pluggable realization backends: the ``@register_runtime`` registry.

A :class:`Runtime` is where the lazy graph's kernels actually execute.
The registry follows the repo-wide plugin convention (trainers, datasets,
partitioners, samplers, fleets, round policies): a third-party backend
registers itself with a decorator and immediately appears in ``repro
list`` and the ``compute:`` config section::

    from repro.engine import Runtime, register_runtime

    @register_runtime("my-accel", summary="my accelerator backend")
    class MyRuntime(Runtime):
        def supports(self, op): return op in {"add", "mul", "matmul"}
        def to_device(self, array): ...
        def to_host(self, value): ...
        def execute(self, op, attrs, args): ...

Ops a runtime does not support — and every op with saved backward
intermediates — fall back to the numpy reference kernels in
:mod:`repro.engine.ops`, so a partial backend is still a correct one.

The active compute mode is process-global (``None`` = the historical
eager engine), entered via :func:`compute_scope` around a run; the
:class:`~repro.federated.federation.Federation` facade does this from the
config's ``compute:`` section.  Concurrent *threads* of one run share the
mode; running two in-process federations under different compute configs
concurrently is unsupported (the sweep engine's process executor
isolates cells, so sweeps are unaffected).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple, Type

import numpy as np

from .lazy import STATS
from .ops import OPS, run_kernel


class Runtime:
    """Base class for realization backends.

    Subclasses implement device transfer and per-op execution for the ops
    they claim via :meth:`supports`; :meth:`run` (called by the scheduler)
    routes everything else through the numpy reference kernels.
    """

    name = "base"

    def supports(self, op: str) -> bool:
        raise NotImplementedError

    def to_device(self, array: np.ndarray):
        """Upload a host ndarray to the runtime's native representation."""
        return array

    def to_host(self, value) -> np.ndarray:
        """Download a runtime-native value back to a host ndarray."""
        return value

    def execute(self, op: str, attrs: Optional[Dict[str, Any]], args):
        """Run one supported op over device values, returning a device value."""
        raise NotImplementedError

    def run(self, op: str, attrs: Optional[Dict[str, Any]], args) -> Tuple[Any, Any]:
        """Execute ``op`` on this runtime, falling back to the reference kernels.

        Returns ``(device_value, saved_or_None)``.  Saved-intermediate ops
        (conv2d, max_pool2d, log_softmax) always use the reference kernels —
        their saved arrays are consumed host-side by backward closures.
        """
        spec = OPS[op]
        if spec.saves or not self.supports(op):
            if self.name != "numpy":
                STATS.fallbacks += 1
            host = [a if isinstance(a, np.ndarray) else self.to_host(a) for a in args]
            return run_kernel(op, attrs, host)
        device = [self.to_device(a) if isinstance(a, np.ndarray) else a for a in args]
        return self.execute(op, attrs, device), None


@dataclass(frozen=True)
class RuntimeSpec:
    """Registry entry: a runtime backend and its one-line description."""

    name: str
    summary: str
    cls: Type[Runtime]


_RUNTIMES: Dict[str, RuntimeSpec] = {}
_INSTANCES: Dict[str, Runtime] = {}


def register_runtime(name: str, summary: str = ""):
    """Class decorator registering a :class:`Runtime` under ``name``."""

    def decorator(cls: Type[Runtime]) -> Type[Runtime]:
        doc = (cls.__doc__ or "").strip().splitlines()
        _RUNTIMES[name] = RuntimeSpec(name, summary or (doc[0] if doc else ""), cls)
        cls.name = name
        _INSTANCES.pop(name, None)
        return cls

    return decorator


def unregister_runtime(name: str) -> RuntimeSpec:
    """Remove one backend (plugin teardown / test isolation); returns it."""
    if name == "numpy":
        raise ValueError("the numpy reference runtime cannot be unregistered")
    try:
        spec = _RUNTIMES.pop(name)
    except KeyError:
        raise KeyError(f"no compute runtime is registered as {name!r}") from None
    _INSTANCES.pop(name, None)
    return spec


def get_runtime_spec(name: str) -> RuntimeSpec:
    try:
        return _RUNTIMES[name]
    except KeyError:
        raise KeyError(
            f"unknown compute runtime {name!r}; choose from {sorted(_RUNTIMES)}"
        ) from None


def get_runtime(name: str) -> Runtime:
    """The (cached) runtime instance registered under ``name``."""
    if name not in _INSTANCES:
        _INSTANCES[name] = get_runtime_spec(name).cls()
    return _INSTANCES[name]


def available_runtimes() -> Tuple[str, ...]:
    return tuple(_RUNTIMES)


def runtime_specs() -> Tuple[RuntimeSpec, ...]:
    return tuple(_RUNTIMES.values())


@register_runtime("numpy", summary="reference kernels on host numpy (default)")
class NumpyRuntime(Runtime):
    """Reference runtime: every kernel is the eager engine's numpy expression."""

    def supports(self, op: str) -> bool:
        return op in OPS

    def execute(self, op: str, attrs, args):
        return OPS[op].kernel(attrs or {}, *args)


# ----------------------------------------------------------------------
# Active compute mode (None = eager, the historical engine)
# ----------------------------------------------------------------------
_ACTIVE: Optional[Runtime] = None
_FUSION = True


def active_runtime() -> Optional[Runtime]:
    """The runtime lazy recording dispatches to, or None in eager mode."""
    return _ACTIVE


def fusion_enabled() -> bool:
    return _FUSION


def set_compute(config=None) -> None:
    """Select the engine from a ``ComputeConfig`` (None → eager)."""
    global _ACTIVE, _FUSION
    if config is None or config.engine == "eager":
        _ACTIVE, _FUSION = None, True
    else:
        _ACTIVE, _FUSION = get_runtime(config.runtime), config.fusion


@contextmanager
def compute_scope(config=None):
    """Run a block under the compute mode described by ``config``."""
    global _ACTIVE, _FUSION
    previous = (_ACTIVE, _FUSION)
    set_compute(config)
    try:
        yield
    finally:
        _ACTIVE, _FUSION = previous
