"""Paper architectures (LeNet-5 + BN, 5-layer CNN) and the model registry."""

from .base import ConvNet, ConvUnit
from .cnn import CNN5
from .lenet import LeNet5
from .mlp import MLP
from .registry import (
    create_model,
    input_spatial_size,
    parameter_census,
    register_model,
    unregister_model,
)
from .vgg import VGGLite

__all__ = [
    "ConvNet",
    "ConvUnit",
    "LeNet5",
    "CNN5",
    "MLP",
    "VGGLite",
    "create_model",
    "register_model",
    "unregister_model",
    "input_spatial_size",
    "parameter_census",
]
