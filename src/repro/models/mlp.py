"""A small multilayer perceptron.

Not used by the paper's main tables; serves the fast unit/property tests and
the unstructured-pruning ablations (an all-FC network exercises the pure
parameter-level pruning path without conv wiring).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..nn import Linear
from ..tensor import Tensor
from .base import ConvNet


class MLP(ConvNet):
    """Fully connected ReLU network over flattened inputs."""

    conv_units: list = []
    first_fc = None

    def __init__(
        self,
        in_features: int,
        num_classes: int,
        hidden: Sequence[int] = (64,),
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.num_classes = num_classes
        sizes = [in_features, *hidden, num_classes]
        names = []
        for index, (n_in, n_out) in enumerate(zip(sizes[:-1], sizes[1:]), start=1):
            layer = Linear(n_in, n_out, rng=rng)
            setattr(self, f"fc{index}", layer)
            names.append(f"fc{index}")
        # classifier_names is a class attribute on ConvNet; override per-instance.
        object.__setattr__(self, "classifier_names", names)

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim > 2:
            x = x.flatten_batch()
        layers = [getattr(self, name) for name in self.classifier_names]
        for layer in layers[:-1]:
            x = layer(x).relu()
        return layers[-1](x)
