"""The paper's 5-layer CNN for MNIST and EMNIST.

§4.1: two 5×5 convolutions with 10 and 20 channels, each followed by
batch-norm and 2×2 max pooling, then a 50-unit fully connected layer and a
final classifier layer ("30 channels" = 10 + 20 prunable conv channels).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import BatchNorm2d, Conv2d, Linear
from ..tensor import Tensor, max_pool2d
from .base import ConvNet, ConvUnit


class CNN5(ConvNet):
    """5-layer CNN for 1×28×28 inputs (MNIST / EMNIST)."""

    conv_units = [
        ConvUnit(conv="conv1", bn="bn1", next_conv="conv2"),
        ConvUnit(conv="conv2", bn="bn2", next_conv=None, spatial=4),
    ]
    classifier_names = ["fc1", "fc2"]
    first_fc = "fc1"

    def __init__(
        self,
        num_classes: int = 10,
        in_channels: int = 1,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.num_classes = num_classes
        self.conv1 = Conv2d(in_channels, 10, kernel_size=5, rng=rng)
        self.bn1 = BatchNorm2d(10)
        self.conv2 = Conv2d(10, 20, kernel_size=5, rng=rng)
        self.bn2 = BatchNorm2d(20)
        self.fc1 = Linear(20 * 4 * 4, 50, rng=rng)
        self.fc2 = Linear(50, num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        x = max_pool2d(self.bn1(self.conv1(x)).relu(), 2)
        x = max_pool2d(self.bn2(self.conv2(x)).relu(), 2)
        x = x.flatten_batch()
        x = self.fc1(x).relu()
        return self.fc2(x)
