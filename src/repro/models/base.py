"""Model base class carrying the structural metadata pruning needs.

Structured pruning must know which batch-norm scale vector gates which
convolution, what the next layer consuming those channels is, and how conv
channels map onto flattened fully-connected inputs.  :class:`ConvNet`
captures that wiring explicitly so the pruning subsystem works for any
architecture registered here without hard-coding layer names.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..nn import Module


@dataclass(frozen=True)
class ConvUnit:
    """One prunable conv stage: a conv layer and the BN that gates it.

    ``next_conv`` is the name of the following conv layer whose input
    channels correspond to this unit's output channels, or ``None`` when the
    unit feeds the flattened classifier instead.  ``spatial`` is the spatial
    size (H = W) of this unit's output *at the point where it is flattened*,
    used to map pruned channels onto classifier input columns.
    """

    conv: str
    bn: str
    next_conv: Optional[str] = None
    spatial: Optional[int] = None


class ConvNet(Module):
    """Base class for the paper's CNNs.

    Subclasses populate:

    * ``conv_units`` — ordered :class:`ConvUnit` wiring metadata,
    * ``classifier_names`` — ordered names of fully connected layers,
    * ``first_fc`` — name of the FC layer consuming the flattened conv map.
    """

    conv_units: List[ConvUnit] = []
    classifier_names: List[str] = []
    first_fc: Optional[str] = None

    def channel_census(self) -> List[Tuple[str, int]]:
        """(bn name, channel count) for every prunable conv stage."""
        census = []
        for unit in self.conv_units:
            bn = dict(self.named_modules())[unit.bn]
            census.append((unit.bn, bn.num_features))
        return census

    def total_channels(self) -> int:
        return sum(count for _, count in self.channel_census())

    def fc_weight_names(self) -> List[str]:
        """Parameter names of classifier weights (unstructured targets in Hy)."""
        return [f"{name}.weight" for name in self.classifier_names]

    def conv_weight_names(self) -> List[str]:
        return [f"{unit.conv}.weight" for unit in self.conv_units]

    def prunable_weight_names(self) -> List[str]:
        """All weight matrices subject to unstructured pruning (Un variant).

        Biases and batch-norm parameters are exempt, following standard
        magnitude-pruning practice (Han et al. 2015) and the reference code.
        """
        return self.conv_weight_names() + self.fc_weight_names()
