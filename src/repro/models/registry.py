"""Model factory keyed by dataset family, matching the paper's pairing.

§4.1 pairs architectures with datasets: the 5-layer CNN for MNIST/EMNIST and
LeNet-5 for CIFAR-10/100.  ``create_model`` reproduces that pairing and
seeds initialization so that all clients and the server can be constructed
from the identical ``theta_0`` the algorithms require.

The pairing is extensible: a dataset registered through
:func:`repro.data.registry.register_dataset` gets a model in one of two
ways — either it registers its own builder with :func:`register_model`, or
it falls back to a shape-generic MLP over the flattened input (so a
third-party scenario runs end-to-end with zero model code).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from ..data.synthetic import SPECS
from .base import ConvNet
from .cnn import CNN5
from .lenet import LeNet5
from .mlp import MLP

#: dataset name -> builder(num_classes, in_channels, rng).  The paper's
#: architectures are input-size-specific (their FC dimensions assume 28x28
#: and 32x32 inputs), hence the per-dataset pairing.
_BUILDERS: Dict[str, Callable[..., ConvNet]] = {
    "mnist": lambda num_classes, in_channels, rng: CNN5(num_classes, in_channels, rng),
    "emnist": lambda num_classes, in_channels, rng: CNN5(num_classes, in_channels, rng),
    "cifar10": lambda num_classes, in_channels, rng: LeNet5(num_classes, in_channels, rng),
    "cifar100": lambda num_classes, in_channels, rng: LeNet5(num_classes, in_channels, rng),
}


def register_model(dataset: str) -> Callable:
    """Decorator pairing a model builder with a registered dataset.

    The builder receives ``(num_classes, in_channels, rng)`` and must
    return a :class:`~repro.models.base.ConvNet`:

    >>> @register_model("my-data")
    ... def build(num_classes, in_channels, rng):
    ...     return CNN5(num_classes, in_channels, rng)
    """

    def decorator(builder: Callable[..., ConvNet]) -> Callable[..., ConvNet]:
        if dataset in _BUILDERS:
            raise ValueError(f"a model is already registered for {dataset!r}")
        _BUILDERS[dataset] = builder
        return builder

    return decorator


def unregister_model(dataset: str) -> Callable[..., ConvNet]:
    """Remove one pairing (plugin teardown / test isolation); returns it."""
    try:
        return _BUILDERS.pop(dataset)
    except KeyError:
        raise KeyError(f"no model is registered for {dataset!r}") from None


def create_model(dataset: str, seed: int = 0, num_classes: Optional[int] = None) -> ConvNet:
    """Build the architecture paired with ``dataset``, with seeded init.

    Datasets without a registered builder (third-party scenario plugins)
    fall back to an MLP over the flattened input — shape-agnostic, so any
    registered dataset trains out of the box.
    """
    spec = SPECS[dataset]
    classes = num_classes if num_classes is not None else spec.num_classes
    rng = np.random.default_rng(seed)
    builder = _BUILDERS.get(dataset)
    if builder is None:
        in_features = int(np.prod(spec.shape))
        return MLP(in_features, classes, hidden=(64,), rng=rng)
    return builder(classes, spec.shape[0], rng)


def input_spatial_size(dataset: str) -> int:
    """Side length of the dataset's square images."""
    return SPECS[dataset].shape[1]


def parameter_census(model: ConvNet) -> Dict[str, int]:
    """Per-parameter element counts plus a ``total`` entry."""
    census = {name: param.size for name, param in model.named_parameters()}
    census["total"] = sum(
        count for name, count in census.items() if name != "total"
    )
    return census
