"""Model factory keyed by dataset family, matching the paper's pairing.

§4.1 pairs architectures with datasets: the 5-layer CNN for MNIST/EMNIST and
LeNet-5 for CIFAR-10/100.  ``create_model`` reproduces that pairing and
seeds initialization so that all clients and the server can be constructed
from the identical ``theta_0`` the algorithms require.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from ..data.synthetic import SPECS
from .base import ConvNet
from .cnn import CNN5
from .lenet import LeNet5

_BUILDERS: Dict[str, Callable[..., ConvNet]] = {
    "mnist": lambda num_classes, in_channels, rng: CNN5(num_classes, in_channels, rng),
    "emnist": lambda num_classes, in_channels, rng: CNN5(num_classes, in_channels, rng),
    "cifar10": lambda num_classes, in_channels, rng: LeNet5(num_classes, in_channels, rng),
    "cifar100": lambda num_classes, in_channels, rng: LeNet5(num_classes, in_channels, rng),
}


def create_model(dataset: str, seed: int = 0, num_classes: Optional[int] = None) -> ConvNet:
    """Build the paper's architecture for ``dataset`` with seeded init."""
    if dataset not in _BUILDERS:
        raise KeyError(f"no model registered for dataset {dataset!r}")
    spec = SPECS[dataset]
    classes = num_classes if num_classes is not None else spec.num_classes
    rng = np.random.default_rng(seed)
    return _BUILDERS[dataset](classes, spec.shape[0], rng)


def input_spatial_size(dataset: str) -> int:
    """Side length of the dataset's square images."""
    return SPECS[dataset].shape[1]


def parameter_census(model: ConvNet) -> Dict[str, int]:
    """Per-parameter element counts plus a ``total`` entry."""
    census = {name: param.size for name, param in model.named_parameters()}
    census["total"] = sum(
        count for name, count in census.items() if name != "total"
    )
    return census
