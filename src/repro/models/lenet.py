"""LeNet-5 with batch normalization — the paper's CIFAR-10/100 architecture.

The paper (§4.1) uses LeNet-5 (LeCun et al. 1998) with a batch-norm layer
added after each convolution, quoted at ≈62k parameters for CIFAR-10.  The
conv stages hold 6 + 16 = 22 channels; §4.2.3's FLOP discussion speaks of
"11 (out of 22) channels", confirming 22 prunable channels.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import BatchNorm2d, Conv2d, Linear, MaxPool2d
from ..tensor import Tensor, max_pool2d
from .base import ConvNet, ConvUnit


class LeNet5(ConvNet):
    """LeNet-5 for 3×32×32 inputs (CIFAR-10/100) with BN after each conv."""

    conv_units = [
        ConvUnit(conv="conv1", bn="bn1", next_conv="conv2"),
        ConvUnit(conv="conv2", bn="bn2", next_conv=None, spatial=5),
    ]
    classifier_names = ["fc1", "fc2", "fc3"]
    first_fc = "fc1"

    def __init__(
        self,
        num_classes: int = 10,
        in_channels: int = 3,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.num_classes = num_classes
        self.conv1 = Conv2d(in_channels, 6, kernel_size=5, rng=rng)
        self.bn1 = BatchNorm2d(6)
        self.pool = MaxPool2d(2)
        self.conv2 = Conv2d(6, 16, kernel_size=5, rng=rng)
        self.bn2 = BatchNorm2d(16)
        self.fc1 = Linear(16 * 5 * 5, 120, rng=rng)
        self.fc2 = Linear(120, 84, rng=rng)
        self.fc3 = Linear(84, num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        x = max_pool2d(self.bn1(self.conv1(x)).relu(), 2)
        x = max_pool2d(self.bn2(self.conv2(x)).relu(), 2)
        x = x.flatten_batch()
        x = self.fc1(x).relu()
        x = self.fc2(x).relu()
        return self.fc3(x)
