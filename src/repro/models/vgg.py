"""VGGLite: a deeper CNN for the structured-pruning depth ablation.

The paper motivates hybrid pruning by noting that "structured pruning is
more effective when the depth of the neural network of clients are
sufficiently large" (§3.5, citing Huang et al. 2016).  The two paper
architectures have only two conv stages; VGGLite provides a deeper,
VGG-style stack (three 3×3 conv/BN/pool blocks) so that claim can be
tested: at equal channel sparsity, FLOP reduction compounds across the
extra stages.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..nn import BatchNorm2d, Conv2d, Linear
from ..tensor import Tensor, max_pool2d
from .base import ConvNet, ConvUnit


class VGGLite(ConvNet):
    """Three conv/BN/pool blocks + a two-layer classifier.

    ``widths`` sets the three stage widths; ``input_size`` is the square
    input side (32 for the CIFAR families, 28 for MNIST/EMNIST).  The
    spatial size after each 3×3 same-padding conv + 2×2 pool halves
    (floor), so the flattened width adapts to the input size.
    """

    def __init__(
        self,
        num_classes: int = 10,
        in_channels: int = 3,
        input_size: int = 32,
        widths: Sequence[int] = (16, 32, 32),
        hidden: int = 64,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if len(widths) != 3:
            raise ValueError(f"VGGLite expects exactly 3 stage widths, got {widths}")
        rng = rng if rng is not None else np.random.default_rng()
        self.num_classes = num_classes
        self.input_size = input_size

        size = input_size
        previous = in_channels
        for stage, width in enumerate(widths, start=1):
            setattr(self, f"conv{stage}", Conv2d(previous, width, 3, padding=1, rng=rng))
            setattr(self, f"bn{stage}", BatchNorm2d(width))
            previous = width
            size //= 2  # the 2x2 pool after each block
        self._final_spatial = size

        self.fc1 = Linear(widths[-1] * size * size, hidden, rng=rng)
        self.fc2 = Linear(hidden, num_classes, rng=rng)

        # Pruning wiring: three chained units, the last feeding fc1.
        self.conv_units = [
            ConvUnit(conv="conv1", bn="bn1", next_conv="conv2"),
            ConvUnit(conv="conv2", bn="bn2", next_conv="conv3"),
            ConvUnit(conv="conv3", bn="bn3", next_conv=None, spatial=size),
        ]
        self.classifier_names = ["fc1", "fc2"]
        self.first_fc = "fc1"

    def forward(self, x: Tensor) -> Tensor:
        x = max_pool2d(self.bn1(self.conv1(x)).relu(), 2)
        x = max_pool2d(self.bn2(self.conv2(x)).relu(), 2)
        x = max_pool2d(self.bn3(self.conv3(x)).relu(), 2)
        x = x.flatten_batch()
        x = self.fc1(x).relu()
        return self.fc2(x)
