"""Lifecycle callbacks observing (and steering) a federated run.

:meth:`FederatedTrainer.run() <repro.federated.trainers.base.FederatedTrainer.run>`
accepts a list of callbacks and invokes, in list order:

* ``on_run_start(trainer)`` — once, before the first round (checkpoint
  restore happens here, so a callback may pre-populate the history),
* ``on_round_start(trainer, round_index, sampled)``,
* ``on_evaluate(trainer, round_index, accuracy)`` — after each periodic
  all-client evaluation (``eval_every``),
* ``on_round_end(trainer, round_index, record)`` — the record is mutable;
  callbacks may annotate it (e.g. wall-clock seconds) or call
  ``trainer.request_stop()`` to end the round loop early,
* ``on_run_end(trainer, history)`` — once, after the final evaluation.

Built-ins cover the common run furniture: :class:`ProgressLogger`,
:class:`EarlyStopping`, :class:`CheckpointCallback` (the callback form of
the old ``run_with_checkpoints`` driver) and :class:`WallClockCallback`
(live per-round seconds from a
:class:`~repro.federated.simulation.WallClockModel`).
"""

from __future__ import annotations

import sys
from dataclasses import fields
from pathlib import Path
from typing import Iterable, List, Optional

from .metrics import History, RoundRecord

#: Hook names dispatched by :class:`CallbackList`, in lifecycle order.
HOOKS = (
    "on_run_start",
    "on_round_start",
    "on_evaluate",
    "on_round_end",
    "on_run_end",
)


class Callback:
    """No-op base class; subclass and override the hooks you need."""

    def on_run_start(self, trainer) -> None:
        """Called once before the round loop starts."""

    def on_round_start(self, trainer, round_index: int, sampled: List[int]) -> None:
        """Called before each communication round executes."""

    def on_evaluate(self, trainer, round_index: int, accuracy: float) -> None:
        """Called after each periodic all-client evaluation."""

    def on_round_end(self, trainer, round_index: int, record: RoundRecord) -> None:
        """Called after each round's record is appended to the history."""

    def on_run_end(self, trainer, history: History) -> None:
        """Called once after the final evaluation."""


class CallbackList:
    """Dispatches each hook to every callback, preserving list order.

    Callbacks need not subclass :class:`Callback`; any object exposing a
    subset of the hook methods works (missing hooks are skipped).
    """

    def __init__(self, callbacks: Optional[Iterable] = None) -> None:
        self.callbacks = list(callbacks or ())

    def dispatch(self, hook: str, *args) -> None:
        if hook not in HOOKS:
            raise ValueError(f"unknown callback hook {hook!r}; choose from {HOOKS}")
        for callback in self.callbacks:
            method = getattr(callback, hook, None)
            if method is not None:
                method(*args)

    def on_run_start(self, trainer) -> None:
        self.dispatch("on_run_start", trainer)

    def on_round_start(self, trainer, round_index, sampled) -> None:
        self.dispatch("on_round_start", trainer, round_index, sampled)

    def on_evaluate(self, trainer, round_index, accuracy) -> None:
        self.dispatch("on_evaluate", trainer, round_index, accuracy)

    def on_round_end(self, trainer, round_index, record) -> None:
        self.dispatch("on_round_end", trainer, round_index, record)

    def on_run_end(self, trainer, history) -> None:
        self.dispatch("on_run_end", trainer, history)


class ProgressLogger(Callback):
    """Prints a one-line summary of every ``every``-th round."""

    def __init__(self, every: int = 1, stream=None) -> None:
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.every = every
        self.stream = stream

    def _print(self, message: str) -> None:
        print(message, file=self.stream if self.stream is not None else sys.stdout)

    def on_round_end(self, trainer, round_index: int, record: RoundRecord) -> None:
        if round_index % self.every:
            return
        parts = [
            f"round {round_index}/{trainer.rounds}",
            f"loss={record.train_loss:.4f}",
        ]
        if record.mean_accuracy is not None:
            parts.append(f"acc={record.mean_accuracy:.3f}")
        if record.mean_sparsity:
            parts.append(f"sparsity={record.mean_sparsity:.0%}")
        parts.append(f"up={record.uploaded_bytes / 1e6:.2f}MB")
        if record.wall_clock_seconds is not None:
            parts.append(f"t={record.wall_clock_seconds:.1f}s")
        self._print("  ".join(parts))

    def on_run_end(self, trainer, history: History) -> None:
        if history.final_accuracy is not None:
            self._print(
                f"{history.algorithm}: final personalized accuracy "
                f"{history.final_accuracy:.4f} after {len(history.rounds)} rounds"
            )


class EarlyStopping(Callback):
    """Stops the round loop when a monitored metric stalls (or hits a target).

    ``monitor`` names a :class:`RoundRecord` field (``"train_loss"`` is
    always populated; ``"mean_accuracy"`` requires ``eval_every``).  Rounds
    where the metric is missing do not count toward patience.  The history
    is truncated but consistent: the trainer still runs its final
    all-client evaluation, so ``final_accuracy`` is always set.
    """

    def __init__(
        self,
        monitor: str = "train_loss",
        mode: str = "auto",
        patience: int = 3,
        min_delta: float = 0.0,
        target: Optional[float] = None,
    ) -> None:
        if mode not in ("auto", "min", "max"):
            raise ValueError(f"mode must be auto/min/max, got {mode!r}")
        if patience < 1:
            raise ValueError(f"patience must be >= 1, got {patience}")
        record_fields = tuple(spec.name for spec in fields(RoundRecord))
        if monitor not in record_fields:
            raise ValueError(
                f"monitor must be a RoundRecord field, got {monitor!r}; "
                f"choose from {record_fields}"
            )
        if mode == "auto":
            mode = "min" if "loss" in monitor else "max"
        self.monitor = monitor
        self.mode = mode
        self.patience = patience
        self.min_delta = min_delta
        self.target = target
        self.best: Optional[float] = None
        self.stale_rounds = 0
        self.stopped_round: Optional[int] = None

    def on_run_start(self, trainer) -> None:
        # Reset per-run state so one instance can be reused across runs.
        self.best = None
        self.stale_rounds = 0
        self.stopped_round = None

    def _improved(self, value: float) -> bool:
        if self.best is None:
            return True
        if self.mode == "min":
            return value < self.best - self.min_delta
        return value > self.best + self.min_delta

    def _reached_target(self, value: float) -> bool:
        if self.target is None:
            return False
        return value <= self.target if self.mode == "min" else value >= self.target

    def on_round_end(self, trainer, round_index: int, record: RoundRecord) -> None:
        value = getattr(record, self.monitor, None)
        if value is None:
            return
        if self._reached_target(value):
            self.stopped_round = round_index
            trainer.request_stop()
            return
        if self._improved(value):
            self.best = value
            self.stale_rounds = 0
        else:
            self.stale_rounds += 1
            if self.stale_rounds >= self.patience:
                self.stopped_round = round_index
                trainer.request_stop()


class CheckpointCallback(Callback):
    """Snapshots the trainer every ``every`` rounds; resumes if a file exists.

    The callback form of the old ``run_with_checkpoints`` driver: restoring
    a checkpoint in ``on_run_start`` pre-populates the trainer's history,
    which makes the round loop skip the already-completed rounds.
    """

    def __init__(self, path, every: int = 10, resume: bool = True) -> None:
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.path = Path(path)
        self.every = every
        self.resume = resume
        self.restored_rounds = 0
        self._last_saved: Optional[int] = None

    def on_run_start(self, trainer) -> None:
        from .checkpoint import load_checkpoint

        self._last_saved = None
        self.restored_rounds = 0
        if self.resume and self.path.exists():
            self.restored_rounds = load_checkpoint(self.path, trainer)
        elif not self.resume:
            trainer.history = History(algorithm=trainer.algorithm_name)

    def on_round_end(self, trainer, round_index: int, record: RoundRecord) -> None:
        from .checkpoint import save_checkpoint

        if (
            round_index % self.every == 0
            or round_index == trainer.rounds
            or trainer.stop_requested
        ):
            save_checkpoint(self.path, trainer, round_index)
            self._last_saved = round_index

    def on_run_end(self, trainer, history: History) -> None:
        # Backstop for early-stopped runs: if another callback (listed after
        # this one) requested the stop, the last completed round may not have
        # hit a checkpoint boundary — persist it so a resume does not silently
        # retrain past the stop decision.
        from .checkpoint import save_checkpoint

        completed = len(history.rounds)
        if completed and self._last_saved != completed:
            save_checkpoint(self.path, trainer, completed)
            self._last_saved = completed


class WallClockCallback(Callback):
    """Annotates each round with simulated seconds as the run progresses.

    Wraps a :class:`~repro.federated.simulation.WallClockModel`: instead of
    pricing a finished :class:`History` post hoc, each record gets its
    ``wall_clock_seconds`` the moment the round completes, and the running
    ``total_seconds`` is available to other callbacks (e.g. a time budget).
    """

    def __init__(self, model) -> None:
        self.model = model
        self.round_seconds: List[float] = []
        self.total_seconds = 0.0

    def on_round_end(self, trainer, round_index: int, record: RoundRecord) -> None:
        seconds = self.model.round_seconds(record)
        record.wall_clock_seconds = seconds
        self.round_seconds.append(seconds)
        self.total_seconds += seconds
