"""Communication-cost accounting.

Implements the paper's §4.2.2 cost model::

    Cost = R × B × |W| × 2

where ``R`` is the number of communication rounds, ``B`` the bits per
exchanged value (32 for floats, 1 for binary mask entries) and ``|W|`` the
number of values exchanged per round; the ×2 counts the uplink and the
downlink.  The meter accrues actual per-round traffic, so algorithms whose
sparsity ramps up over time (Sub-FedAvg) are charged their true cost, not
the final-rate approximation.
"""

from __future__ import annotations

from dataclasses import dataclass

FLOAT_BITS = 32
MASK_BITS = 1


@dataclass
class RoundTraffic:
    """Bytes moved in one round (already summed over sampled clients)."""

    uploaded_bytes: float = 0.0
    downloaded_bytes: float = 0.0

    @property
    def total(self) -> float:
        return self.uploaded_bytes + self.downloaded_bytes


def dense_exchange(num_params: int, num_clients: int) -> RoundTraffic:
    """Cost of a full-model FedAvg-style round: 32-bit floats both ways."""
    one_way = num_clients * num_params * FLOAT_BITS / 8.0
    return RoundTraffic(uploaded_bytes=one_way, downloaded_bytes=one_way)


def sparse_exchange(
    kept_params: int, total_mask_bits: int, num_params_down: int
) -> RoundTraffic:
    """Cost of one Sub-FedAvg client exchange.

    Uplink: the client's kept parameters as 32-bit floats plus its binary
    mask at 1 bit per coordinate.  Downlink: the values of the client's
    subnetwork (the server knows the client's mask from the previous round,
    so only kept coordinates travel down).
    """
    up = (kept_params * FLOAT_BITS + total_mask_bits * MASK_BITS) / 8.0
    down = num_params_down * FLOAT_BITS / 8.0
    return RoundTraffic(uploaded_bytes=up, downloaded_bytes=down)


def partial_exchange(num_params_shared: int, num_clients: int) -> RoundTraffic:
    """Cost of exchanging only a subset of layers (LG-FedAvg-style)."""
    return dense_exchange(num_params_shared, num_clients)


def closed_form_cost(
    rounds: int, params_per_round: int, clients_per_round: int, bits: int = FLOAT_BITS
) -> float:
    """The paper's closed-form ``R × B × |W| × 2`` in bytes.

    Useful for sanity-checking the meter: with dense exchanges the accrued
    total must equal this expression exactly.
    """
    return rounds * clients_per_round * params_per_round * bits * 2 / 8.0
