"""FLOP accounting (the paper's §4.2.3 convention: conv operations only)."""

from __future__ import annotations

from typing import Optional

from ...models.base import ConvNet
from ...pruning.structured import ChannelMask, ReductionReport, reduction_report


def dense_conv_flops(model: ConvNet, input_size: int) -> int:
    """Multiply-accumulate count of all convolutions at full width."""
    return reduction_report(model, None, input_size).dense_flops


def pruned_conv_flops(model: ConvNet, channels: ChannelMask, input_size: int) -> int:
    """Conv MACs remaining after structured pruning by ``channels``."""
    return reduction_report(model, channels, input_size).pruned_flops


def flop_reduction_factor(
    model: ConvNet, channels: Optional[ChannelMask], input_size: int
) -> float:
    """Speed-up factor dense/pruned (1.0 when no channels are pruned)."""
    if channels is None:
        return 1.0
    return reduction_report(model, channels, input_size).flop_reduction


__all__ = [
    "dense_conv_flops",
    "pruned_conv_flops",
    "flop_reduction_factor",
    "ReductionReport",
]
