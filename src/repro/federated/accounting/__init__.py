"""Communication-cost and FLOP accounting."""

from .communication import (
    FLOAT_BITS,
    MASK_BITS,
    RoundTraffic,
    closed_form_cost,
    dense_exchange,
    partial_exchange,
    sparse_exchange,
)
from .flops import dense_conv_flops, flop_reduction_factor, pruned_conv_flops

__all__ = [
    "FLOAT_BITS",
    "MASK_BITS",
    "RoundTraffic",
    "dense_exchange",
    "sparse_exchange",
    "partial_exchange",
    "closed_form_cost",
    "dense_conv_flops",
    "pruned_conv_flops",
    "flop_reduction_factor",
]
