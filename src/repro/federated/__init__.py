"""Federated learning core: clients, aggregation, trainers and accounting."""

from .aggregation import (
    fedavg_average,
    intersection_average,
    partial_average,
    zero_fill_average,
)
from .builder import (
    ALGORITHMS,
    FederationConfig,
    build_federation,
    build_trainer,
    make_clients,
    model_factory,
)
from .client import FederatedClient, LocalTrainConfig, LocalTrainResult
from .metrics import History, RoundRecord
from .sampler import ClientSampler, FixedSampler
from .trainers import (
    FedAvg,
    FedMTL,
    FedProx,
    FederatedTrainer,
    LGFedAvg,
    Standalone,
    SubFedAvgHy,
    SubFedAvgUn,
)
from .compression import (
    Compressor,
    FedAvgCompressed,
    IdentityCompressor,
    QuantizationCompressor,
    RandomMaskCompressor,
    TopKCompressor,
)
from .robust import (
    AvailabilityModel,
    CorruptionModel,
    RobustFedAvg,
    StragglerModel,
    median_average,
    trimmed_mean_average,
)
from .trainers.finetune import FedAvgFinetune
from .simulation import (
    EDGE_PHONE,
    RASPBERRY_PI,
    WORKSTATION,
    DeviceProfile,
    WallClockModel,
    compare_time_to_accuracy,
    time_to_accuracy,
)
from .checkpoint import load_checkpoint, run_with_checkpoints, save_checkpoint
from .evaluation import (
    FairnessReport,
    confusion_matrix,
    fairness_report,
    model_confusion,
    per_class_accuracy,
)
from . import accounting

__all__ = [
    "FederatedClient",
    "LocalTrainConfig",
    "LocalTrainResult",
    "ClientSampler",
    "FixedSampler",
    "History",
    "RoundRecord",
    "fedavg_average",
    "intersection_average",
    "partial_average",
    "zero_fill_average",
    "FederatedTrainer",
    "FedAvg",
    "FedProx",
    "LGFedAvg",
    "FedMTL",
    "Standalone",
    "SubFedAvgUn",
    "SubFedAvgHy",
    "FederationConfig",
    "build_federation",
    "build_trainer",
    "make_clients",
    "model_factory",
    "ALGORITHMS",
    "accounting",
    "Compressor",
    "IdentityCompressor",
    "TopKCompressor",
    "RandomMaskCompressor",
    "QuantizationCompressor",
    "FedAvgCompressed",
    "AvailabilityModel",
    "CorruptionModel",
    "StragglerModel",
    "RobustFedAvg",
    "FedAvgFinetune",
    "median_average",
    "trimmed_mean_average",
    "DeviceProfile",
    "WallClockModel",
    "time_to_accuracy",
    "compare_time_to_accuracy",
    "EDGE_PHONE",
    "RASPBERRY_PI",
    "WORKSTATION",
    "save_checkpoint",
    "load_checkpoint",
    "run_with_checkpoints",
    "confusion_matrix",
    "per_class_accuracy",
    "model_confusion",
    "FairnessReport",
    "fairness_report",
]
