"""Federated learning core: the ``Federation`` API, trainers and accounting.

The canonical entry point is the :class:`Federation` facade over a
serializable :class:`FederationConfig`:

>>> from repro.federated import Federation, FederationConfig, ProgressLogger
>>> config = FederationConfig(dataset="mnist", algorithm="sub-fedavg-un",
...                           num_clients=10, rounds=5, seed=0)
>>> federation = Federation.from_config(config)
>>> history = federation.run(callbacks=[ProgressLogger()])  # doctest: +SKIP

Algorithms are plugins: trainer classes self-register with
:func:`register_trainer`, and :data:`ALGORITHMS` is a derived view of the
registry.  The data scenario is pluggable the same way — datasets and
partition strategies register in :mod:`repro.data.registry`, participation
models in :mod:`~repro.federated.scenario` (:func:`register_sampler`), and
the nested ``data``/``scenario`` config sections select them per run.
Client execution is pluggable too: per-round local work runs on
an :mod:`~repro.federated.execution` backend (``serial``, ``thread`` or
``process`` — ``FederationConfig(backend=..., workers=...)``) with
histories guaranteed identical across backends.  Lifecycle callbacks (:class:`ProgressLogger`,
:class:`EarlyStopping`, :class:`CheckpointCallback`,
:class:`WallClockCallback`, or any :class:`Callback` subclass) observe and
steer the round loop.  ``build_federation`` and ``run_with_checkpoints``
remain as thin shims over the same machinery.
"""

from .aggregation import (
    fedavg_average,
    intersection_average,
    partial_average,
    zero_fill_average,
)
from .registry import (
    TrainerSpec,
    available_algorithms,
    get_trainer,
    register_trainer,
    trainer_specs,
    unregister_trainer,
)
from .callbacks import (
    Callback,
    CallbackList,
    CheckpointCallback,
    EarlyStopping,
    ProgressLogger,
    WallClockCallback,
)
from .execution import (
    WIRE_VERSION,
    ClientTask,
    ClientUpdate,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    SpawnProcessBackend,
    ThreadBackend,
    WorkerPool,
    available_backends,
    resolve_backend,
    resolve_start_method,
    run_client_task,
)
from .builder import (
    FederationConfig,
    ModelFactory,
    build_federation,
    build_trainer,
    make_clients,
    model_factory,
)
from .federation import Federation
from .client import FederatedClient, LocalTrainConfig, LocalTrainResult
from .pool import (
    STATE_STORES,
    ClientPool,
    FileStateStore,
    MemoryStateStore,
    make_state_store,
)
from .metrics import History, RoundRecord
from .sampler import (
    AvailabilitySampler,
    ClientSampler,
    DiurnalSampler,
    FixedSampler,
)
from .scenario import (
    SamplerSpec,
    ScenarioConfig,
    available_samplers,
    build_sampler,
    get_sampler,
    register_sampler,
    sampler_specs,
    unregister_sampler,
)
from ..data.partition import DataConfig
from ..engine import ComputeConfig
from .trainers import (
    FedAvg,
    FedMTL,
    FedProx,
    FederatedTrainer,
    LGFedAvg,
    Standalone,
    SubFedAvgHy,
    SubFedAvgUn,
)
from .compression import (
    CompressionConfig,
    Compressor,
    CompressorSpec,
    EncodedState,
    FedAvgCompressed,
    IdentityCompressor,
    QuantizationCompressor,
    RandomMaskCompressor,
    TopKCompressor,
    available_compressors,
    build_compressor,
    compressor_specs,
    decode_state,
    get_compressor,
    pack_state,
    register_compressor,
    unpack_state,
    unregister_compressor,
)
from .robust import (
    AvailabilityModel,
    CorruptionModel,
    RobustFedAvg,
    StragglerModel,
    median_average,
    trimmed_mean_average,
)
from .trainers.finetune import FedAvgFinetune
from .simulation import (
    DEVICE_PROFILES,
    EDGE_PHONE,
    RASPBERRY_PI,
    WORKSTATION,
    DeviceProfile,
    Fleet,
    WallClockModel,
    compare_time_to_accuracy,
    time_to_accuracy,
)
from ..systems import (
    FleetSimCallback,
    FleetSimulator,
    SystemsConfig,
    available_fleets,
    available_round_policies,
    fleet_specs,
    round_policy_specs,
)
from .checkpoint import load_checkpoint, run_with_checkpoints, save_checkpoint
from .evaluation import (
    FairnessReport,
    confusion_matrix,
    fairness_report,
    model_confusion,
    per_class_accuracy,
)
from . import accounting

def __getattr__(name: str):
    # ALGORITHMS is a live derived view of the registry, not a snapshot:
    # plugins registered (or unregistered) after this package was imported
    # are reflected immediately.
    if name == "ALGORITHMS":
        return available_algorithms()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "Federation",
    "ComputeConfig",
    "FederationConfig",
    "ClientTask",
    "ClientUpdate",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "SpawnProcessBackend",
    "WorkerPool",
    "WIRE_VERSION",
    "available_backends",
    "resolve_backend",
    "resolve_start_method",
    "run_client_task",
    "TrainerSpec",
    "register_trainer",
    "unregister_trainer",
    "get_trainer",
    "trainer_specs",
    "available_algorithms",
    "Callback",
    "CallbackList",
    "ProgressLogger",
    "EarlyStopping",
    "CheckpointCallback",
    "WallClockCallback",
    "FederatedClient",
    "LocalTrainConfig",
    "LocalTrainResult",
    "ClientPool",
    "MemoryStateStore",
    "FileStateStore",
    "STATE_STORES",
    "make_state_store",
    "ClientSampler",
    "FixedSampler",
    "AvailabilitySampler",
    "DiurnalSampler",
    "SamplerSpec",
    "ScenarioConfig",
    "DataConfig",
    "register_sampler",
    "unregister_sampler",
    "get_sampler",
    "available_samplers",
    "sampler_specs",
    "build_sampler",
    "History",
    "RoundRecord",
    "fedavg_average",
    "intersection_average",
    "partial_average",
    "zero_fill_average",
    "FederatedTrainer",
    "FedAvg",
    "FedProx",
    "LGFedAvg",
    "FedMTL",
    "Standalone",
    "SubFedAvgUn",
    "SubFedAvgHy",
    "build_federation",
    "build_trainer",
    "make_clients",
    "model_factory",
    "ModelFactory",
    "ALGORITHMS",
    "accounting",
    "Compressor",
    "CompressorSpec",
    "CompressionConfig",
    "EncodedState",
    "IdentityCompressor",
    "TopKCompressor",
    "RandomMaskCompressor",
    "QuantizationCompressor",
    "FedAvgCompressed",
    "register_compressor",
    "unregister_compressor",
    "get_compressor",
    "available_compressors",
    "compressor_specs",
    "build_compressor",
    "decode_state",
    "pack_state",
    "unpack_state",
    "AvailabilityModel",
    "CorruptionModel",
    "StragglerModel",
    "RobustFedAvg",
    "FedAvgFinetune",
    "median_average",
    "trimmed_mean_average",
    "DeviceProfile",
    "DEVICE_PROFILES",
    "Fleet",
    "FleetSimulator",
    "FleetSimCallback",
    "SystemsConfig",
    "available_fleets",
    "available_round_policies",
    "fleet_specs",
    "round_policy_specs",
    "WallClockModel",
    "time_to_accuracy",
    "compare_time_to_accuracy",
    "EDGE_PHONE",
    "RASPBERRY_PI",
    "WORKSTATION",
    "save_checkpoint",
    "load_checkpoint",
    "run_with_checkpoints",
    "confusion_matrix",
    "per_class_accuracy",
    "model_confusion",
    "FairnessReport",
    "fairness_report",
]
