"""Server-side aggregation rules.

Two aggregators matter to the paper:

* :func:`fedavg_average` — the classic example-count-weighted mean of dense
  client states (McMahan et al. 2017).
* :func:`intersection_average` — **Sub-FedAvg**: for every coordinate, the
  plain mean over the clients whose mask keeps that coordinate.  Where no
  sampled client keeps a coordinate, the previous global value is retained.
  This is "taking the average on the intersection of the remaining
  parameters of each subnetwork of each client" (§3.4, step iv).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from ..pruning import MaskSet

State = Dict[str, np.ndarray]


def fedavg_average(
    states: Sequence[State], weights: Optional[Sequence[float]] = None
) -> State:
    """Weighted mean of client state dicts (weights default to uniform)."""
    if not states:
        raise ValueError("no client states to aggregate")
    if weights is None:
        weights = [1.0] * len(states)
    if len(weights) != len(states):
        raise ValueError("weights and states length mismatch")
    total = float(sum(weights))
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    keys = states[0].keys()
    result: State = {}
    for key in keys:
        accumulator = np.zeros_like(states[0][key], dtype=np.float64)
        for state, weight in zip(states, weights):
            accumulator += (weight / total) * state[key]
        result[key] = accumulator
    return result


def intersection_average(
    states: Sequence[State],
    masks: Sequence[Optional[MaskSet]],
    previous_global: State,
) -> State:
    """Sub-FedAvg aggregation.

    For a parameter tensor ``p`` and coordinate ``i``::

        new[i] = mean over {k : mask_k[i] = 1} of state_k[i]   if any keeps i
        new[i] = previous_global[i]                            otherwise

    Tensors a client's mask does not cover (biases, BN statistics in the
    unstructured variant) are treated as fully kept by that client, so they
    reduce to the plain average — matching the reference implementation,
    which averages unmasked tensors across all participants.
    """
    if len(states) != len(masks):
        raise ValueError("states and masks length mismatch")
    if not states:
        raise ValueError("no client states to aggregate")

    result: State = {}
    for key in previous_global.keys():
        numerator = np.zeros_like(previous_global[key], dtype=np.float64)
        denominator = np.zeros_like(previous_global[key], dtype=np.float64)
        for state, mask in zip(states, masks):
            value = state[key]
            keep = None
            if mask is not None:
                keep = mask.get(key)
            if keep is None:
                numerator += value
                denominator += 1.0
            else:
                numerator += value * keep
                denominator += keep
        kept = denominator > 0
        averaged = np.where(kept, numerator / np.where(kept, denominator, 1.0), 0.0)
        result[key] = np.where(kept, averaged, previous_global[key])
    return result


def zero_fill_average(
    states: Sequence[State],
    masks: Sequence[Optional[MaskSet]],
    previous_global: State,
) -> State:
    """Ablation baseline: naive mean treating pruned coordinates as zeros.

    Divides by the number of clients everywhere instead of by the number of
    keepers, so coordinates kept by few clients are dragged toward zero.
    DESIGN.md §7 uses this to show why Sub-FedAvg's intersection rule
    matters; it is not part of the paper's algorithm.
    """
    if len(states) != len(masks):
        raise ValueError("states and masks length mismatch")
    if not states:
        raise ValueError("no client states to aggregate")
    count = float(len(states))
    result: State = {}
    for key in previous_global.keys():
        accumulator = np.zeros_like(previous_global[key], dtype=np.float64)
        for state, mask in zip(states, masks):
            value = state[key]
            keep = mask.get(key) if mask is not None else None
            accumulator += value if keep is None else value * keep
        result[key] = accumulator / count
    return result


def partial_average(
    states: Sequence[State],
    names: Sequence[str],
    previous_global: State,
    weights: Optional[Sequence[float]] = None,
) -> State:
    """Average only the named tensors; keep the rest of the global state.

    Used by LG-FedAvg, where only the shared (classifier) layers travel.
    """
    shared = fedavg_average(
        [{name: state[name] for name in names} for state in states], weights
    )
    result = {key: value.copy() for key, value in previous_global.items()}
    result.update(shared)
    return result
