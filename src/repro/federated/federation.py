"""The ``Federation`` facade: config in, trained federation out.

One object owns the whole lifecycle of an experiment run — the declarative
:class:`~repro.federated.builder.FederationConfig`, the client population
built from it, the registry-resolved trainer, and the resulting
:class:`~repro.federated.metrics.History`:

>>> from repro.federated import EarlyStopping, Federation, FederationConfig
>>> federation = Federation.from_config(FederationConfig(
...     dataset="mnist", algorithm="sub-fedavg-un",
...     num_clients=10, rounds=5, seed=0,
... ))
>>> history = federation.run(callbacks=[EarlyStopping(patience=2)])  # doctest: +SKIP

Because the config serializes (``to_json``/``from_json``), a run can be
reconstructed exactly from a stored file::

    Federation.from_json(Path("run.json").read_text()).run()
"""

from __future__ import annotations

from typing import Any, Iterable, List, Mapping, Optional

from ..engine import compute_scope
from ..systems.callback import FleetSimCallback
from .builder import FederationConfig, build_trainer, make_clients
from .client import FederatedClient
from .metrics import History
from .trainers.base import FederatedTrainer


class Federation:
    """A configured federated experiment, ready to run.

    Construction is eager: clients and the trainer are built immediately,
    so the object can be inspected (``.clients``, ``.trainer``) before
    :meth:`run` is called, and checkpoints can be restored into it.
    """

    def __init__(self, config: FederationConfig, **trainer_overrides) -> None:
        self.config = config
        self._clients = make_clients(config)
        self._trainer = build_trainer(config, self._clients, **trainer_overrides)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_config(cls, config: FederationConfig, **trainer_overrides) -> "Federation":
        """Build from a :class:`FederationConfig`.

        ``trainer_overrides`` are forwarded to the trainer constructor
        (e.g. ``aggregator="zerofill"``, ``track_trajectory=True``).
        """
        return cls(config, **trainer_overrides)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any], **trainer_overrides) -> "Federation":
        return cls(FederationConfig.from_dict(payload), **trainer_overrides)

    @classmethod
    def from_json(cls, text: str, **trainer_overrides) -> "Federation":
        return cls(FederationConfig.from_json(text), **trainer_overrides)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def run(self, callbacks: Optional[Iterable] = None) -> History:
        """Execute the run, dispatching ``callbacks`` around every round.

        A config with a ``systems`` section gets a
        :class:`~repro.systems.callback.FleetSimCallback` appended
        automatically (unless the caller passed one), so every round
        record carries its simulated fleet seconds and stragglers.

        The whole run executes under the config's ``compute:`` section —
        the default eager engine, or lazy graph recording through the
        selected runtime (:mod:`repro.engine`).
        """
        callbacks = list(callbacks or ())
        if self._trainer.fleet_sim is not None and not any(
            isinstance(callback, FleetSimCallback) for callback in callbacks
        ):
            callbacks.append(FleetSimCallback())
        with compute_scope(self.config.compute):
            return self._trainer.run(callbacks=callbacks or None)

    @property
    def trainer(self) -> FederatedTrainer:
        return self._trainer

    @property
    def clients(self) -> List[FederatedClient]:
        return self._clients

    @property
    def history(self) -> History:
        """The run history so far (empty until :meth:`run` has executed rounds)."""
        return self._trainer.history

    @property
    def algorithm(self) -> str:
        return self.config.algorithm

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Federation(algorithm={self.config.algorithm!r}, "
            f"dataset={self.config.dataset!r}, clients={len(self._clients)}, "
            f"rounds={self.config.rounds})"
        )
