"""Checkpoint/resume for long federated runs.

The ``paper`` preset (100 clients, 500 rounds) takes hours on CPU; these
helpers snapshot a trainer mid-run and restore it so runs survive
interruption.  A checkpoint captures:

* the global state dict,
* the completed-round count and run history,
* each client's personal model state,
* for Sub-FedAvg trainers: each client's committed masks and pruning rates.

Sampler RNG state is *not* captured (numpy generators are not portable
across versions); resuming re-seeds sampling, which changes which clients
are drawn after the resume point but not the algorithm's semantics.
"""

from __future__ import annotations

import pickle
from dataclasses import asdict
from pathlib import Path
from typing import Union

from .metrics import History, RoundRecord
from .trainers.base import FederatedTrainer
from .trainers.subfedavg import SubFedAvgTrainer

PathLike = Union[str, Path]

FORMAT_VERSION = 1


def save_checkpoint(path: PathLike, trainer: FederatedTrainer, completed_rounds: int) -> None:
    """Write a resumable snapshot of ``trainer`` after ``completed_rounds``."""
    payload = {
        "version": FORMAT_VERSION,
        "algorithm": trainer.algorithm_name,
        "completed_rounds": completed_rounds,
        "global_state": trainer.global_state,
        "history": _history_to_dict(trainer.history),
        "clients": {},
    }
    for client in trainer.clients:
        entry = {"model": client.state_dict()}
        if isinstance(trainer, SubFedAvgTrainer):
            controller = client.controller
            entry["un_mask"] = {name: controller.un_mask[name] for name in controller.un_mask}
            entry["un_rate"] = controller.un_rate
            entry["ch_mask"] = {name: controller.ch_mask[name] for name in controller.ch_mask}
            entry["st_rate"] = controller.st_rate
        payload["clients"][client.client_id] = entry
    with open(path, "wb") as handle:
        pickle.dump(payload, handle)


def load_checkpoint(path: PathLike, trainer: FederatedTrainer) -> int:
    """Restore ``trainer`` in place; returns the completed-round count.

    The trainer must have been built with the same configuration
    (same algorithm, client count and model architecture) — mismatches
    raise rather than silently corrupting the run.
    """
    with open(path, "rb") as handle:
        payload = pickle.load(handle)
    if payload.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported checkpoint version {payload.get('version')}")
    if payload["algorithm"] != trainer.algorithm_name:
        raise ValueError(
            f"checkpoint is for {payload['algorithm']!r}, trainer is "
            f"{trainer.algorithm_name!r}"
        )
    if set(payload["clients"]) != {client.client_id for client in trainer.clients}:
        raise ValueError("checkpoint client ids do not match the trainer's clients")

    trainer.global_state = payload["global_state"]
    trainer.history = _history_from_dict(payload["history"])
    for client in trainer.clients:
        entry = payload["clients"][client.client_id]
        client.model.load_state_dict(entry["model"])
        if isinstance(trainer, SubFedAvgTrainer):
            controller = client.controller
            for name, mask in entry["un_mask"].items():
                controller.un_mask[name] = mask
            controller.un_rate = entry["un_rate"]
            for name, mask in entry["ch_mask"].items():
                controller.ch_mask[name] = mask
            controller.st_rate = entry["st_rate"]
    return int(payload["completed_rounds"])


def run_with_checkpoints(
    trainer: FederatedTrainer,
    path: PathLike,
    every: int = 10,
    resume: bool = True,
) -> History:
    """Deprecated shim over the callback API.

    Equivalent to ``trainer.run(callbacks=[CheckpointCallback(path,
    every=every, resume=resume)])``, which is the preferred spelling — it
    composes with other callbacks (progress, early stopping, wall clock).
    """
    from .callbacks import CheckpointCallback

    return trainer.run(callbacks=[CheckpointCallback(path, every=every, resume=resume)])


def _history_to_dict(history: History) -> dict:
    return {
        "algorithm": history.algorithm,
        "final_accuracy": history.final_accuracy,
        "final_per_client_accuracy": history.final_per_client_accuracy,
        "total_communication_bytes": history.total_communication_bytes,
        "rounds": [asdict(record) for record in history.rounds],
    }


def _history_from_dict(payload: dict) -> History:
    history = History(algorithm=payload["algorithm"])
    for record in payload["rounds"]:
        history.rounds.append(RoundRecord(**record))
    history.final_accuracy = payload["final_accuracy"]
    history.final_per_client_accuracy = dict(payload["final_per_client_accuracy"])
    history.total_communication_bytes = payload["total_communication_bytes"]
    return history
