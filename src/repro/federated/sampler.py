"""Client sampling per communication round."""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np


class ClientSampler:
    """Uniformly sample ``max(1, round(K * N))`` clients without replacement.

    Matches the paper's ``k = max(K × N)`` with sampling rate ``K``: at
    every round a fresh random subset of the ``N`` available clients is
    drawn from the sampler's own seeded generator.
    """

    def __init__(
        self,
        num_clients: int,
        sample_fraction: float = 0.1,
        seed: Optional[int] = None,
    ) -> None:
        if num_clients <= 0:
            raise ValueError(f"num_clients must be positive, got {num_clients}")
        if not 0.0 < sample_fraction <= 1.0:
            raise ValueError(f"sample_fraction must be in (0, 1], got {sample_fraction}")
        self.num_clients = num_clients
        self.sample_fraction = sample_fraction
        self._rng = np.random.default_rng(seed)

    @property
    def clients_per_round(self) -> int:
        return max(1, int(round(self.sample_fraction * self.num_clients)))

    def sample(self) -> List[int]:
        """Indices of this round's participants (sorted for determinism)."""
        chosen = self._rng.choice(
            self.num_clients, size=self.clients_per_round, replace=False
        )
        return sorted(int(index) for index in chosen)


class FixedSampler(ClientSampler):
    """Always return the same subset (deterministic tests / standalone runs)."""

    def __init__(self, clients: Sequence[int]) -> None:
        if not clients:
            raise ValueError("FixedSampler needs at least one client")
        super().__init__(num_clients=max(clients) + 1, sample_fraction=1.0)
        self._fixed = sorted(int(index) for index in clients)

    @property
    def clients_per_round(self) -> int:
        return len(self._fixed)

    def sample(self) -> List[int]:
        return list(self._fixed)
