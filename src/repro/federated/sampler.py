"""Client sampling per communication round.

Three participation models ship here; they (and any third-party model) are
registered in :mod:`~repro.federated.scenario` and selected per run with
``FederationConfig(scenario=ScenarioConfig(sampler=...))``:

* :class:`ClientSampler` — the paper's uniform ``k = max(1, K*N)`` draw,
* :class:`FixedSampler` — a pinned subset (deterministic tests, standalone),
* :class:`AvailabilitySampler` — realistic fleets: per-client participation
  probabilities (optionally derived from
  :class:`~repro.federated.simulation.DeviceProfile` assignments, using the
  same round-robin client→device rule as
  :class:`~repro.federated.simulation.WallClockModel`) plus i.i.d.
  per-round dropout.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

import numpy as np


class ClientSampler:
    """Uniformly sample ``max(1, round(K * N))`` clients without replacement.

    Matches the paper's ``k = max(K × N)`` with sampling rate ``K``: at
    every round a fresh random subset of the ``N`` available clients is
    drawn from the sampler's own seeded generator.
    """

    def __init__(
        self,
        num_clients: int,
        sample_fraction: float = 0.1,
        seed: Optional[int] = None,
    ) -> None:
        if num_clients <= 0:
            raise ValueError(f"num_clients must be positive, got {num_clients}")
        if not 0.0 < sample_fraction <= 1.0:
            raise ValueError(f"sample_fraction must be in (0, 1], got {sample_fraction}")
        self.num_clients = num_clients
        self.sample_fraction = sample_fraction
        self._rng = np.random.default_rng(seed)

    @property
    def clients_per_round(self) -> int:
        return max(1, int(round(self.sample_fraction * self.num_clients)))

    def sample(self) -> List[int]:
        """Indices of this round's participants (sorted for determinism)."""
        chosen = self._rng.choice(
            self.num_clients, size=self.clients_per_round, replace=False
        )
        return sorted(int(index) for index in chosen)


class FixedSampler(ClientSampler):
    """Always return the same subset (deterministic tests / standalone runs).

    ``num_clients`` is the federation size the subset is drawn from; every
    entry of ``clients`` must be a valid index into it, so fixed subsets
    compose with availability masks and per-client device assignments.
    When omitted it is inferred as ``max(clients) + 1`` for backward
    compatibility.
    """

    def __init__(
        self, clients: Sequence[int], num_clients: Optional[int] = None
    ) -> None:
        if not clients:
            raise ValueError("FixedSampler needs at least one client")
        indices = [int(index) for index in clients]
        if num_clients is None:
            num_clients = max(indices) + 1
        out_of_range = sorted(i for i in indices if not 0 <= i < num_clients)
        if out_of_range:
            raise ValueError(
                f"client indices {out_of_range} out of range for "
                f"num_clients={num_clients}"
            )
        if len(set(indices)) != len(indices):
            raise ValueError(f"duplicate client indices in {indices}")
        super().__init__(num_clients=num_clients, sample_fraction=1.0)
        self._fixed = sorted(indices)

    @property
    def clients_per_round(self) -> int:
        return len(self._fixed)

    def sample(self) -> List[int]:
        return list(self._fixed)


class AvailabilitySampler(ClientSampler):
    """Uniform candidate draw filtered by per-client availability + dropout.

    Models a realistic fleet: the server invites a uniform subset each
    round (as :class:`ClientSampler` does), but an invited client only
    participates with its *availability probability* — a fixed per-client
    trait — and then survives an i.i.d. per-round ``dropout`` (transient
    failures).  At least one invited client always participates, since a
    round with zero uploads is undefined.

    Per-client probabilities come from one of (in precedence order):

    * ``participation_probs`` — an explicit per-client sequence,
    * ``profiles`` + ``profile_participation`` — device classes assigned
      round-robin (``client_id % len(profiles)``, the exact rule
      :meth:`~repro.federated.simulation.WallClockModel.profile_for` uses),
      each class mapped to a probability — so the same slow device class
      can both straggle in the wall-clock model and show up rarely here,
    * ``participation`` ± ``participation_spread`` — a seeded uniform draw
      per client, clipped to ``(0, 1]``.

    Everything is drawn from the sampler's own seeded generator: two
    samplers built with the same arguments produce identical rounds.
    """

    def __init__(
        self,
        num_clients: int,
        sample_fraction: float = 0.1,
        seed: Optional[int] = None,
        participation: float = 1.0,
        participation_spread: float = 0.0,
        dropout: float = 0.0,
        participation_probs: Optional[Sequence[float]] = None,
        profiles: Optional[Sequence] = None,
        profile_participation: Optional[Mapping[str, float]] = None,
    ) -> None:
        super().__init__(num_clients, sample_fraction, seed=seed)
        if not 0.0 < participation <= 1.0:
            raise ValueError(f"participation must be in (0, 1], got {participation}")
        if participation_spread < 0.0:
            raise ValueError(
                f"participation_spread must be >= 0, got {participation_spread}"
            )
        if not 0.0 <= dropout < 1.0:
            raise ValueError(f"dropout must be in [0, 1), got {dropout}")
        self.dropout = dropout
        if participation_probs is not None:
            probs = np.asarray(participation_probs, dtype=float)
            if probs.shape != (num_clients,):
                raise ValueError(
                    f"participation_probs must have one entry per client "
                    f"({num_clients}), got shape {probs.shape}"
                )
            if (probs <= 0).any() or (probs > 1).any():
                raise ValueError("participation_probs must be in (0, 1]")
        elif profiles is not None:
            lookup = dict(profile_participation or {})
            probs = np.array(
                [
                    lookup.get(profiles[i % len(profiles)].name, participation)
                    for i in range(num_clients)
                ],
                dtype=float,
            )
        else:
            low = participation - participation_spread
            high = participation + participation_spread
            probs = self._rng.uniform(low, high, size=num_clients)
        self.participation_probs = np.clip(probs, 1e-9, 1.0)

    def sample(self) -> List[int]:
        """This round's participants: invited ∩ available ∩ not-dropped."""
        invited = self._rng.choice(
            self.num_clients, size=self.clients_per_round, replace=False
        )
        draws = self._rng.random(size=invited.size)
        survive = self.participation_probs[invited] * (1.0 - self.dropout)
        participants = invited[draws < survive]
        if participants.size == 0:
            # Never return an empty round; the seeded pick keeps determinism.
            keep = self._rng.integers(invited.size)
            participants = invited[[int(keep)]]
        return sorted(int(index) for index in participants)
