"""Client sampling per communication round.

Four participation models ship here; they (and any third-party model) are
registered in :mod:`~repro.federated.scenario` and selected per run with
``FederationConfig(scenario=ScenarioConfig(sampler=...))``:

* :class:`ClientSampler` — the paper's uniform ``k = max(1, K*N)`` draw,
* :class:`FixedSampler` — a pinned subset (deterministic tests, standalone),
* :class:`AvailabilitySampler` — realistic fleets: per-client participation
  probabilities (optionally derived from a
  :class:`~repro.systems.fleet.Fleet`'s device assignment — the *same*
  assignment the wall-clock model and fleet simulator price with, so a
  slow device class can both straggle and show up rarely) plus i.i.d.
  per-round dropout,
* :class:`DiurnalSampler` — temporal availability: participation follows
  a seeded day/night cycle read off simulated time (a
  :class:`~repro.systems.clock.SimClock` when the run carries a fleet
  simulator, a fixed per-round advance otherwise).
"""

from __future__ import annotations

import math
from typing import List, Mapping, Optional, Sequence

import numpy as np

from ..systems.fleet import Fleet


class ClientSampler:
    """Uniformly sample ``max(1, round(K * N))`` clients without replacement.

    Matches the paper's ``k = max(K × N)`` with sampling rate ``K``: at
    every round a fresh random subset of the ``N`` available clients is
    drawn from the sampler's own seeded generator.
    """

    def __init__(
        self,
        num_clients: int,
        sample_fraction: float = 0.1,
        seed: Optional[int] = None,
    ) -> None:
        if num_clients <= 0:
            raise ValueError(f"num_clients must be positive, got {num_clients}")
        if not 0.0 < sample_fraction <= 1.0:
            raise ValueError(f"sample_fraction must be in (0, 1], got {sample_fraction}")
        self.num_clients = num_clients
        self.sample_fraction = sample_fraction
        self._rng = np.random.default_rng(seed)

    @property
    def clients_per_round(self) -> int:
        return max(1, int(round(self.sample_fraction * self.num_clients)))

    def sample(self) -> List[int]:
        """Indices of this round's participants (sorted for determinism)."""
        chosen = self._rng.choice(
            self.num_clients, size=self.clients_per_round, replace=False
        )
        return sorted(int(index) for index in chosen)


class FixedSampler(ClientSampler):
    """Always return the same subset (deterministic tests / standalone runs).

    ``num_clients`` is the federation size the subset is drawn from; every
    entry of ``clients`` must be a valid index into it, so fixed subsets
    compose with availability masks and per-client device assignments.
    When omitted it is inferred as ``max(clients) + 1`` for backward
    compatibility.
    """

    def __init__(
        self, clients: Sequence[int], num_clients: Optional[int] = None
    ) -> None:
        if not clients:
            raise ValueError("FixedSampler needs at least one client")
        indices = [int(index) for index in clients]
        if num_clients is None:
            num_clients = max(indices) + 1
        out_of_range = sorted(i for i in indices if not 0 <= i < num_clients)
        if out_of_range:
            raise ValueError(
                f"client indices {out_of_range} out of range for "
                f"num_clients={num_clients}"
            )
        if len(set(indices)) != len(indices):
            raise ValueError(f"duplicate client indices in {indices}")
        super().__init__(num_clients=num_clients, sample_fraction=1.0)
        self._fixed = sorted(indices)

    @property
    def clients_per_round(self) -> int:
        return len(self._fixed)

    def sample(self) -> List[int]:
        return list(self._fixed)


class AvailabilitySampler(ClientSampler):
    """Uniform candidate draw filtered by per-client availability + dropout.

    Models a realistic fleet: the server invites a uniform subset each
    round (as :class:`ClientSampler` does), but an invited client only
    participates with its *availability probability* — a fixed per-client
    trait — and then survives an i.i.d. per-round ``dropout`` (transient
    failures).  At least one invited client always participates, since a
    round with zero uploads is undefined.

    Per-client probabilities come from one of (in precedence order):

    * ``participation_probs`` — an explicit per-client sequence,
    * ``fleet`` (or the legacy ``profiles`` list, which builds a
      round-robin ``tiers`` :class:`~repro.systems.fleet.Fleet`) +
      ``profile_participation`` — the fleet assigns each client its
      device class, each class maps to a probability — so the same slow
      device class can both straggle in the wall-clock/fleet simulation
      and show up rarely here,
    * ``participation`` ± ``participation_spread`` — a seeded uniform draw
      per client, clipped to ``(0, 1]``.

    Everything is drawn from the sampler's own seeded generator: two
    samplers built with the same arguments produce identical rounds.
    """

    def __init__(
        self,
        num_clients: int,
        sample_fraction: float = 0.1,
        seed: Optional[int] = None,
        participation: float = 1.0,
        participation_spread: float = 0.0,
        dropout: float = 0.0,
        participation_probs: Optional[Sequence[float]] = None,
        profiles: Optional[Sequence] = None,
        profile_participation: Optional[Mapping[str, float]] = None,
        fleet: Optional[Fleet] = None,
    ) -> None:
        super().__init__(num_clients, sample_fraction, seed=seed)
        if not 0.0 < participation <= 1.0:
            raise ValueError(f"participation must be in (0, 1], got {participation}")
        if participation_spread < 0.0:
            raise ValueError(
                f"participation_spread must be >= 0, got {participation_spread}"
            )
        if not 0.0 <= dropout < 1.0:
            raise ValueError(f"dropout must be in [0, 1), got {dropout}")
        self.dropout = dropout
        if fleet is None and profiles is not None:
            fleet = Fleet(cycle=tuple(profiles))
        self.fleet = fleet
        if participation_probs is not None:
            probs = np.asarray(participation_probs, dtype=float)
            if probs.shape != (num_clients,):
                raise ValueError(
                    f"participation_probs must have one entry per client "
                    f"({num_clients}), got shape {probs.shape}"
                )
            if (probs <= 0).any() or (probs > 1).any():
                raise ValueError("participation_probs must be in (0, 1]")
        elif fleet is not None:
            # One probability per profile *slot*, gathered per client by the
            # fleet's vectorized assignment — value-identical to looking up
            # profile_for(i).name per client, without the O(n) Python loop.
            lookup = dict(profile_participation or {})
            slot_probs = np.array(
                [
                    lookup.get(profile.name, participation)
                    for profile in fleet.profile_table()
                ],
                dtype=float,
            )
            probs = slot_probs[fleet.profile_indices(np.arange(num_clients))]
        else:
            low = participation - participation_spread
            high = participation + participation_spread
            probs = self._rng.uniform(low, high, size=num_clients)
        self.participation_probs = np.clip(probs, 1e-9, 1.0)

    def sample(self) -> List[int]:
        """This round's participants: invited ∩ available ∩ not-dropped."""
        invited = self._rng.choice(
            self.num_clients, size=self.clients_per_round, replace=False
        )
        draws = self._rng.random(size=invited.size)
        survive = self.participation_probs[invited] * (1.0 - self.dropout)
        participants = invited[draws < survive]
        if participants.size == 0:
            # Never return an empty round; the seeded pick keeps determinism.
            keep = self._rng.integers(invited.size)
            participants = invited[[int(keep)]]
        return sorted(int(index) for index in participants)


class DiurnalSampler(ClientSampler):
    """Temporal availability: participation follows a day/night cycle.

    Each client sits in a seeded "time zone" (a phase drawn uniformly in
    ``[0, 2π)``), and its availability at simulated time ``t`` is::

        participation × ((1 − amplitude) + amplitude × day(t, phase))

    with ``day`` the raised cosine ``0.5 × (1 + sin(2πt/period + phase))``
    — 1.0 at local daytime peak, 0.0 at local night.  ``amplitude=0``
    collapses to the flat availability model; ``amplitude=1`` makes
    clients fully unavailable at local midnight.

    Time comes from an attached :class:`~repro.systems.clock.SimClock`
    (the builder attaches the fleet simulator's clock when the run has a
    ``systems`` section, so *slower round policies literally see fewer
    day/night cycles per round*); without one the sampler advances its
    own time by ``round_seconds`` per sample, a fixed estimate.
    """

    def __init__(
        self,
        num_clients: int,
        sample_fraction: float = 0.1,
        seed: Optional[int] = None,
        participation: float = 1.0,
        amplitude: float = 0.8,
        period_seconds: float = 86400.0,
        round_seconds: float = 600.0,
        clock=None,
    ) -> None:
        super().__init__(num_clients, sample_fraction, seed=seed)
        if not 0.0 < participation <= 1.0:
            raise ValueError(f"participation must be in (0, 1], got {participation}")
        if not 0.0 <= amplitude <= 1.0:
            raise ValueError(f"amplitude must be in [0, 1], got {amplitude}")
        if period_seconds <= 0 or round_seconds <= 0:
            raise ValueError("period_seconds and round_seconds must be positive")
        self.participation = participation
        self.amplitude = amplitude
        self.period_seconds = period_seconds
        self.round_seconds = round_seconds
        self._clock = clock
        self._rounds_sampled = 0
        self.phases = self._rng.uniform(0.0, 2.0 * math.pi, size=num_clients)

    def attach_clock(self, clock) -> None:
        """Drive availability off a shared simulation clock from now on."""
        self._clock = clock

    @property
    def now(self) -> float:
        """The simulated time the *next* sample will be drawn at."""
        if self._clock is not None:
            return float(self._clock.now)
        return self._rounds_sampled * self.round_seconds

    def availability(self, t: Optional[float] = None) -> np.ndarray:
        """Per-client participation probabilities at simulated time ``t``."""
        t = self.now if t is None else t
        day = 0.5 * (
            1.0 + np.sin(2.0 * math.pi * t / self.period_seconds + self.phases)
        )
        probs = self.participation * ((1.0 - self.amplitude) + self.amplitude * day)
        return np.clip(probs, 1e-9, 1.0)

    def sample(self) -> List[int]:
        """This round's participants: invited ∩ awake at the current time."""
        probs = self.availability()
        self._rounds_sampled += 1
        invited = self._rng.choice(
            self.num_clients, size=self.clients_per_round, replace=False
        )
        draws = self._rng.random(size=invited.size)
        participants = invited[draws < probs[invited]]
        if participants.size == 0:
            # Never return an empty round; the seeded pick keeps determinism.
            keep = self._rng.integers(invited.size)
            participants = invited[[int(keep)]]
        return sorted(int(index) for index in participants)
