"""Per-round metrics and run history."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class RoundRecord:
    """Everything measured in one communication round."""

    round_index: int
    sampled_clients: List[int]
    train_loss: float
    mean_accuracy: Optional[float] = None  # personalized test accuracy (all clients)
    sampled_accuracy: Optional[float] = None  # accuracy of this round's participants
    mean_sparsity: float = 0.0  # avg unstructured sparsity over clients
    mean_channel_sparsity: float = 0.0  # avg channel sparsity over clients
    uploaded_bytes: float = 0.0
    downloaded_bytes: float = 0.0
    wall_clock_seconds: Optional[float] = None  # simulated seconds (WallClockCallback)


@dataclass
class History:
    """Chronological record of a federated run plus final summaries."""

    algorithm: str
    rounds: List[RoundRecord] = field(default_factory=list)
    final_accuracy: Optional[float] = None
    final_per_client_accuracy: Dict[int, float] = field(default_factory=dict)
    total_communication_bytes: float = 0.0

    def append(self, record: RoundRecord) -> None:
        self.rounds.append(record)
        self.total_communication_bytes += record.uploaded_bytes + record.downloaded_bytes

    def accuracy_curve(self) -> List[tuple]:
        """(round, mean accuracy) pairs for rounds where accuracy was measured."""
        return [
            (record.round_index, record.mean_accuracy)
            for record in self.rounds
            if record.mean_accuracy is not None
        ]

    def rounds_to_accuracy(self, target: float) -> Optional[int]:
        """First round at which mean accuracy reached ``target`` (or None)."""
        for round_index, accuracy in self.accuracy_curve():
            if accuracy >= target:
                return round_index
        return None

    @property
    def total_communication_gb(self) -> float:
        return self.total_communication_bytes / 1e9
