"""Per-round metrics and run history."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class RoundRecord:
    """Everything measured in one communication round.

    Traffic is recorded twice: the round totals (``uploaded_bytes`` /
    ``downloaded_bytes``, summed over participants — always present) and,
    when the trainer meters it, the per-client breakdown
    (``client_uploaded_bytes`` / ``client_downloaded_bytes``, keyed by
    client id).  The per-client form is what prices Sub-FedAvg correctly:
    each client's mask size differs, so an even split misprices the
    stragglers.  :meth:`per_client_traffic` returns whichever is
    available, documented even-split fallback included.

    ``simulated_seconds`` and ``stragglers`` are stamped by the fleet
    simulator (:class:`~repro.systems.callback.FleetSimCallback`);
    ``wall_clock_seconds`` is the legacy
    :class:`~repro.federated.callbacks.WallClockCallback` annotation.
    """

    round_index: int
    sampled_clients: List[int]
    train_loss: float
    mean_accuracy: Optional[float] = None  # personalized test accuracy (all clients)
    sampled_accuracy: Optional[float] = None  # accuracy of this round's participants
    mean_sparsity: float = 0.0  # avg unstructured sparsity over clients
    mean_channel_sparsity: float = 0.0  # avg channel sparsity over clients
    uploaded_bytes: float = 0.0
    downloaded_bytes: float = 0.0
    wall_clock_seconds: Optional[float] = None  # simulated seconds (WallClockCallback)
    client_uploaded_bytes: Optional[Dict[int, float]] = None
    client_downloaded_bytes: Optional[Dict[int, float]] = None
    simulated_seconds: Optional[float] = None  # fleet-simulator round duration
    stragglers: List[int] = field(default_factory=list)  # missed the round close

    def __post_init__(self) -> None:
        # JSON round-trips stringify integer dict keys; normalize back so
        # a reloaded record compares (and prices) identically.
        for name in ("client_uploaded_bytes", "client_downloaded_bytes"):
            value = getattr(self, name)
            if value is not None:
                setattr(
                    self, name, {int(cid): float(b) for cid, b in value.items()}
                )

    def per_client_traffic(self) -> Dict[int, Tuple[float, float]]:
        """``client_id -> (uploaded, downloaded)`` bytes for this round.

        Uses the metered per-client breakdown when the record carries
        one; otherwise falls back to splitting the round totals evenly
        over the sampled clients — exact for dense exchanges, an
        approximation for per-client-sparse algorithms.
        """
        participants = self.sampled_clients or [0]
        if self.client_uploaded_bytes is None and self.client_downloaded_bytes is None:
            up = self.uploaded_bytes / len(participants)
            down = self.downloaded_bytes / len(participants)
            return {int(cid): (up, down) for cid in participants}
        ups = self.client_uploaded_bytes or {}
        downs = self.client_downloaded_bytes or {}
        clients = sorted({*map(int, participants), *ups, *downs})
        return {
            cid: (ups.get(cid, 0.0), downs.get(cid, 0.0)) for cid in clients
        }


@dataclass
class History:
    """Chronological record of a federated run plus final summaries."""

    algorithm: str
    rounds: List[RoundRecord] = field(default_factory=list)
    final_accuracy: Optional[float] = None
    final_per_client_accuracy: Dict[int, float] = field(default_factory=dict)
    total_communication_bytes: float = 0.0

    def append(self, record: RoundRecord) -> None:
        self.rounds.append(record)
        self.total_communication_bytes += record.uploaded_bytes + record.downloaded_bytes

    def accuracy_curve(self) -> List[tuple]:
        """(round, mean accuracy) pairs for rounds where accuracy was measured."""
        return [
            (record.round_index, record.mean_accuracy)
            for record in self.rounds
            if record.mean_accuracy is not None
        ]

    def rounds_to_accuracy(self, target: float) -> Optional[int]:
        """First round at which mean accuracy reached ``target`` (or None)."""
        for round_index, accuracy in self.accuracy_curve():
            if accuracy >= target:
                return round_index
        return None

    def seconds_to_accuracy(self, target: float) -> Optional[float]:
        """Simulated seconds until ``target`` mean accuracy (or None).

        Reads the fleet simulator's ``simulated_seconds`` annotations
        (falling back to legacy ``wall_clock_seconds``); returns None if
        the target is never reached or no round carries a duration.
        """
        from ..systems.report import simulated_time_to_accuracy

        return simulated_time_to_accuracy(self, target)

    @property
    def total_simulated_seconds(self) -> Optional[float]:
        """Total simulated run time (None when no round was priced)."""
        from ..systems.report import total_simulated_seconds

        return total_simulated_seconds(self)

    @property
    def total_communication_gb(self) -> float:
        return self.total_communication_bytes / 1e9
