"""Trainer registry: the plugin point for federated algorithms.

Every trainer class registers itself under its public algorithm name with
the :func:`register_trainer` decorator, declaring which optional
:class:`~repro.federated.builder.FederationConfig` sections it consumes
(``"unstructured"``, ``"structured"``) and any per-field defaults it needs
patched into clients' :class:`~repro.federated.client.LocalTrainConfig`
(e.g. FedProx's ``prox_mu``).  Construction sites — the builder, the
:class:`~repro.federated.federation.Federation` facade and the CLI — look
algorithms up here instead of hard-coding an if/elif chain, so adding an
algorithm is one decorated class, no core edits:

>>> from repro.federated.registry import register_trainer
>>> from repro.federated.trainers.base import FederatedTrainer
>>> @register_trainer("my-algo")
... class MyAlgo(FederatedTrainer):
...     def _round(self, round_index, sampled):
...         ...
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Tuple, Type

#: FederationConfig attributes a trainer may declare in ``config_sections``.
KNOWN_CONFIG_SECTIONS = ("unstructured", "structured", "compression")


@dataclass(frozen=True)
class TrainerSpec:
    """One registry entry: the class plus its construction contract."""

    name: str
    cls: Type
    config_sections: Tuple[str, ...] = ()
    local_defaults: Mapping[str, float] = field(default_factory=dict)
    summary: str = ""


_REGISTRY: Dict[str, TrainerSpec] = {}


def register_trainer(
    name: str,
    *,
    config_sections: Tuple[str, ...] = (),
    local_defaults: Mapping[str, float] = (),
    summary: str = "",
) -> Callable[[Type], Type]:
    """Class decorator adding a trainer to the registry under ``name``.

    ``config_sections`` names the optional :class:`FederationConfig`
    sections forwarded to the constructor (keyword arguments of the same
    name).  ``local_defaults`` maps ``LocalTrainConfig`` field names to the
    value the builder should substitute when the user left the field at a
    non-positive placeholder (how FedProx gets a default ``prox_mu``).
    ``summary`` defaults to the first line of the class docstring.
    """
    for section in config_sections:
        if section not in KNOWN_CONFIG_SECTIONS:
            raise ValueError(
                f"unknown config section {section!r}; "
                f"choose from {KNOWN_CONFIG_SECTIONS}"
            )

    def decorator(cls: Type) -> Type:
        if name in _REGISTRY:
            raise ValueError(
                f"trainer {name!r} is already registered "
                f"(by {_REGISTRY[name].cls.__name__})"
            )
        doc = summary or _first_doc_line(cls)
        cls.algorithm_name = name
        _REGISTRY[name] = TrainerSpec(
            name=name,
            cls=cls,
            config_sections=tuple(config_sections),
            local_defaults=dict(local_defaults),
            summary=doc,
        )
        return cls

    return decorator


def get_trainer(name: str) -> TrainerSpec:
    """Look up one registered trainer; raises ``KeyError`` for unknown names."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown algorithm {name!r}; choose from {available_algorithms()}"
        ) from None


def available_algorithms() -> Tuple[str, ...]:
    """Registered algorithm names, in registration order."""
    return tuple(_REGISTRY)


def trainer_specs() -> Tuple[TrainerSpec, ...]:
    """All registry entries, in registration order."""
    return tuple(_REGISTRY.values())


def unregister_trainer(name: str) -> TrainerSpec:
    """Remove one entry (plugin teardown / test isolation); returns it."""
    try:
        return _REGISTRY.pop(name)
    except KeyError:
        raise KeyError(f"trainer {name!r} is not registered") from None


def _first_doc_line(cls: Type) -> str:
    doc = (cls.__doc__ or "").strip()
    return doc.splitlines()[0] if doc else ""
