"""Pluggable client-execution backends: the round loop as a task engine.

Trainers describe one communication round as a list of declarative
:class:`ClientTask` objects — *which* client does *what* (train against the
global weights, fine-tune-and-evaluate, …) — and hand the list to
:meth:`FederatedTrainer.execute`, which delegates to an
:class:`ExecutionBackend`:

* :class:`SerialBackend` — runs tasks in order in the calling thread.
  The default; bit-identical to the historical hand-rolled ``for`` loops.
* :class:`ThreadBackend` — a thread pool.  Local training is dominated by
  numpy/BLAS kernels that release the GIL, so sampled clients genuinely
  overlap.  Clients are disjoint per task and each owns its own seeded
  RNG stream, so results do not depend on scheduling.
* :class:`ProcessBackend` — a ``fork`` process pool.  Workers inherit the
  clients by forking, execute their tasks, and ship a picklable
  :class:`ClientUpdate` (plus a :class:`ClientSync` of mutated client
  state) back to the parent, which re-applies it in task order.

Determinism contract: every backend returns updates in **task order**, and
all client-side randomness comes from per-client generators
(:class:`~repro.data.loader.DataLoader` is seeded with
``(seed, client_id)``), so serial, threaded and multiprocess runs of the
same federation produce identical :class:`~repro.federated.metrics.History`
objects.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..pruning import MaskSet

State = Dict[str, Any]

#: Valid ``ClientTask.kind`` values.
TASK_KINDS = ("train", "evaluate")

#: Valid ``ClientTask.load`` values.
LOAD_MODES = ("none", "global", "partial")


@dataclass(frozen=True)
class ClientTask:
    """One unit of client work, described declaratively (and picklable).

    ``kind="train"`` runs local SGD; ``kind="evaluate"`` measures test
    accuracy (optionally after a fine-tune of ``epochs`` epochs).  ``load``
    selects what the client downloads first: the full global state, the
    ``shared_names`` subset (LG-FedAvg), or nothing (MTL, standalone).
    """

    client_index: int
    kind: str = "train"
    load: str = "none"
    shared_names: Tuple[str, ...] = ()
    anchor_global: bool = False  # FedProx / MTL regularizer reference point
    epochs: Optional[int] = None  # train: budget override; evaluate: fine-tune
    restore: bool = False  # evaluate: leave the client untouched afterwards
    want_trajectory: bool = False  # Sub-FedAvg Figure-1 bookkeeping

    def __post_init__(self) -> None:
        if self.kind not in TASK_KINDS:
            raise ValueError(f"kind must be one of {TASK_KINDS}, got {self.kind!r}")
        if self.load not in LOAD_MODES:
            raise ValueError(f"load must be one of {LOAD_MODES}, got {self.load!r}")
        if self.load == "partial" and not self.shared_names:
            raise ValueError("load='partial' requires shared_names")


@dataclass
class ClientSync:
    """Client state mutated by a task, for re-applying after a process hop."""

    model_state: State
    rng_state: Dict[str, Any]
    controller_state: Optional[Dict[str, Any]] = None


@dataclass
class ClientUpdate:
    """What one task sends back to the server.

    For a training task this is the paper's ClientUpdate: the post-training
    state dict, the number of examples actually processed this round, the
    mean loss, the committed personal mask and the pruning decisions.  For
    an evaluation task only ``accuracy`` is populated.
    """

    client_index: int
    client_id: int
    state: Optional[State] = None
    mask: Optional[MaskSet] = None
    num_examples: int = 0
    mean_loss: float = 0.0
    val_accuracy: Optional[float] = None
    pruned_unstructured: bool = False
    pruned_structured: bool = False
    accuracy: Optional[float] = None
    sparsity: Optional[float] = None
    channel_sparsity: Optional[float] = None
    sync: Optional[ClientSync] = None


def capture_sync(client) -> ClientSync:
    """Snapshot everything a training task may have mutated on ``client``."""
    controller = client.controller
    return ClientSync(
        model_state=client.state_dict(),
        rng_state=client.rng_state(),
        controller_state=None if controller is None else controller.state_dict(),
    )


def apply_sync(client, sync: ClientSync) -> None:
    """Replay a worker-side mutation onto the parent's ``client``."""
    client.model.load_state_dict(sync.model_state)
    client.set_rng_state(sync.rng_state)
    if sync.controller_state is not None:
        client.controller.load_state_dict(sync.controller_state)


def run_client_task(
    client, task: ClientTask, global_state: State, with_sync: bool = False
) -> ClientUpdate:
    """Execute one task against ``client`` and package the result.

    This is the single code path every backend funnels through, so serial
    and parallel execution cannot drift apart semantically.
    """
    if task.kind == "train":
        return _run_train(client, task, global_state, with_sync)
    return _run_evaluate(client, task, global_state)


def _load(client, task: ClientTask, global_state: State) -> None:
    if task.load == "global":
        client.load_global(global_state)
    elif task.load == "partial":
        client.load_partial(global_state, task.shared_names)


def _run_train(
    client, task: ClientTask, global_state: State, with_sync: bool
) -> ClientUpdate:
    _load(client, task, global_state)
    if task.anchor_global:
        client.set_anchor(global_state)
    result = client.train_local(epochs=task.epochs)
    update = ClientUpdate(
        client_index=task.client_index,
        client_id=client.client_id,
        state=client.state_dict(),
        mask=client.mask,
        num_examples=result.num_examples,
        mean_loss=result.mean_loss,
        val_accuracy=result.val_accuracy,
        pruned_unstructured=result.pruned_unstructured,
        pruned_structured=result.pruned_structured,
    )
    if task.want_trajectory:
        update.sparsity = client.controller.unstructured_sparsity()
        update.channel_sparsity = client.controller.channel_sparsity()
        update.accuracy = client.test_accuracy()
    if with_sync:
        update.sync = capture_sync(client)
    return update


def _run_evaluate(client, task: ClientTask, global_state: State) -> ClientUpdate:
    saved = client.snapshot_state() if task.restore else None
    _load(client, task, global_state)
    if task.epochs:
        client.train_local(epochs=task.epochs)
    accuracy = client.test_accuracy()
    if saved is not None:
        client.restore_state(saved)
    return ClientUpdate(
        client_index=task.client_index,
        client_id=client.client_id,
        accuracy=accuracy,
    )


def default_worker_count(workers: int = 0) -> int:
    """Resolve a worker-count setting: positive values pass through, 0/None
    means one worker per CPU.  Shared by the round-level backends here and
    the grid-level :class:`~repro.experiments.sweep.SweepRunner`."""
    if workers and workers > 0:
        return int(workers)
    return max(1, os.cpu_count() or 1)


_default_workers = default_worker_count  # backward-compatible alias


class ExecutionBackend:
    """Strategy interface: run a batch of tasks, return updates in order."""

    name = "abstract"

    #: Does ``run`` mutate clients from several threads of *this* process
    #: at once?  A :class:`~repro.federated.pool.ClientPool` must pin such
    #: a batch live for the duration — an evicted-then-rebuilt twin must
    #: never race a running task.  Serial execution and the process
    #: backend's parent side touch clients strictly sequentially.
    concurrent_in_process = False

    def run(
        self, tasks: Sequence[ClientTask], clients: Sequence, global_state: State
    ) -> List[ClientUpdate]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class SerialBackend(ExecutionBackend):
    """In-order, in-thread execution — the reference semantics."""

    name = "serial"

    def __init__(self, workers: int = 0) -> None:  # signature-compatible
        del workers

    def run(self, tasks, clients, global_state):
        return [
            run_client_task(clients[task.client_index], task, global_state)
            for task in tasks
        ]


class ThreadBackend(ExecutionBackend):
    """Thread-pool execution; clients are mutated in place as in serial."""

    name = "thread"
    concurrent_in_process = True

    def __init__(self, workers: int = 0) -> None:
        self.workers = _default_workers(workers)

    def run(self, tasks, clients, global_state):
        if len(tasks) <= 1:
            return SerialBackend().run(tasks, clients, global_state)
        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            futures = [
                pool.submit(
                    run_client_task, clients[task.client_index], task, global_state
                )
                for task in tasks
            ]
            return [future.result() for future in futures]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ThreadBackend(workers={self.workers})"


# Per-worker context for ProcessBackend. With the fork start method the
# pool initializer and its arguments are inherited by reference (nothing is
# pickled), so each pool binds its own context in its own workers — two
# federations running process pools concurrently cannot see each other's
# clients, and nothing global mutates in the parent.
_FORK_CONTEXT: Optional[Tuple[Sequence[ClientTask], Sequence, State]] = None


def _init_fork_worker(tasks, clients, global_state) -> None:
    global _FORK_CONTEXT
    _FORK_CONTEXT = (tasks, clients, global_state)


def _fork_entry(task_index: int) -> ClientUpdate:
    tasks, clients, global_state = _FORK_CONTEXT
    task = tasks[task_index]
    return run_client_task(
        clients[task.client_index],
        task,
        global_state,
        with_sync=task.kind == "train",
    )


class ProcessBackend(ExecutionBackend):
    """Fork-based process pool; worker mutations are synced back in order.

    Workers inherit the federation by forking (nothing is pickled on the
    way out); each returns a :class:`ClientUpdate` whose ``sync`` payload
    the parent replays onto its own client, in task order, so the parent
    federation ends the round in exactly the state a serial run produces.
    """

    name = "process"

    def __init__(self, workers: int = 0) -> None:
        self.workers = _default_workers(workers)
        if "fork" not in multiprocessing.get_all_start_methods():
            raise RuntimeError(
                "ProcessBackend requires the 'fork' start method "
                "(unavailable on this platform); use the thread backend"
            )

    def run(self, tasks, clients, global_state):
        if len(tasks) <= 1:
            return SerialBackend().run(tasks, clients, global_state)
        context = multiprocessing.get_context("fork")
        with context.Pool(
            min(self.workers, len(tasks)),
            initializer=_init_fork_worker,
            initargs=(list(tasks), clients, global_state),
        ) as pool:
            updates = pool.map(_fork_entry, range(len(tasks)))
        for task, update in zip(tasks, updates):
            if update.sync is not None:
                apply_sync(clients[task.client_index], update.sync)
                update.sync = None
        return updates

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProcessBackend(workers={self.workers})"


#: Registry of constructible backends, keyed by config/CLI name.
BACKENDS = {
    SerialBackend.name: SerialBackend,
    ThreadBackend.name: ThreadBackend,
    ProcessBackend.name: ProcessBackend,
}


def available_backends() -> Tuple[str, ...]:
    """Names accepted by ``FederationConfig.backend`` and ``--backend``."""
    return tuple(BACKENDS)


def resolve_backend(
    backend: Union[str, ExecutionBackend, None], workers: int = 0
) -> ExecutionBackend:
    """Turn a config value (name, instance or None) into a backend object."""
    if backend is None:
        return SerialBackend()
    if isinstance(backend, ExecutionBackend):
        return backend
    try:
        cls = BACKENDS[backend]
    except KeyError:
        raise KeyError(
            f"unknown execution backend {backend!r}; "
            f"choose from {sorted(BACKENDS)}"
        ) from None
    return cls(workers=workers)
