"""Pluggable client-execution backends: the round loop as a task engine.

Trainers describe one communication round as a list of declarative
:class:`ClientTask` objects — *which* client does *what* (train against the
global weights, fine-tune-and-evaluate, …) — and hand the list to
:meth:`FederatedTrainer.execute`, which delegates to an
:class:`ExecutionBackend`:

* :class:`SerialBackend` — runs tasks in order in the calling thread.
  The default; bit-identical to the historical hand-rolled ``for`` loops.
* :class:`ThreadBackend` — a thread pool.  Local training is dominated by
  numpy/BLAS kernels that release the GIL, so sampled clients genuinely
  overlap.  Clients are disjoint per task and each owns its own seeded
  RNG stream, so results do not depend on scheduling.
* :class:`ProcessBackend` — a process pool.  Under ``fork`` workers
  inherit the clients (and global state) copy-on-write per batch; under
  ``spawn`` a persistent :class:`WorkerPool` receives picklable task
  payloads.  Either way workers ship a picklable :class:`ClientUpdate`
  (plus a :class:`ClientSync` of mutated client state) back to the
  parent, which re-applies it in task order.

Determinism contract: every backend returns updates in **task order**, and
all client-side randomness comes from per-client generators
(:class:`~repro.data.loader.DataLoader` is seeded with
``(seed, client_id)``), so serial, threaded and multiprocess runs of the
same federation produce identical :class:`~repro.federated.metrics.History`
objects.
"""

from __future__ import annotations

import base64
import multiprocessing
import os
import pickle
import weakref
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..pruning import MaskSet

State = Dict[str, Any]

#: Valid ``ClientTask.kind`` values.
TASK_KINDS = ("train", "evaluate")

#: Valid ``ClientTask.load`` values.
LOAD_MODES = ("none", "global", "partial")

#: Version stamped on every ``to_wire`` payload; ``from_wire`` refuses
#: other versions instead of misparsing them.
WIRE_VERSION = 1


def _check_wire_version(payload: Mapping, what: str) -> None:
    version = payload.get("schema")
    if version != WIRE_VERSION:
        raise ValueError(
            f"unsupported {what} wire schema {version!r} "
            f"(this build speaks version {WIRE_VERSION})"
        )


@dataclass(frozen=True)
class ClientTask:
    """One unit of client work, described declaratively (and picklable).

    ``kind="train"`` runs local SGD; ``kind="evaluate"`` measures test
    accuracy (optionally after a fine-tune of ``epochs`` epochs).  ``load``
    selects what the client downloads first: the full global state, the
    ``shared_names`` subset (LG-FedAvg), or nothing (MTL, standalone).
    """

    client_index: int
    kind: str = "train"
    load: str = "none"
    shared_names: Tuple[str, ...] = ()
    anchor_global: bool = False  # FedProx / MTL regularizer reference point
    epochs: Optional[int] = None  # train: budget override; evaluate: fine-tune
    restore: bool = False  # evaluate: leave the client untouched afterwards
    want_trajectory: bool = False  # Sub-FedAvg Figure-1 bookkeeping

    def __post_init__(self) -> None:
        if self.kind not in TASK_KINDS:
            raise ValueError(f"kind must be one of {TASK_KINDS}, got {self.kind!r}")
        if self.load not in LOAD_MODES:
            raise ValueError(f"load must be one of {LOAD_MODES}, got {self.load!r}")
        if self.load == "partial" and not self.shared_names:
            raise ValueError("load='partial' requires shared_names")

    def to_wire(self) -> Dict[str, Any]:
        """Versioned JSON-safe dict — the serving protocol's task format."""
        return {
            "schema": WIRE_VERSION,
            "client_index": self.client_index,
            "kind": self.kind,
            "load": self.load,
            "shared_names": list(self.shared_names),
            "anchor_global": self.anchor_global,
            "epochs": self.epochs,
            "restore": self.restore,
            "want_trajectory": self.want_trajectory,
        }

    @classmethod
    def from_wire(cls, payload: Mapping) -> "ClientTask":
        """Inverse of :meth:`to_wire`; refuses unknown schema versions."""
        _check_wire_version(payload, "ClientTask")
        return cls(
            client_index=int(payload["client_index"]),
            kind=str(payload["kind"]),
            load=str(payload["load"]),
            shared_names=tuple(payload["shared_names"]),
            anchor_global=bool(payload["anchor_global"]),
            epochs=None if payload["epochs"] is None else int(payload["epochs"]),
            restore=bool(payload["restore"]),
            want_trajectory=bool(payload["want_trajectory"]),
        )


@dataclass
class ClientSync:
    """Client state mutated by a task, for re-applying after a process hop."""

    model_state: State
    rng_state: Dict[str, Any]
    controller_state: Optional[Dict[str, Any]] = None


@dataclass
class ClientUpdate:
    """What one task sends back to the server.

    For a training task this is the paper's ClientUpdate: the post-training
    state dict, the number of examples actually processed this round, the
    mean loss, the committed personal mask and the pruning decisions.  For
    an evaluation task only ``accuracy`` is populated.
    """

    client_index: int
    client_id: int
    state: Optional[State] = None
    mask: Optional[MaskSet] = None
    num_examples: int = 0
    mean_loss: float = 0.0
    val_accuracy: Optional[float] = None
    pruned_unstructured: bool = False
    pruned_structured: bool = False
    accuracy: Optional[float] = None
    sparsity: Optional[float] = None
    channel_sparsity: Optional[float] = None
    sync: Optional[ClientSync] = None

    def to_wire(self, codec=None) -> Dict[str, Any]:
        """Versioned JSON-safe dict with the state encoded by ``codec``.

        ``codec`` is any registered :class:`~repro.federated.compression
        .Compressor` (None = identity, which is bitwise-lossless); the
        payload is self-describing, so the receiver decodes without
        knowing the sender's codec in advance.  ``sync`` stays off the
        wire deliberately: remote executors own their client state.
        """
        from .compression import IdentityCompressor, pack_state

        if codec is None:
            codec = IdentityCompressor()
        payload: Dict[str, Any] = {
            "schema": WIRE_VERSION,
            "client_index": int(self.client_index),
            "client_id": int(self.client_id),
            "num_examples": int(self.num_examples),
            "mean_loss": float(self.mean_loss),
            "val_accuracy": _opt_float(self.val_accuracy),
            "pruned_unstructured": bool(self.pruned_unstructured),
            "pruned_structured": bool(self.pruned_structured),
            "accuracy": _opt_float(self.accuracy),
            "sparsity": _opt_float(self.sparsity),
            "channel_sparsity": _opt_float(self.channel_sparsity),
            "state": None,
            "mask": None,
        }
        if self.state is not None:
            encoded = codec.encode(self.state)
            payload["state"] = {
                "codec": encoded.codec,
                "bits": encoded.bits,
                "blob": base64.b64encode(encoded.payload).decode("ascii"),
            }
        if self.mask is not None:
            blob = pack_state({name: m for name, m in self.mask.items()})
            payload["mask"] = base64.b64encode(blob).decode("ascii")
        return payload

    @classmethod
    def from_wire(cls, payload: Mapping) -> "ClientUpdate":
        """Inverse of :meth:`to_wire` (state decoded by its own header)."""
        from .compression import decode_state, unpack_state

        _check_wire_version(payload, "ClientUpdate")
        state = None
        if payload["state"] is not None:
            state = decode_state(base64.b64decode(payload["state"]["blob"]))
        mask = None
        if payload["mask"] is not None:
            mask = MaskSet(unpack_state(base64.b64decode(payload["mask"])))
        return cls(
            client_index=int(payload["client_index"]),
            client_id=int(payload["client_id"]),
            state=state,
            mask=mask,
            num_examples=int(payload["num_examples"]),
            mean_loss=float(payload["mean_loss"]),
            val_accuracy=_opt_float(payload["val_accuracy"]),
            pruned_unstructured=bool(payload["pruned_unstructured"]),
            pruned_structured=bool(payload["pruned_structured"]),
            accuracy=_opt_float(payload["accuracy"]),
            sparsity=_opt_float(payload["sparsity"]),
            channel_sparsity=_opt_float(payload["channel_sparsity"]),
        )


def _opt_float(value) -> Optional[float]:
    return None if value is None else float(value)


def capture_sync(client) -> ClientSync:
    """Snapshot everything a training task may have mutated on ``client``."""
    controller = client.controller
    return ClientSync(
        model_state=client.state_dict(),
        rng_state=client.rng_state(),
        controller_state=None if controller is None else controller.state_dict(),
    )


def apply_sync(client, sync: ClientSync) -> None:
    """Replay a worker-side mutation onto the parent's ``client``."""
    client.model.load_state_dict(sync.model_state)
    client.set_rng_state(sync.rng_state)
    if sync.controller_state is not None:
        client.controller.load_state_dict(sync.controller_state)


def run_client_task(
    client, task: ClientTask, global_state: State, with_sync: bool = False
) -> ClientUpdate:
    """Execute one task against ``client`` and package the result.

    This is the single code path every backend funnels through, so serial
    and parallel execution cannot drift apart semantically.
    """
    if task.kind == "train":
        return _run_train(client, task, global_state, with_sync)
    return _run_evaluate(client, task, global_state)


def _load(client, task: ClientTask, global_state: State) -> None:
    if task.load == "global":
        client.load_global(global_state)
    elif task.load == "partial":
        client.load_partial(global_state, task.shared_names)


def _run_train(
    client, task: ClientTask, global_state: State, with_sync: bool
) -> ClientUpdate:
    _load(client, task, global_state)
    if task.anchor_global:
        client.set_anchor(global_state)
    result = client.train_local(epochs=task.epochs)
    update = ClientUpdate(
        client_index=task.client_index,
        client_id=client.client_id,
        state=client.state_dict(),
        mask=client.mask,
        num_examples=result.num_examples,
        mean_loss=result.mean_loss,
        val_accuracy=result.val_accuracy,
        pruned_unstructured=result.pruned_unstructured,
        pruned_structured=result.pruned_structured,
    )
    if task.want_trajectory:
        update.sparsity = client.controller.unstructured_sparsity()
        update.channel_sparsity = client.controller.channel_sparsity()
        update.accuracy = client.test_accuracy()
    if with_sync:
        update.sync = capture_sync(client)
    return update


def _run_evaluate(client, task: ClientTask, global_state: State) -> ClientUpdate:
    saved = client.snapshot_state() if task.restore else None
    _load(client, task, global_state)
    if task.epochs:
        client.train_local(epochs=task.epochs)
    accuracy = client.test_accuracy()
    if saved is not None:
        client.restore_state(saved)
    return ClientUpdate(
        client_index=task.client_index,
        client_id=client.client_id,
        accuracy=accuracy,
    )


def default_worker_count(workers: int = 0) -> int:
    """Resolve a worker-count setting: positive values pass through, 0/None
    means one worker per CPU.  Shared by the round-level backends here and
    the grid-level :class:`~repro.experiments.sweep.SweepRunner`."""
    if workers and workers > 0:
        return int(workers)
    return max(1, os.cpu_count() or 1)


_default_workers = default_worker_count  # backward-compatible alias


class ExecutionBackend:
    """Strategy interface: run a batch of tasks, return updates in order."""

    name = "abstract"

    #: Does ``run`` mutate clients from several threads of *this* process
    #: at once?  A :class:`~repro.federated.pool.ClientPool` must pin such
    #: a batch live for the duration — an evicted-then-rebuilt twin must
    #: never race a running task.  Serial execution and the process
    #: backend's parent side touch clients strictly sequentially.
    concurrent_in_process = False

    def run(
        self, tasks: Sequence[ClientTask], clients: Sequence, global_state: State
    ) -> List[ClientUpdate]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class SerialBackend(ExecutionBackend):
    """In-order, in-thread execution — the reference semantics."""

    name = "serial"

    def __init__(self, workers: int = 0) -> None:  # signature-compatible
        del workers

    def run(self, tasks, clients, global_state):
        return [
            run_client_task(clients[task.client_index], task, global_state)
            for task in tasks
        ]


class ThreadBackend(ExecutionBackend):
    """Thread-pool execution; clients are mutated in place as in serial."""

    name = "thread"
    concurrent_in_process = True

    def __init__(self, workers: int = 0) -> None:
        self.workers = _default_workers(workers)

    def run(self, tasks, clients, global_state):
        if len(tasks) <= 1:
            return SerialBackend().run(tasks, clients, global_state)
        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            futures = [
                pool.submit(
                    run_client_task, clients[task.client_index], task, global_state
                )
                for task in tasks
            ]
            return [future.result() for future in futures]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ThreadBackend(workers={self.workers})"


def resolve_start_method(start_method: Optional[str] = None) -> str:
    """Pick a multiprocessing start method, failing loudly when impossible.

    ``None`` auto-selects: ``fork`` where available (cheap worker startup,
    shared read-only pages), else ``spawn`` — so platforms without fork
    (Windows, macOS defaults) get a working pool instead of a crash or a
    hang.  An explicit method that the platform lacks raises a clear
    ``RuntimeError`` naming the alternatives.
    """
    methods = multiprocessing.get_all_start_methods()
    if start_method is None:
        return "fork" if "fork" in methods else "spawn"
    if start_method not in methods:
        raise RuntimeError(
            f"multiprocessing start method {start_method!r} is unavailable "
            f"on this platform (have {methods}); pass start_method=None to "
            "auto-select, or use the thread backend"
        )
    return start_method


class WorkerPool:
    """A persistent, start-method-aware process pool.

    Created lazily on the first :meth:`map` and reused until
    :meth:`close` — so the round-level :class:`ProcessBackend` amortizes
    worker startup across every round of a run, and the sweep engine
    amortizes it across grid cells.  Workers are stateless: every call
    ships fully picklable payloads, which is what makes the same code
    path correct under both ``fork`` and ``spawn``.
    """

    def __init__(self, workers: int = 0, start_method: Optional[str] = None) -> None:
        self.workers = default_worker_count(workers)
        self.start_method = resolve_start_method(start_method)
        self._pool = None
        self._finalizer = None

    def _ensure(self):
        if self._pool is None:
            context = multiprocessing.get_context(self.start_method)
            self._pool = context.Pool(self.workers)
            # Reap workers when the pool object is garbage-collected even
            # if close() was never called (interpreter shutdown safety).
            self._finalizer = weakref.finalize(self, _terminate_pool, self._pool)
        return self._pool

    def map(self, fn, items: Sequence) -> List:
        """``[fn(item) for item in items]`` on the workers, in order."""
        items = list(items)
        if not items:
            return []
        try:
            return self._ensure().map(fn, items)
        except Exception:
            # Pickling failures surface as various types (PicklingError,
            # AttributeError, TypeError) depending on the payload; probe
            # the payloads so the caller gets a diagnosis, not a hang dump.
            for item in items:
                try:
                    pickle.dumps(item)
                except Exception as pickle_exc:
                    raise RuntimeError(
                        f"worker payloads must pickle for the "
                        f"{self.start_method!r} process pool ({pickle_exc}); "
                        "use the thread backend for unpicklable clients"
                    ) from pickle_exc
            raise

    def close(self) -> None:
        """Shut the workers down; the next :meth:`map` starts a fresh pool."""
        if self._pool is not None:
            if self._finalizer is not None:
                self._finalizer.detach()
                self._finalizer = None
            _terminate_pool(self._pool)
            self._pool = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WorkerPool(workers={self.workers}, "
            f"start_method={self.start_method!r})"
        )


def _terminate_pool(pool) -> None:
    pool.terminate()
    pool.join()


def _process_entry(payload: Tuple[ClientTask, Any, State]) -> ClientUpdate:
    """Worker-side unit of work: one (task, client, global_state) triple."""
    task, client, global_state = payload
    return run_client_task(
        client, task, global_state, with_sync=task.kind == "train"
    )


#: Parent-side batch context a ``fork`` pool's workers inherit copy-on-write
#: (set immediately before the pool is created, cleared right after map).
_FORK_CONTEXT: Optional[Tuple[Sequence[ClientTask], Any, State]] = None


def _fork_entry(index: int) -> ClientUpdate:
    """Worker-side unit of work under ``fork``: everything is inherited."""
    tasks, clients, global_state = _FORK_CONTEXT
    task = tasks[index]
    return run_client_task(
        clients[task.client_index], task, global_state,
        with_sync=task.kind == "train",
    )


class ProcessBackend(ExecutionBackend):
    """Process-pool execution, dispatch strategy chosen by start method.

    * ``fork`` — each batch forks a short-lived pool whose workers
      inherit the tasks, clients and global state copy-on-write, so
      *nothing* ships on the way in (only the :class:`ClientUpdate`
      results pickle back).  Fork startup is a syscall, far cheaper than
      serializing every client's model **and dataset** per task into a
      persistent pool.
    * ``spawn`` — a persistent :class:`WorkerPool` is reused across
      rounds (worker startup boots an interpreter, so persistence is
      what pays) and each task ships as a picklable
      ``(task, client, global_state)`` payload.

    Either way each worker returns a :class:`ClientUpdate` whose ``sync``
    payload the parent replays onto its own client, in task order, so the
    parent federation ends the round in exactly the state a serial run
    produces.
    """

    name = "process"

    def __init__(self, workers: int = 0, start_method: Optional[str] = None) -> None:
        self.workers = _default_workers(workers)
        self.pool = WorkerPool(workers=self.workers, start_method=start_method)

    @property
    def start_method(self) -> str:
        return self.pool.start_method

    def run(self, tasks, clients, global_state):
        tasks = list(tasks)
        if len(tasks) <= 1:
            return SerialBackend().run(tasks, clients, global_state)
        if self.start_method == "fork":
            updates = self._run_forked(tasks, clients, global_state)
        else:
            payloads = [
                (task, clients[task.client_index], global_state)
                for task in tasks
            ]
            updates = self.pool.map(_process_entry, payloads)
        for task, update in zip(tasks, updates):
            if update.sync is not None:
                apply_sync(clients[task.client_index], update.sync)
                update.sync = None
        return updates

    def _run_forked(self, tasks, clients, global_state) -> List[ClientUpdate]:
        global _FORK_CONTEXT
        context = multiprocessing.get_context("fork")
        # The context global must be in place *before* Pool() forks the
        # workers: they snapshot it (and the clients it references) via
        # copy-on-write page sharing, not via pickling.
        _FORK_CONTEXT = (tasks, clients, global_state)
        try:
            with context.Pool(min(self.workers, len(tasks))) as pool:
                return pool.map(_fork_entry, range(len(tasks)))
        finally:
            _FORK_CONTEXT = None

    def close(self) -> None:
        self.pool.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ProcessBackend(workers={self.workers}, "
            f"start_method={self.start_method!r})"
        )


class SpawnProcessBackend(ProcessBackend):
    """Explicit ``spawn``-start process pool (the no-fork platform path)."""

    name = "process-spawn"

    def __init__(self, workers: int = 0) -> None:
        super().__init__(workers=workers, start_method="spawn")


#: Registry of constructible backends, keyed by config/CLI name.
BACKENDS = {
    SerialBackend.name: SerialBackend,
    ThreadBackend.name: ThreadBackend,
    ProcessBackend.name: ProcessBackend,
    SpawnProcessBackend.name: SpawnProcessBackend,
}


def available_backends() -> Tuple[str, ...]:
    """Names accepted by ``FederationConfig.backend`` and ``--backend``."""
    return tuple(BACKENDS)


def resolve_backend(
    backend: Union[str, ExecutionBackend, None], workers: int = 0
) -> ExecutionBackend:
    """Turn a config value (name, instance or None) into a backend object."""
    if backend is None:
        return SerialBackend()
    if isinstance(backend, ExecutionBackend):
        return backend
    try:
        cls = BACKENDS[backend]
    except KeyError:
        raise KeyError(
            f"unknown execution backend {backend!r}; "
            f"choose from {sorted(BACKENDS)}"
        ) from None
    return cls(workers=workers)
