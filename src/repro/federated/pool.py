"""Virtual clients: materialize a :class:`FederatedClient` only when used.

A million-client federation cannot hold a million live model replicas —
but it never needs to: a round touches ``sample_fraction × n`` clients,
and every client is *reconstructible* from its compact spec (the
partition's index views plus the per-client seeded RNG stream
``(seed, client_id)``; model init is creation-order independent).

:class:`ClientPool` is the drop-in ``Sequence[FederatedClient]`` the
trainers iterate: indexing materializes the client on demand and keeps up
to ``capacity`` of them live in LRU order.  Evicting a client whose state
has diverged from its freshly-built form (it trained, pruned, or was
restored before) spills a :meth:`~.client.FederatedClient.snapshot_state`
into a state store, and the next materialization restores it — so
stateful algorithms (Sub-FedAvg masks, momentum-free SGD state, data
order) survive eviction bit-for-bit.

Mutation tracking keys off the client's private data-order RNG stream:
every mutating task (local training) advances it, and restore-to-snapshot
rewinds it, so "RNG state still equals the just-built baseline" is an
exact proxy for "nothing to spill".  Side-effect-free evaluation
(snapshot → eval → restore) therefore evicts for free.

Two stores ship:

* :class:`MemoryStateStore` — a dict.  The process backend forks workers,
  so a worker inherits the parent's store copy-on-write and its own
  mutations stay private (the parent re-applies the returned
  ``ClientSync`` in task order, exactly as with eager clients).
* :class:`FileStateStore` — one pickle per client under sharded
  directories, for populations whose *spilled* state would not fit in
  memory either.
"""

from __future__ import annotations

import os
import pickle
import shutil
import tempfile
from collections import OrderedDict
from collections.abc import Sequence as SequenceABC
from contextlib import contextmanager
from typing import Callable, Dict, List, Optional, Sequence, Set

from ..data.partition import ClientData
from .client import FederatedClient, LocalTrainConfig


class MemoryStateStore:
    """Spilled client snapshots kept in a plain dict (the default)."""

    def __init__(self) -> None:
        self._snapshots: Dict[int, Dict[str, object]] = {}

    def save(self, client_id: int, snapshot: Dict[str, object]) -> None:
        self._snapshots[client_id] = snapshot

    def load(self, client_id: int) -> Optional[Dict[str, object]]:
        return self._snapshots.get(client_id)

    def __contains__(self, client_id: int) -> bool:
        return client_id in self._snapshots

    def __len__(self) -> int:
        return len(self._snapshots)


class FileStateStore:
    """One pickle per spilled client, sharded 1024 clients per directory.

    For fleets where even the spilled snapshots outgrow memory.  The
    directory defaults to a fresh temp dir owned (and deleted) by this
    store.
    """

    SHARD = 1024

    def __init__(self, root: Optional[str] = None) -> None:
        self._owns_root = root is None
        self.root = root or tempfile.mkdtemp(prefix="repro-client-state-")
        os.makedirs(self.root, exist_ok=True)
        self._known: Set[int] = set()

    def _path(self, client_id: int) -> str:
        shard = os.path.join(self.root, f"shard-{client_id // self.SHARD:05d}")
        os.makedirs(shard, exist_ok=True)
        return os.path.join(shard, f"client-{client_id}.pkl")

    def save(self, client_id: int, snapshot: Dict[str, object]) -> None:
        with open(self._path(client_id), "wb") as handle:
            pickle.dump(snapshot, handle, protocol=pickle.HIGHEST_PROTOCOL)
        self._known.add(client_id)

    def load(self, client_id: int) -> Optional[Dict[str, object]]:
        if client_id not in self._known:
            return None
        with open(self._path(client_id), "rb") as handle:
            return pickle.load(handle)

    def __contains__(self, client_id: int) -> bool:
        return client_id in self._known

    def __len__(self) -> int:
        return len(self._known)

    def close(self) -> None:
        if self._owns_root:
            shutil.rmtree(self.root, ignore_errors=True)

    def __del__(self) -> None:  # pragma: no cover - GC timing
        self.close()


#: Store kinds selectable from ``FederationConfig.state_store``.
STATE_STORES = ("memory", "file")


def make_state_store(kind: str):
    """Build the spill store named by ``FederationConfig.state_store``."""
    if kind == "memory":
        return MemoryStateStore()
    if kind == "file":
        return FileStateStore()
    raise ValueError(
        f"unknown state store {kind!r}; choose from {STATE_STORES}"
    )


class ClientPool(SequenceABC):
    """A lazily-materialized, LRU-bounded ``Sequence[FederatedClient]``.

    ``capacity`` bounds the live clients (0 = unbounded, i.e. eager
    behavior with lazy construction).  ``setup_hooks`` run once per
    materialization *before* any spilled state is restored — trainers
    attach per-client machinery (Sub-FedAvg's ``PruningController``)
    here instead of looping over the population eagerly.
    """

    def __init__(
        self,
        bundles: Sequence[ClientData],
        model_fn: Callable,
        local: LocalTrainConfig,
        seed: int = 0,
        capacity: int = 64,
        store=None,
    ) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self._bundles = list(bundles)
        self._model_fn = model_fn
        self._local = local
        self._seed = seed
        self.capacity = capacity
        self.store = store if store is not None else MemoryStateStore()
        self._live: "OrderedDict[int, FederatedClient]" = OrderedDict()
        self._baselines: Dict[int, object] = {}
        self._restored: Set[int] = set()
        self._setup_hooks: List[Callable[[FederatedClient], None]] = []
        self._pinned: Set[int] = set()
        self.materializations = 0
        self.evictions = 0
        self.spills = 0

    # ------------------------------------------------------------------
    # Sequence protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._bundles)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[position] for position in range(*index.indices(len(self)))]
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(f"client index {index} out of range")
        client = self._live.get(index)
        if client is not None:
            self._live.move_to_end(index)
            return client
        client = self._materialize(index)
        self._live[index] = client
        self._evict_over_capacity()
        return client

    def index(self, client: FederatedClient) -> int:
        """Position of one of this pool's clients (client ids are
        positional; the bundle identity ties an instance to its slot even
        after eviction)."""
        position = int(client.client_id)
        if 0 <= position < len(self) and self._bundles[position] is client.data:
            return position
        raise ValueError("client does not belong to this pool")

    # ------------------------------------------------------------------
    # Materialization / eviction
    # ------------------------------------------------------------------
    def build(self, index: int) -> FederatedClient:
        """A fresh, un-pooled client (parity tests compare against these)."""
        client = FederatedClient(
            self._bundles[index], self._model_fn, self._local, seed=self._seed
        )
        for hook in self._setup_hooks:
            hook(client)
        return client

    def _materialize(self, index: int) -> FederatedClient:
        client = self.build(index)
        client_id = int(client.client_id)
        snapshot = self.store.load(client_id)
        if snapshot is not None:
            client.restore_state(snapshot)
            self._restored.add(index)
        self._baselines[index] = client.rng_state()
        self.materializations += 1
        return client

    def _evict_over_capacity(self) -> None:
        if self.capacity <= 0:
            return
        while len(self._live) > self.capacity:
            victim = next(
                (idx for idx in self._live if idx not in self._pinned), None
            )
            if victim is None:
                return  # everything live is pinned; grow past capacity
            self._evict(victim)

    def _evict(self, index: int) -> None:
        client = self._live.pop(index)
        baseline = self._baselines.pop(index, None)
        # A client whose RNG stream never moved past its materialization
        # baseline did no mutating work — nothing to spill.  A client that
        # was restored from the store stays dirty (the store must keep its
        # state for the next materialization).
        dirty = index in self._restored or client.rng_state() != baseline
        if dirty:
            self.store.save(int(client.client_id), client.snapshot_state())
            self.spills += 1
        self._restored.discard(index)
        self.evictions += 1

    @property
    def live_count(self) -> int:
        return len(self._live)

    # ------------------------------------------------------------------
    # Trainer integration
    # ------------------------------------------------------------------
    def add_setup_hook(self, hook: Callable[[FederatedClient], None]) -> None:
        """Run ``hook`` on every client at materialization (and on all
        currently-live clients immediately)."""
        self._setup_hooks.append(hook)
        for client in self._live.values():
            hook(client)

    @contextmanager
    def pinned(self, indices):
        """Keep ``indices`` live for the duration (concurrent execution:
        an evicted-then-rebuilt twin must never race a running task)."""
        added = {int(index) for index in indices} - self._pinned
        self._pinned |= added
        try:
            yield self
        finally:
            self._pinned -= added
            self._evict_over_capacity()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ClientPool(n={len(self)}, live={self.live_count}, "
            f"capacity={self.capacity}, spilled={len(self.store)})"
        )
