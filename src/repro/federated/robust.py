"""Robustness extensions: client availability and corrupted updates.

§1.1 lists practical FL issues the paper scopes out — "availability of the
clients, corrupted updates by the clients" — that a deployable release of
this system still needs.  This module provides:

* :class:`AvailabilityModel` — each sampled client independently drops out
  of the round with a configurable probability (at least one always
  participates, as a round with zero uploads is undefined),
* :func:`median_average` / :func:`trimmed_mean_average` — coordinate-wise
  robust aggregators that bound the influence of corrupted updates,
* :class:`CorruptionModel` — fault injection: replaces a client's uploaded
  state with large Gaussian noise with probability ``rate``,
* :class:`RobustFedAvg` — FedAvg wired with all three, used by the
  failure-injection tests.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from .accounting.communication import dense_exchange
from .aggregation import fedavg_average
from .metrics import RoundRecord
from .registry import register_trainer
from .trainers.fedavg import FedAvg

State = Dict[str, np.ndarray]


class AvailabilityModel:
    """Independent per-round client dropout."""

    def __init__(self, dropout_prob: float, seed: int = 0) -> None:
        if not 0.0 <= dropout_prob < 1.0:
            raise ValueError(f"dropout_prob must be in [0, 1), got {dropout_prob}")
        self.dropout_prob = dropout_prob
        self._rng = np.random.default_rng(seed)

    def filter(self, sampled: Sequence[int]) -> List[int]:
        """Clients that actually show up this round (never empty)."""
        survivors = [
            index for index in sampled if self._rng.random() >= self.dropout_prob
        ]
        if not survivors:
            keep = self._rng.choice(len(sampled))
            survivors = [sampled[int(keep)]]
        return survivors


class StragglerModel:
    """System heterogeneity: per-client compute budgets (FedProx's setting).

    Each client is assigned a fixed local-epoch budget drawn uniformly from
    ``[min_epochs, max_epochs]``; stragglers complete fewer epochs per
    round.  FedProx's proximal term is motivated by exactly this partial
    work — the tests pair the two.
    """

    def __init__(
        self,
        num_clients: int,
        min_epochs: int = 1,
        max_epochs: int = 5,
        seed: int = 0,
    ) -> None:
        if not 1 <= min_epochs <= max_epochs:
            raise ValueError(
                f"need 1 <= min_epochs <= max_epochs, got {min_epochs}..{max_epochs}"
            )
        rng = np.random.default_rng(seed)
        self.budgets = rng.integers(min_epochs, max_epochs + 1, size=num_clients)

    def epochs_for(self, client_id: int) -> int:
        return int(self.budgets[client_id])


class CorruptionModel:
    """Byzantine-style fault injection on uploaded states."""

    def __init__(self, rate: float, scale: float = 10.0, seed: int = 0) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        self.rate = rate
        self.scale = scale
        self._rng = np.random.default_rng(seed)
        self.corrupted_rounds: List[int] = []

    def maybe_corrupt(self, state: State) -> State:
        if self._rng.random() >= self.rate:
            return state
        return {
            name: self._rng.normal(scale=self.scale, size=value.shape)
            for name, value in state.items()
        }


def median_average(states: Sequence[State]) -> State:
    """Coordinate-wise median — tolerates up to half the updates corrupted."""
    if not states:
        raise ValueError("no client states to aggregate")
    result: State = {}
    for key in states[0].keys():
        stacked = np.stack([state[key] for state in states])
        result[key] = np.median(stacked, axis=0)
    return result


def trimmed_mean_average(states: Sequence[State], trim_fraction: float = 0.1) -> State:
    """Coordinate-wise mean after trimming the extremes on both sides.

    ``trim_fraction`` of the values are removed at each end (rounded down);
    with fewer than three clients it degrades to the plain mean.
    """
    if not states:
        raise ValueError("no client states to aggregate")
    if not 0.0 <= trim_fraction < 0.5:
        raise ValueError(f"trim_fraction must be in [0, 0.5), got {trim_fraction}")
    count = len(states)
    trim = int(np.floor(trim_fraction * count))
    result: State = {}
    for key in states[0].keys():
        stacked = np.sort(np.stack([state[key] for state in states]), axis=0)
        if trim > 0 and count - 2 * trim >= 1:
            stacked = stacked[trim : count - trim]
        result[key] = stacked.mean(axis=0)
    return result


@register_trainer("robust-fedavg")
class RobustFedAvg(FedAvg):
    """FedAvg with dropout, fault injection and a robust aggregator.

    ``aggregation`` selects ``"mean"`` (plain FedAvg), ``"median"`` or
    ``"trimmed"``.  Weighted averaging is only meaningful for the plain
    mean; the robust rules are unweighted by construction.
    """

    algorithm_name = "robust-fedavg"
    # Own _round (robust aggregation rules, fault injection) that does not
    # consume the fleet plan — refuse non-synchronous round policies.
    supports_round_plan = False

    def __init__(
        self,
        *args,
        availability: Optional[AvailabilityModel] = None,
        corruption: Optional[CorruptionModel] = None,
        aggregation: str = "median",
        trim_fraction: float = 0.1,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        if aggregation not in ("mean", "median", "trimmed"):
            raise ValueError(
                f"aggregation must be mean/median/trimmed, got {aggregation!r}"
            )
        self.availability = availability
        self.corruption = corruption
        self.aggregation = aggregation
        self.trim_fraction = trim_fraction

    def _round(self, round_index: int, sampled: List[int]) -> RoundRecord:
        if self.availability is not None:
            sampled = self.availability.filter(sampled)

        updates = self.execute(self._train_tasks(sampled))
        # Fault injection happens server-side in sampled order so the
        # corruption RNG stream is backend-independent.
        states = []
        weights = []
        for update in updates:
            state = update.state
            if self.corruption is not None:
                state = self.corruption.maybe_corrupt(state)
            states.append(state)
            weights.append(update.num_examples)

        if self.aggregation == "mean":
            self.global_state = fedavg_average(
                states, weights if sum(weights) > 0 else None
            )
        elif self.aggregation == "median":
            self.global_state = median_average(states)
        else:
            self.global_state = trimmed_mean_average(states, self.trim_fraction)

        traffic = dense_exchange(self.total_params, len(sampled))
        return RoundRecord(
            round_index=round_index,
            sampled_clients=list(sampled),
            train_loss=float(np.mean([update.mean_loss for update in updates])),
            uploaded_bytes=traffic.uploaded_bytes,
            downloaded_bytes=traffic.downloaded_bytes,
        )
