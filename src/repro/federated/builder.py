"""Construction of a complete federation from a declarative config.

:class:`FederationConfig` is the single serializable description of one
experiment run: it round-trips through ``to_dict``/``from_dict`` and
``to_json``/``from_json``, so a run can be stored next to its results and
replayed bit-for-bit (``python -m repro run --config run.json``).

Every pluggable axis is registry-driven, so construction has no if/elif
chains anywhere:

* ``config.algorithm`` resolves through
  :mod:`~repro.federated.registry` (``@register_trainer``),
* ``config.dataset`` and ``config.data.partition`` resolve through
  :mod:`~repro.data.registry` (``@register_dataset`` /
  ``@register_partitioner``),
* ``config.scenario.sampler`` resolves through
  :mod:`~repro.federated.scenario` (``@register_sampler``).

The data scenario lives in the nested ``data``
(:class:`~repro.data.partition.DataConfig`) and ``scenario``
(:class:`~repro.federated.scenario.ScenarioConfig`) sections.  The
historical flat fields (``n_train``, ``partition``, ``dirichlet_alpha``,
…) are still accepted as constructor keywords and in ``from_dict``
payloads — they fold into the ``data`` section, so PR-3-era stored configs
keep loading and hash identically (:meth:`FederationConfig.stable_hash`).

The canonical high-level entry point is the
:class:`~repro.federated.federation.Federation` facade:

>>> from repro.federated import Federation, FederationConfig
>>> federation = Federation.from_config(FederationConfig(
...     dataset="cifar10", algorithm="sub-fedavg-un",
...     num_clients=10, rounds=5, seed=0,
... ))
>>> history = federation.run()  # doctest: +SKIP

``build_federation(**kwargs)`` is kept as a thin shim over the same path
for existing callers.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, fields, is_dataclass, replace
from typing import Any, Callable, Dict, List, Mapping

from ..data import DataConfig, build_client_data, load_dataset
from ..data.registry import get_dataset, get_partitioner
from ..engine import ComputeConfig
from ..models import create_model
from ..pruning import StructuredConfig, UnstructuredConfig
from ..systems import FleetSimulator, SystemsConfig, build_round_policy
from .accounting.flops import dense_conv_flops
from .client import FederatedClient, LocalTrainConfig
from .compression import CompressionConfig
from .execution import BACKENDS
from .pool import STATE_STORES, ClientPool, make_state_store
from .scenario import ScenarioConfig, build_sampler, get_sampler
from . import trainers as _trainers  # noqa: F401  (populates the registry)
from .registry import available_algorithms, get_trainer
from .trainers.base import FederatedTrainer

#: Nested config sections and the dataclass each deserializes into.
_SECTION_TYPES = {
    "local": LocalTrainConfig,
    "unstructured": UnstructuredConfig,
    "structured": StructuredConfig,
    "data": DataConfig,
    "scenario": ScenarioConfig,
    "systems": SystemsConfig,
    "compute": ComputeConfig,
    "compression": CompressionConfig,
}

#: ``scenario`` fields the PR-4 schema carried.  Newer fields (the fleet
#: shape, diurnal availability) join the canonical hash payload only when
#: they leave their defaults, so every PR-4-expressible scenario keeps its
#: historical ``stable_hash``.
_PR4_SCENARIO_FIELDS = (
    "sampler",
    "participation",
    "participation_spread",
    "dropout",
    "fixed_clients",
    "participation_probs",
    "profiles",
    "profile_participation",
)

#: ``systems`` fields the PR-5 schema carried.  Newer fields (the pricing
#: mode) join the canonical hash payload only when they leave their
#: defaults, so every PR-5-expressible systems section keeps its
#: historical ``stable_hash``.
_PR5_SYSTEMS_FIELDS = (
    "round_policy",
    "deadline_seconds",
    "buffer_size",
    "staleness_exponent",
    "server_overhead_seconds",
    "flops_per_example",
    "examples_per_round",
    "jitter",
)

#: Pre-scenario flat field names: the exact ``data`` fields the PR-3 flat
#: schema carried at the top level.  They anchor the canonical hash layout
#: (see :meth:`FederationConfig._canonical_dict`).
_LEGACY_DATA_FIELDS = (
    "shards_per_client",
    "n_train",
    "n_test",
    "val_fraction",
    "partition",
    "dirichlet_alpha",
)

#: ``data`` fields the PR-3 flat schema could not express; they join the
#: canonical hash payload only when they leave their defaults.
_POST_LEGACY_DATA_FIELDS = tuple(
    name for name in DataConfig.field_names() if name not in _LEGACY_DATA_FIELDS
)

#: Every ``data`` field is also accepted as a flat constructor keyword /
#: ``from_dict`` key and readable as a flat attribute — the historical
#: spelling, kept working by :func:`_install_legacy_aliases`.
_FLAT_DATA_FIELDS = DataConfig.field_names()


def _jsonify(value: Any) -> Any:
    """Normalize to what a JSON round-trip would produce (tuples → lists)."""
    if isinstance(value, tuple):
        return [_jsonify(item) for item in value]
    if isinstance(value, dict):
        return {key: _jsonify(item) for key, item in value.items()}
    return value


@dataclass(frozen=True)
class FederationConfig:
    """Everything needed to set up one experiment run.

    The nested sections are plain frozen dataclasses, so the whole config
    serializes losslessly: ``FederationConfig.from_json(cfg.to_json())``
    compares equal to ``cfg`` and reproduces the identical run.  The
    trailing init-only keywords (``n_train``, ``partition``, …) are the
    historical flat spellings of the ``data`` section and fold into it.
    """

    dataset: str = "cifar10"
    algorithm: str = "sub-fedavg-un"
    num_clients: int = 100
    rounds: int = 100
    sample_fraction: float = 0.1
    seed: int = 0
    eval_every: int = 0
    backend: str = "serial"  # client-execution backend: serial/thread/process
    workers: int = 0  # worker count for parallel backends (0 = cpu count)
    client_cache: int = 64  # max live FederatedClient replicas (0 = unbounded)
    state_store: str = "memory"  # evicted-client state: "memory" | "file"
    data: DataConfig = field(default_factory=DataConfig)
    scenario: ScenarioConfig = field(default_factory=ScenarioConfig)
    systems: SystemsConfig | None = None  # fleet simulation (None = disabled)
    compute: ComputeConfig = field(default_factory=ComputeConfig)
    local: LocalTrainConfig = field(default_factory=LocalTrainConfig)
    unstructured: UnstructuredConfig | None = None
    structured: StructuredConfig | None = None
    compression: CompressionConfig | None = None  # update codec (None = dense)

    def __post_init__(self) -> None:
        # Accept plain mappings for the nested sections (JSON ergonomics).
        for section, section_cls in _SECTION_TYPES.items():
            value = getattr(self, section)
            if isinstance(value, Mapping):
                object.__setattr__(self, section, section_cls(**value))
        get_dataset(self.dataset)  # raises KeyError for unknown datasets
        get_partitioner(self.data.partition)  # raises KeyError if unknown
        get_sampler(self.scenario.sampler)  # raises KeyError if unknown
        if self.backend not in BACKENDS:
            raise KeyError(
                f"unknown execution backend {self.backend!r}; "
                f"choose from {sorted(BACKENDS)}"
            )
        if self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {self.workers}")
        if self.client_cache < 0:
            raise ValueError(
                f"client_cache must be >= 0, got {self.client_cache}"
            )
        if self.state_store not in STATE_STORES:
            raise ValueError(
                f"unknown state store {self.state_store!r}; "
                f"choose from {STATE_STORES}"
            )
        get_trainer(self.algorithm)  # raises KeyError for unknown algorithms

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict; nested sections become plain dicts (or None)."""
        payload: Dict[str, Any] = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            payload[spec.name] = _jsonify(asdict(value)) if is_dataclass(value) else value
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FederationConfig":
        """Inverse of :meth:`to_dict`; unknown keys raise ``KeyError``.

        Also accepts the historical flat schema (``n_train``,
        ``partition``, … at the top level, no ``data``/``scenario``
        sections), so stored PR-3-era payloads keep loading unchanged.
        """
        data = dict(payload)
        known = {spec.name for spec in fields(cls)} | set(_FLAT_DATA_FIELDS)
        unknown = set(data) - known
        if unknown:
            raise KeyError(f"unknown FederationConfig fields: {sorted(unknown)}")
        for section, section_cls in _SECTION_TYPES.items():
            value = data.get(section)
            if isinstance(value, Mapping):
                data[section] = section_cls(**value)
        return cls(**data)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "FederationConfig":
        return cls.from_dict(json.loads(text))

    def _canonical_dict(self) -> Dict[str, Any]:
        """Hash payload: the historical flat layout, extended only as needed.

        Emitting the PR-3 flat schema — with the post-legacy ``data``
        fields and the ``scenario`` section appearing only when they leave
        their defaults — keeps :meth:`stable_hash` identical for every
        config the old schema could express, so existing result stores
        resume instead of recomputing.
        """
        payload: Dict[str, Any] = {
            "dataset": self.dataset,
            "algorithm": self.algorithm,
            "num_clients": self.num_clients,
            "rounds": self.rounds,
            "sample_fraction": self.sample_fraction,
            "shards_per_client": self.data.shards_per_client,
            "n_train": self.data.n_train,
            "n_test": self.data.n_test,
            "val_fraction": self.data.val_fraction,
            "seed": self.seed,
            "eval_every": self.eval_every,
            "partition": self.data.partition,
            "dirichlet_alpha": self.data.dirichlet_alpha,
            "backend": self.backend,
            "workers": self.workers,
            "local": asdict(self.local),
            "unstructured": None if self.unstructured is None else asdict(self.unstructured),
            "structured": None if self.structured is None else asdict(self.structured),
        }
        # The virtual-client pool changes resource usage, never results:
        # its knobs join the hash only when they leave their defaults, so
        # every pre-pool config keeps its stable_hash.
        for name, default in (("client_cache", 64), ("state_store", "memory")):
            if getattr(self, name) != default:
                payload[name] = getattr(self, name)
        defaults = DataConfig()
        data_extra = {
            name: getattr(self.data, name)
            for name in _POST_LEGACY_DATA_FIELDS
            if getattr(self.data, name) != getattr(defaults, name)
        }
        if data_extra:
            payload["data"] = data_extra
        if self.scenario != ScenarioConfig():
            # Same only-when-non-default rule one schema generation later:
            # post-PR-4 scenario fields (fleet shape, diurnal knobs) join
            # the payload only when set, so PR-4-expressible scenarios
            # keep their historical hash.
            scenario_defaults = ScenarioConfig()
            payload["scenario"] = {
                name: getattr(self.scenario, name)
                for name in ScenarioConfig.__dataclass_fields__
                if name in _PR4_SCENARIO_FIELDS
                or getattr(self.scenario, name) != getattr(scenario_defaults, name)
            }
        if self.systems is not None:
            # Same only-when-non-default rule as the scenario section:
            # post-PR-5 systems fields (the pricing mode) join the payload
            # only when set, so PR-5-expressible systems sections keep
            # their historical hash.
            systems_defaults = SystemsConfig()
            payload["systems"] = {
                name: getattr(self.systems, name)
                for name in SystemsConfig.__dataclass_fields__
                if name in _PR5_SYSTEMS_FIELDS
                or getattr(self.systems, name)
                != getattr(systems_defaults, name)
            }
        if self.compute != ComputeConfig():
            # The compute engine choice joins the hash only when it leaves
            # the historical eager default, so every pre-compute-section
            # config keeps its stable_hash and stored results still resume.
            payload["compute"] = asdict(self.compute)
        if self.compression is not None:
            # Hash-gated like systems: absent ⇒ stable_hash unchanged, so
            # every pre-codec config keeps its historical hash.
            payload["compression"] = asdict(self.compression)
        return payload

    def stable_hash(self, extra: Mapping[str, Any] | None = None) -> str:
        """Content hash of this config (plus optional ``extra`` payload).

        The hash is computed over canonical JSON — keys sorted at every
        nesting level — so it is invariant to dict ordering and identical
        across processes and Python versions (unlike built-in ``hash``).
        Two configs hash equal iff they describe the same run, which is
        what the sweep result store keys cells by.  Configs expressible in
        the pre-scenario flat schema keep their historical hash (see
        :meth:`_canonical_dict`).
        """
        payload: Dict[str, Any] = {"config": self._canonical_dict()}
        if extra:
            payload["extra"] = dict(extra)
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def _install_legacy_aliases() -> None:
    """Make the historical flat fields keep working on the nested schema.

    Constructor keywords (``FederationConfig(n_train=120,
    partition="dirichlet")``) fold into the ``data`` section, and attribute
    reads (``config.n_train``) proxy to it.  The aliases are *not* dataclass
    fields, so ``dataclasses.replace``, ``fields()`` and ``to_dict`` see
    only the nested form — in particular ``replace(config, data=...)``
    cannot resurrect stale flat values.
    """
    dataclass_init = FederationConfig.__init__

    def compat_init(self, *args, **kwargs) -> None:
        legacy = {
            name: kwargs.pop(name)
            for name in _FLAT_DATA_FIELDS
            if kwargs.get(name) is not None
        }
        for name in _FLAT_DATA_FIELDS:
            kwargs.pop(name, None)  # tolerate explicit None placeholders
        dataclass_init(self, *args, **kwargs)
        if legacy:
            object.__setattr__(self, "data", replace(self.data, **legacy))
            get_partitioner(self.data.partition)  # re-check the folded name

    compat_init.__wrapped__ = dataclass_init
    FederationConfig.__init__ = compat_init

    def data_proxy(name: str) -> property:
        def getter(self: FederationConfig):
            return getattr(self.data, name)

        getter.__doc__ = f"Alias for ``self.data.{name}`` (legacy flat field)."
        return property(getter)

    for name in _FLAT_DATA_FIELDS:
        setattr(FederationConfig, name, data_proxy(name))


_install_legacy_aliases()


def make_clients(config: FederationConfig) -> ClientPool:
    """Build the client population for ``config`` as a lazy pool.

    The dataset loader and partition strategy both resolve through the
    :mod:`~repro.data.registry` registries.  The returned
    :class:`~repro.federated.pool.ClientPool` is a drop-in
    ``Sequence[FederatedClient]``: a client materializes (identically to
    the historical eager construction) the first time it is indexed, and
    ``config.client_cache`` bounds how many stay live at once.
    """
    train_set, test_set = load_dataset(
        config.dataset, config.data.n_train, config.data.n_test, seed=config.seed
    )
    bundles = build_client_data(
        train_set,
        test_set,
        num_clients=config.num_clients,
        config=config.data,
        seed=config.seed,
    )
    local = config.local
    for name, default in get_trainer(config.algorithm).local_defaults.items():
        if getattr(local, name) <= 0:
            local = replace(local, **{name: default})
    return ClientPool(
        bundles,
        model_factory(config),
        local,
        seed=config.seed,
        capacity=config.client_cache,
        store=make_state_store(config.state_store),
    )


@dataclass(frozen=True)
class ModelFactory:
    """Picklable zero-arg model constructor (shared theta_0 across clients).

    A named class rather than a closure so spawn-start worker pools can
    ship it: the process backend pickles clients (which hold their
    factory) when the platform has no ``fork``.
    """

    dataset: str
    seed: int

    def __call__(self):
        return create_model(self.dataset, seed=self.seed)


def model_factory(config: FederationConfig) -> ModelFactory:
    """Factory producing identically initialized models (shared theta_0)."""
    return ModelFactory(config.dataset, config.seed)


#: Fallback FLOPs-per-example when the model has no convolutions to count
#: (the paper's §4.2.3 convention prices convs only, so a pure-MLP model
#: derives to zero, which cannot price compute time).
_DEFAULT_FLOPS_PER_EXAMPLE = 1e6


def build_fleet_simulator(
    config: FederationConfig, num_clients: int
) -> FleetSimulator:
    """The discrete-event engine described by a config's ``systems`` section.

    The fleet comes from the ``scenario`` section's fleet registry entry;
    pricing defaults derive from the run itself: ``flops_per_example``
    from the model's conv FLOPs (the :mod:`~repro.federated.accounting`
    §4.2.3 convention) and ``examples_per_round`` from the local epoch
    budget times the per-client shard size.
    """
    systems = config.systems if config.systems is not None else SystemsConfig()
    flops = systems.flops_per_example
    if flops <= 0:
        spec = get_dataset(config.dataset).spec
        model = create_model(config.dataset, seed=config.seed)
        flops = float(dense_conv_flops(model, input_size=spec.shape[-1]))
        if flops <= 0:
            flops = _DEFAULT_FLOPS_PER_EXAMPLE
    examples = systems.examples_per_round
    if examples <= 0:
        epochs = max(1, config.local.epochs)
        examples = float(epochs * max(1, config.data.n_train // config.num_clients))
    return FleetSimulator(
        fleet=config.scenario.build_fleet(num_clients),
        policy=build_round_policy(systems),
        flops_per_example=flops,
        examples_per_round=examples,
        server_overhead_seconds=systems.server_overhead_seconds,
        jitter=systems.jitter,
        seed=config.seed,
        pricing=systems.pricing,
    )


def build_trainer(
    config: FederationConfig, clients: List[FederatedClient], **overrides
) -> FederatedTrainer:
    """Wire the configured algorithm's trainer over prepared clients.

    The trainer class and the config sections it consumes come from the
    registry; the participation model comes from the scenario registry;
    a ``systems`` section additionally attaches a
    :class:`~repro.systems.rounds.FleetSimulator` (sharing its clock with
    time-aware samplers such as ``diurnal``); ``overrides`` are extra
    keyword arguments forwarded verbatim to the trainer constructor
    (e.g. ``aggregator=`` for ablations or ``track_trajectory=`` for
    Figure 1).
    """
    spec = get_trainer(config.algorithm)
    sampler = build_sampler(
        config.scenario, len(clients), config.sample_fraction, config.seed
    )
    fleet_sim = None
    if config.systems is not None:
        if (
            config.systems.round_policy != "synchronous"
            and not spec.cls.supports_round_plan
        ):
            # A non-sync policy changes training (dropped/stale uploads);
            # a trainer that ignores the plan would report stragglers the
            # aggregation silently kept at full weight.  Synchronous
            # simulation is purely observational, so it stays allowed.
            raise ValueError(
                f"algorithm {config.algorithm!r} does not consume the fleet "
                f"round plan, so round_policy="
                f"{config.systems.round_policy!r} would be misreported; "
                "use round_policy='synchronous' or a FedAvg/Sub-FedAvg-"
                "family trainer"
            )
        fleet_sim = build_fleet_simulator(config, len(clients))
        if hasattr(sampler, "attach_clock"):
            sampler.attach_clock(fleet_sim.clock)
    kwargs: Dict[str, Any] = dict(
        clients=clients,
        model_fn=model_factory(config),
        rounds=config.rounds,
        sample_fraction=config.sample_fraction,
        seed=config.seed,
        eval_every=config.eval_every,
        backend=config.backend,
        workers=config.workers,
        sampler=sampler,
        fleet_sim=fleet_sim,
    )
    for section in spec.config_sections:
        value = getattr(config, section)
        if value is not None:
            kwargs[section] = value
    kwargs.update(overrides)
    return spec.cls(**kwargs)


def build_federation(**kwargs) -> FederatedTrainer:
    """Deprecated shim: ``FederationConfig(**kwargs)`` → clients → trainer.

    Prefer ``Federation.from_config(FederationConfig(...))``, which keeps
    the config attached to the run.
    """
    config = FederationConfig(**kwargs)
    return build_trainer(config, make_clients(config))


def __getattr__(name: str):
    # ALGORITHMS is a live view of the registry (modules registering after
    # this one imports — compression, robustness, plugins — still appear).
    if name == "ALGORITHMS":
        return available_algorithms()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
