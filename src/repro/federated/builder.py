"""Construction of a complete federation from a declarative config.

:class:`FederationConfig` is the single serializable description of one
experiment run: it round-trips through ``to_dict``/``from_dict`` and
``to_json``/``from_json``, so a run can be stored next to its results and
replayed bit-for-bit (``python -m repro run --config run.json``).

Trainer dispatch is registry-driven: :func:`build_trainer` resolves
``config.algorithm`` through :mod:`~repro.federated.registry`, forwards the
config sections the trainer declared (``unstructured``/``structured``) and
applies its declared ``LocalTrainConfig`` defaults — no if/elif chain, so
a new algorithm only needs a ``@register_trainer`` decorator.

The canonical high-level entry point is the
:class:`~repro.federated.federation.Federation` facade:

>>> from repro.federated import Federation, FederationConfig
>>> federation = Federation.from_config(FederationConfig(
...     dataset="cifar10", algorithm="sub-fedavg-un",
...     num_clients=10, rounds=5, seed=0,
... ))
>>> history = federation.run()  # doctest: +SKIP

``build_federation(**kwargs)`` is kept as a thin shim over the same path
for existing callers.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, fields, is_dataclass, replace
from typing import Any, Callable, Dict, List, Mapping

from ..data import build_client_data, load_dataset
from ..data.synthetic import SPECS
from ..models import create_model
from ..models.base import ConvNet
from ..pruning import StructuredConfig, UnstructuredConfig
from .client import FederatedClient, LocalTrainConfig
from .execution import BACKENDS
from . import trainers as _trainers  # noqa: F401  (populates the registry)
from .registry import available_algorithms, get_trainer
from .trainers.base import FederatedTrainer

#: Nested config sections and the dataclass each deserializes into.
_SECTION_TYPES = {
    "local": LocalTrainConfig,
    "unstructured": UnstructuredConfig,
    "structured": StructuredConfig,
}


@dataclass(frozen=True)
class FederationConfig:
    """Everything needed to set up one experiment run.

    The nested sections are plain frozen dataclasses, so the whole config
    serializes losslessly: ``FederationConfig.from_json(cfg.to_json())``
    compares equal to ``cfg`` and reproduces the identical run.
    """

    dataset: str = "cifar10"
    algorithm: str = "sub-fedavg-un"
    num_clients: int = 100
    rounds: int = 100
    sample_fraction: float = 0.1
    shards_per_client: int = 2
    n_train: int = 2000
    n_test: int = 500
    val_fraction: float = 0.1
    seed: int = 0
    eval_every: int = 0
    partition: str = "shard"
    dirichlet_alpha: float = 0.5
    backend: str = "serial"  # client-execution backend: serial/thread/process
    workers: int = 0  # worker count for parallel backends (0 = cpu count)
    local: LocalTrainConfig = field(default_factory=LocalTrainConfig)
    unstructured: UnstructuredConfig | None = None
    structured: StructuredConfig | None = None

    def __post_init__(self) -> None:
        if self.dataset not in SPECS:
            raise KeyError(f"unknown dataset {self.dataset!r}")
        if self.backend not in BACKENDS:
            raise KeyError(
                f"unknown execution backend {self.backend!r}; "
                f"choose from {sorted(BACKENDS)}"
            )
        if self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {self.workers}")
        get_trainer(self.algorithm)  # raises KeyError for unknown algorithms

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict; nested sections become plain dicts (or None)."""
        payload: Dict[str, Any] = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            payload[spec.name] = asdict(value) if is_dataclass(value) else value
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FederationConfig":
        """Inverse of :meth:`to_dict`; unknown keys raise ``KeyError``."""
        data = dict(payload)
        unknown = set(data) - {spec.name for spec in fields(cls)}
        if unknown:
            raise KeyError(f"unknown FederationConfig fields: {sorted(unknown)}")
        for section, section_cls in _SECTION_TYPES.items():
            value = data.get(section)
            if isinstance(value, Mapping):
                data[section] = section_cls(**value)
        return cls(**data)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "FederationConfig":
        return cls.from_dict(json.loads(text))

    def stable_hash(self, extra: Mapping[str, Any] | None = None) -> str:
        """Content hash of this config (plus optional ``extra`` payload).

        The hash is computed over canonical JSON — keys sorted at every
        nesting level — so it is invariant to dict ordering and identical
        across processes and Python versions (unlike built-in ``hash``).
        Two configs hash equal iff they describe the same run, which is
        what the sweep result store keys cells by.
        """
        payload: Dict[str, Any] = {"config": self.to_dict()}
        if extra:
            payload["extra"] = dict(extra)
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def make_clients(config: FederationConfig) -> List[FederatedClient]:
    """Build the client population for ``config`` (data + model replicas)."""
    train_set, test_set = load_dataset(
        config.dataset, config.n_train, config.n_test, seed=config.seed
    )
    bundles = build_client_data(
        train_set,
        test_set,
        num_clients=config.num_clients,
        shards_per_client=config.shards_per_client,
        val_fraction=config.val_fraction,
        seed=config.seed,
        partition=config.partition,
        dirichlet_alpha=config.dirichlet_alpha,
    )
    local = config.local
    for name, default in get_trainer(config.algorithm).local_defaults.items():
        if getattr(local, name) <= 0:
            local = replace(local, **{name: default})
    model_fn = model_factory(config)
    return [
        FederatedClient(bundle, model_fn, local, seed=config.seed)
        for bundle in bundles
    ]


def model_factory(config: FederationConfig) -> Callable[[], ConvNet]:
    """Factory producing identically initialized models (shared theta_0)."""
    dataset, seed = config.dataset, config.seed
    return lambda: create_model(dataset, seed=seed)


def build_trainer(
    config: FederationConfig, clients: List[FederatedClient], **overrides
) -> FederatedTrainer:
    """Wire the configured algorithm's trainer over prepared clients.

    The trainer class and the config sections it consumes come from the
    registry; ``overrides`` are extra keyword arguments forwarded verbatim
    to the trainer constructor (e.g. ``aggregator=`` for ablations or
    ``track_trajectory=`` for Figure 1).
    """
    spec = get_trainer(config.algorithm)
    kwargs: Dict[str, Any] = dict(
        clients=clients,
        model_fn=model_factory(config),
        rounds=config.rounds,
        sample_fraction=config.sample_fraction,
        seed=config.seed,
        eval_every=config.eval_every,
        backend=config.backend,
        workers=config.workers,
    )
    for section in spec.config_sections:
        value = getattr(config, section)
        if value is not None:
            kwargs[section] = value
    kwargs.update(overrides)
    return spec.cls(**kwargs)


def build_federation(**kwargs) -> FederatedTrainer:
    """Deprecated shim: ``FederationConfig(**kwargs)`` → clients → trainer.

    Prefer ``Federation.from_config(FederationConfig(...))``, which keeps
    the config attached to the run.
    """
    config = FederationConfig(**kwargs)
    return build_trainer(config, make_clients(config))


def __getattr__(name: str):
    # ALGORITHMS is a live view of the registry (modules registering after
    # this one imports — compression, robustness, plugins — still appear).
    if name == "ALGORITHMS":
        return available_algorithms()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
