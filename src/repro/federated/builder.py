"""One-call construction of a complete federation.

This is the library's main entry point: pick a dataset family, an
algorithm and a scale, get back a ready-to-run trainer.

Example
-------
>>> from repro.federated import build_federation
>>> trainer = build_federation(
...     dataset="cifar10", algorithm="sub-fedavg-un",
...     num_clients=10, rounds=5, seed=0,
... )
>>> history = trainer.run()
>>> history.final_accuracy  # doctest: +SKIP
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, List, Optional

from ..data import build_client_data, load_dataset
from ..data.synthetic import SPECS
from ..models import create_model
from ..models.base import ConvNet
from ..pruning import StructuredConfig, UnstructuredConfig
from .client import FederatedClient, LocalTrainConfig
from .trainers.base import FederatedTrainer
from .trainers.fedavg import FedAvg, FedProx
from .trainers.lgfedavg import LGFedAvg
from .trainers.mtl import FedMTL
from .trainers.standalone import Standalone
from .trainers.subfedavg import SubFedAvgHy, SubFedAvgUn

ALGORITHMS = (
    "standalone",
    "fedavg",
    "fedprox",
    "lg-fedavg",
    "mtl",
    "sub-fedavg-un",
    "sub-fedavg-hy",
)


@dataclass(frozen=True)
class FederationConfig:
    """Everything needed to set up one experiment run."""

    dataset: str = "cifar10"
    algorithm: str = "sub-fedavg-un"
    num_clients: int = 100
    rounds: int = 100
    sample_fraction: float = 0.1
    shards_per_client: int = 2
    n_train: int = 2000
    n_test: int = 500
    val_fraction: float = 0.1
    seed: int = 0
    eval_every: int = 0
    partition: str = "shard"
    dirichlet_alpha: float = 0.5
    local: LocalTrainConfig = LocalTrainConfig()
    unstructured: Optional[UnstructuredConfig] = None
    structured: Optional[StructuredConfig] = None

    def __post_init__(self) -> None:
        if self.dataset not in SPECS:
            raise KeyError(f"unknown dataset {self.dataset!r}")
        if self.algorithm not in ALGORITHMS:
            raise KeyError(
                f"unknown algorithm {self.algorithm!r}; choose from {ALGORITHMS}"
            )


def make_clients(config: FederationConfig) -> List[FederatedClient]:
    """Build the client population for ``config`` (data + model replicas)."""
    train_set, test_set = load_dataset(
        config.dataset, config.n_train, config.n_test, seed=config.seed
    )
    bundles = build_client_data(
        train_set,
        test_set,
        num_clients=config.num_clients,
        shards_per_client=config.shards_per_client,
        val_fraction=config.val_fraction,
        seed=config.seed,
        partition=config.partition,
        dirichlet_alpha=config.dirichlet_alpha,
    )
    local = config.local
    if config.algorithm == "fedprox" and local.prox_mu <= 0:
        local = replace(local, prox_mu=0.01)
    if config.algorithm == "mtl" and local.mtl_lambda <= 0:
        local = replace(local, mtl_lambda=0.1)
    model_fn = model_factory(config)
    return [
        FederatedClient(bundle, model_fn, local, seed=config.seed)
        for bundle in bundles
    ]


def model_factory(config: FederationConfig) -> Callable[[], ConvNet]:
    """Factory producing identically initialized models (shared theta_0)."""
    dataset, seed = config.dataset, config.seed
    return lambda: create_model(dataset, seed=seed)


def build_trainer(
    config: FederationConfig, clients: List[FederatedClient]
) -> FederatedTrainer:
    """Wire the configured algorithm's trainer over prepared clients."""
    model_fn = model_factory(config)
    common = dict(
        clients=clients,
        model_fn=model_fn,
        rounds=config.rounds,
        sample_fraction=config.sample_fraction,
        seed=config.seed,
        eval_every=config.eval_every,
    )
    if config.algorithm == "standalone":
        return Standalone(**common)
    if config.algorithm == "fedavg":
        return FedAvg(**common)
    if config.algorithm == "fedprox":
        return FedProx(**common)
    if config.algorithm == "lg-fedavg":
        return LGFedAvg(**common)
    if config.algorithm == "mtl":
        return FedMTL(**common)
    if config.algorithm == "sub-fedavg-un":
        return SubFedAvgUn(
            unstructured=config.unstructured or UnstructuredConfig(), **common
        )
    if config.algorithm == "sub-fedavg-hy":
        return SubFedAvgHy(
            unstructured=config.unstructured or UnstructuredConfig(),
            structured=config.structured or StructuredConfig(),
            **common,
        )
    raise KeyError(f"unknown algorithm {config.algorithm!r}")


def build_federation(**kwargs) -> FederatedTrainer:
    """Convenience: ``FederationConfig(**kwargs)`` → clients → trainer."""
    config = FederationConfig(**kwargs)
    clients = make_clients(config)
    return build_trainer(config, clients)
