"""Sub-FedAvg trainers: Algorithm 1 (unstructured) and Algorithm 2 (hybrid).

Per round:

1. the server samples clients; each downloads the global weights and
   re-applies its committed personal mask (its subnetwork of the global),
2. each client trains locally; at the end of the first and last epoch it
   derives candidate masks and, gated by validation accuracy / target rate /
   mask distance, commits deeper pruning (``ClientUpdate`` in the paper),
3. the server aggregates with the intersection average (Sub-FedAvg),
4. traffic is metered as 32-bit floats for kept coordinates plus 1-bit mask
   entries (§4.2.2's B convention).

Step 2 is a batch of :class:`~repro.federated.execution.ClientTask` objects
run on the trainer's execution backend; updates are reduced in sampled
order, so serial and parallel rounds commit the same masks and produce the
same aggregate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ...models.base import ConvNet
from ...pruning import (
    PruningController,
    StructuredConfig,
    UnstructuredConfig,
)
from ..accounting.communication import sparse_exchange
from ..aggregation import intersection_average, zero_fill_average
from ..client import FederatedClient
from ..execution import ClientTask
from ..metrics import RoundRecord
from ..registry import register_trainer
from .base import FederatedTrainer


@dataclass(frozen=True)
class TrajectoryPoint:
    """One client's state right after a local update (Figure 1's raw data)."""

    round_index: int
    client_id: int
    sparsity: float
    channel_sparsity: float
    test_accuracy: float


class SubFedAvgTrainer(FederatedTrainer):
    """Shared machinery of the Un and Hy variants.

    With ``track_trajectory=True`` every participating client logs a
    :class:`TrajectoryPoint` after its local update — the (pruning %, test
    accuracy) trajectory the paper's Figure 1 plots per client.  Points are
    recorded in sampled order whatever the execution backend.
    """

    algorithm_name = "sub-fedavg"
    supports_round_plan = True

    def __init__(
        self,
        clients: List[FederatedClient],
        model_fn: Callable[[], ConvNet],
        rounds: int,
        unstructured: Optional[UnstructuredConfig],
        structured: Optional[StructuredConfig],
        sample_fraction: float = 0.1,
        seed: int = 0,
        eval_every: int = 0,
        aggregator: str = "intersection",
        track_trajectory: bool = False,
        **backend_kwargs,
    ) -> None:
        super().__init__(
            clients,
            model_fn,
            rounds,
            sample_fraction=sample_fraction,
            seed=seed,
            eval_every=eval_every,
            **backend_kwargs,
        )
        if aggregator not in ("intersection", "zerofill"):
            raise ValueError(
                f"aggregator must be 'intersection' or 'zerofill', got {aggregator!r}"
            )
        self.unstructured = unstructured
        self.structured = structured
        self.aggregator = aggregator
        self.track_trajectory = track_trajectory
        self.trajectory: List[TrajectoryPoint] = []
        # Upload-time (state, mask) snapshots of async in-flight updates,
        # consumed when the carried delivery finally arrives.
        self._held_states: Dict[int, Tuple[dict, object]] = {}

        def _attach(client: FederatedClient) -> None:
            client.attach_controller(
                PruningController(
                    client.model, unstructured=unstructured, structured=structured
                )
            )

        if hasattr(clients, "add_setup_hook"):
            # A ClientPool attaches the controller at materialization, so a
            # million-client fleet never instantiates a million controllers.
            clients.add_setup_hook(_attach)
        else:
            for client in clients:
                _attach(client)

    # ------------------------------------------------------------------
    def _round(self, round_index: int, sampled: List[int]) -> RoundRecord:
        started = self.round_participants(sampled)
        # Downlink size depends on the mask committed *before* this round's
        # local update, so meter it while building the task list.
        kept_down = [
            self._kept_params(self.clients[index].mask) for index in started
        ]
        updates = self.execute(
            [
                ClientTask(
                    client_index=index,
                    kind="train",
                    load="global",
                    want_trajectory=self.track_trajectory,
                )
                for index in started
            ]
        )

        uploaded = 0.0
        downloaded = 0.0
        client_up: dict = {}
        client_down: dict = {}
        for update, down in zip(updates, kept_down):
            traffic = sparse_exchange(
                kept_params=self._kept_params(update.mask),
                total_mask_bits=update.mask.total(),
                num_params_down=down,
            )
            uploaded += traffic.uploaded_bytes
            downloaded += traffic.downloaded_bytes
            client_up[update.client_id] = traffic.uploaded_bytes
            client_down[update.client_id] = traffic.downloaded_bytes
        if self.track_trajectory:
            for update in updates:
                self.trajectory.append(
                    TrajectoryPoint(
                        round_index=round_index,
                        client_id=update.client_id,
                        sparsity=update.sparsity,
                        channel_sparsity=update.channel_sparsity,
                        test_accuracy=update.accuracy,
                    )
                )

        states, masks = self._delivered_states(updates)
        if states:
            if self.aggregator == "intersection":
                self.global_state = intersection_average(
                    states, masks, self.global_state
                )
            else:
                self.global_state = zero_fill_average(
                    states, masks, self.global_state
                )

        sparsities = [c.controller.unstructured_sparsity() for c in self.clients]
        channel_sparsities = [c.controller.channel_sparsity() for c in self.clients]
        return RoundRecord(
            round_index=round_index,
            sampled_clients=sampled,
            train_loss=float(np.mean([update.mean_loss for update in updates])),
            sampled_accuracy=self.evaluate_sampled(started),
            mean_sparsity=float(np.mean(sparsities)),
            mean_channel_sparsity=float(np.mean(channel_sparsities)),
            uploaded_bytes=uploaded,
            downloaded_bytes=downloaded,
            client_uploaded_bytes=client_up,
            client_downloaded_bytes=client_down,
        )

    def _delivered_states(self, updates):
        """(states, masks) the server aggregates, honoring the round plan.

        Without a fleet simulator every update is delivered (legacy
        behavior).  Under a plan, deadline stragglers are dropped (their
        upload missed the close — the zero-fill aggregator's zero-weight
        path) and carried async arrivals replay the (state, mask) snapshot
        taken at upload time, so nothing that mutates the client in the
        meantime (restarts, pool evictions, evaluation) changes what the
        server aggregates.
        """
        plan = self.round_plan
        if plan is None:
            return [u.state for u in updates], [u.mask for u in updates]
        by_id = {update.client_id: update for update in updates}
        states, masks = [], []
        for delivery in plan.deliveries:
            update = by_id.get(delivery.client_id)
            if update is not None:
                states.append(update.state)
                masks.append(update.mask)
            else:
                held = self._held_states.pop(delivery.client_id, None)
                if held is not None:
                    state, mask = held
                else:
                    # No held snapshot (e.g. a plan replayed post hoc):
                    # fall back to the client's current state.
                    client = self.clients[delivery.client_id]
                    state, mask = client.state_dict(), client.mask
                states.append(state)
                masks.append(mask)
        delivered = plan.delivered_ids
        for update in updates:
            if update.client_id in delivered:
                self._held_states.pop(update.client_id, None)
            else:
                self._held_states[update.client_id] = (update.state, update.mask)
        return states, masks

    def _kept_params(self, mask) -> int:
        """Parameters a client exchanges: kept masked coords + uncovered tensors."""
        if mask is None or len(mask) == 0:
            return self.total_params
        covered = mask.total()
        return self.total_params - covered + mask.kept()

    def _estimated_traffic(self, sampled: List[int]) -> dict:
        """Pre-round byte estimates from each client's *committed* mask.

        This is what makes the fleet plan price Sub-FedAvg per client: a
        heavily pruned client's exchange is genuinely smaller than a
        fresh one's.  The post-round record re-prices with the masks
        actually committed during local work.
        """
        estimates = {}
        for index in sampled:
            mask = self.clients[index].mask
            kept = self._kept_params(mask)
            mask_bits = 0 if mask is None or len(mask) == 0 else mask.total()
            traffic = sparse_exchange(
                kept_params=kept, total_mask_bits=mask_bits, num_params_down=kept
            )
            estimates[index] = (traffic.uploaded_bytes, traffic.downloaded_bytes)
        return estimates

    # ------------------------------------------------------------------
    def mean_unstructured_sparsity(self) -> float:
        return float(
            np.mean([c.controller.unstructured_sparsity() for c in self.clients])
        )

    def mean_channel_sparsity(self) -> float:
        return float(
            np.mean([c.controller.channel_sparsity() for c in self.clients])
        )


@register_trainer("sub-fedavg-un", config_sections=("unstructured",))
class SubFedAvgUn(SubFedAvgTrainer):
    """Algorithm 1: Sub-FedAvg with unstructured pruning only."""

    algorithm_name = "sub-fedavg-un"

    def __init__(
        self,
        clients: List[FederatedClient],
        model_fn: Callable[[], ConvNet],
        rounds: int,
        unstructured: Optional[UnstructuredConfig] = None,
        sample_fraction: float = 0.1,
        seed: int = 0,
        eval_every: int = 0,
        aggregator: str = "intersection",
        track_trajectory: bool = False,
        **backend_kwargs,
    ) -> None:
        super().__init__(
            clients,
            model_fn,
            rounds,
            unstructured=unstructured or UnstructuredConfig(),
            structured=None,
            sample_fraction=sample_fraction,
            seed=seed,
            eval_every=eval_every,
            aggregator=aggregator,
            track_trajectory=track_trajectory,
            **backend_kwargs,
        )


@register_trainer("sub-fedavg-hy", config_sections=("unstructured", "structured"))
class SubFedAvgHy(SubFedAvgTrainer):
    """Algorithm 2: hybrid — structured on convs, unstructured on FC layers."""

    algorithm_name = "sub-fedavg-hy"

    def __init__(
        self,
        clients: List[FederatedClient],
        model_fn: Callable[[], ConvNet],
        rounds: int,
        unstructured: Optional[UnstructuredConfig] = None,
        structured: Optional[StructuredConfig] = None,
        sample_fraction: float = 0.1,
        seed: int = 0,
        eval_every: int = 0,
        aggregator: str = "intersection",
        track_trajectory: bool = False,
        **backend_kwargs,
    ) -> None:
        super().__init__(
            clients,
            model_fn,
            rounds,
            unstructured=unstructured or UnstructuredConfig(),
            structured=structured or StructuredConfig(),
            sample_fraction=sample_fraction,
            seed=seed,
            eval_every=eval_every,
            aggregator=aggregator,
            track_trajectory=track_trajectory,
            **backend_kwargs,
        )
