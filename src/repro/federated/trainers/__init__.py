"""Federated training algorithms.

Importing this package populates the trainer registry: every algorithm
module self-registers its classes with
:func:`~repro.federated.registry.register_trainer`, which is how the
builder, the ``Federation`` facade and the CLI resolve algorithm names.
"""

from .base import FederatedTrainer
from .fedavg import FedAvg, FedProx
from .finetune import FedAvgFinetune
from .lgfedavg import LGFedAvg
from .mtl import FedMTL
from .standalone import Standalone
from .subfedavg import SubFedAvgHy, SubFedAvgTrainer, SubFedAvgUn

__all__ = [
    "FederatedTrainer",
    "FedAvg",
    "FedProx",
    "FedAvgFinetune",
    "LGFedAvg",
    "FedMTL",
    "Standalone",
    "SubFedAvgTrainer",
    "SubFedAvgUn",
    "SubFedAvgHy",
]
