"""Federated training algorithms."""

from .base import FederatedTrainer
from .fedavg import FedAvg, FedProx
from .finetune import FedAvgFinetune
from .lgfedavg import LGFedAvg
from .mtl import FedMTL
from .standalone import Standalone
from .subfedavg import SubFedAvgHy, SubFedAvgTrainer, SubFedAvgUn

__all__ = [
    "FederatedTrainer",
    "FedAvg",
    "FedProx",
    "FedAvgFinetune",
    "LGFedAvg",
    "FedMTL",
    "Standalone",
    "SubFedAvgTrainer",
    "SubFedAvgUn",
    "SubFedAvgHy",
]
