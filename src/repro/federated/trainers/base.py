"""Round orchestration shared by every federated algorithm."""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

import numpy as np

from ...models.base import ConvNet
from ..callbacks import CallbackList
from ..client import FederatedClient
from ..metrics import History, RoundRecord
from ..sampler import ClientSampler


class FederatedTrainer:
    """Base class: sampling, the round loop, evaluation and bookkeeping.

    Subclasses implement :meth:`_round` (one communication round over the
    sampled clients, returning a partially filled :class:`RoundRecord`) and
    may override :meth:`_evaluate_client` to define what a client's
    *personal* model is under their algorithm.

    :meth:`run` drives the lifecycle and dispatches
    :mod:`~repro.federated.callbacks` hooks around every round.  The loop
    resumes after ``len(self.history.rounds)`` completed rounds, so a
    callback that restores a checkpoint in ``on_run_start`` (see
    :class:`~repro.federated.callbacks.CheckpointCallback`) transparently
    skips the finished prefix.  A callback may call :meth:`request_stop`
    to end the loop early; the final all-client evaluation still runs, so
    the returned history is truncated but consistent.
    """

    algorithm_name = "base"

    def __init__(
        self,
        clients: List[FederatedClient],
        model_fn: Callable[[], ConvNet],
        rounds: int,
        sample_fraction: float = 0.1,
        seed: int = 0,
        eval_every: int = 0,
    ) -> None:
        if rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {rounds}")
        if not clients:
            raise ValueError("need at least one client")
        self.clients = clients
        self.model_fn = model_fn
        self.rounds = rounds
        self.eval_every = eval_every
        self.sampler = ClientSampler(len(clients), sample_fraction, seed=seed)
        self.global_state: Dict[str, np.ndarray] = model_fn().state_dict()
        self.history = History(algorithm=self.algorithm_name)
        self.total_params = int(sum(v.size for v in self.global_state.values()))
        self.stop_requested = False

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def request_stop(self) -> None:
        """Ask the round loop to stop after the current round completes."""
        self.stop_requested = True

    def run(self, callbacks: Optional[Iterable] = None) -> History:
        """Execute the remaining communication rounds and the final evaluation.

        ``callbacks`` is an optional iterable of
        :class:`~repro.federated.callbacks.Callback` objects (or anything
        exposing a subset of the hook methods), invoked in list order.
        """
        dispatcher = CallbackList(callbacks)
        self.stop_requested = False
        dispatcher.on_run_start(self)
        start_round = len(self.history.rounds) + 1
        for round_index in range(start_round, self.rounds + 1):
            sampled = self.sampler.sample()
            dispatcher.on_round_start(self, round_index, sampled)
            record = self._round(round_index, sampled)
            if self.eval_every and round_index % self.eval_every == 0:
                record.mean_accuracy = self.evaluate_all()
                dispatcher.on_evaluate(self, round_index, record.mean_accuracy)
            self.history.append(record)
            dispatcher.on_round_end(self, round_index, record)
            if self.stop_requested:
                break
        per_client = {
            client.client_id: self._evaluate_client(client) for client in self.clients
        }
        self.history.final_per_client_accuracy = per_client
        self.history.final_accuracy = float(np.mean(list(per_client.values())))
        dispatcher.on_run_end(self, self.history)
        return self.history

    def _round(self, round_index: int, sampled: List[int]) -> RoundRecord:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def _evaluate_client(self, client: FederatedClient) -> float:
        """Personalized test accuracy of one client (subclass-specific)."""
        client.load_global(self.global_state)
        return client.test_accuracy()

    def evaluate_all(self) -> float:
        """Paper metric: mean personalized test accuracy over *all* clients."""
        return float(
            np.mean([self._evaluate_client(client) for client in self.clients])
        )

    def evaluate_sampled(self, sampled: List[int]) -> float:
        return float(
            np.mean([self.clients[index].test_accuracy() for index in sampled])
        )
