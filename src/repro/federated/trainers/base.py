"""Round orchestration shared by every federated algorithm."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from ...models.base import ConvNet
from ..client import FederatedClient
from ..metrics import History, RoundRecord
from ..sampler import ClientSampler


class FederatedTrainer:
    """Base class: sampling, the round loop, evaluation and bookkeeping.

    Subclasses implement :meth:`_round` (one communication round over the
    sampled clients, returning a partially filled :class:`RoundRecord`) and
    may override :meth:`_evaluate_client` to define what a client's
    *personal* model is under their algorithm.
    """

    algorithm_name = "base"

    def __init__(
        self,
        clients: List[FederatedClient],
        model_fn: Callable[[], ConvNet],
        rounds: int,
        sample_fraction: float = 0.1,
        seed: int = 0,
        eval_every: int = 0,
    ) -> None:
        if rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {rounds}")
        if not clients:
            raise ValueError("need at least one client")
        self.clients = clients
        self.model_fn = model_fn
        self.rounds = rounds
        self.eval_every = eval_every
        self.sampler = ClientSampler(len(clients), sample_fraction, seed=seed)
        self.global_state: Dict[str, np.ndarray] = model_fn().state_dict()
        self.history = History(algorithm=self.algorithm_name)
        self.total_params = int(sum(v.size for v in self.global_state.values()))

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self) -> History:
        """Execute all communication rounds and the final evaluation."""
        for round_index in range(1, self.rounds + 1):
            sampled = self.sampler.sample()
            record = self._round(round_index, sampled)
            if self.eval_every and round_index % self.eval_every == 0:
                record.mean_accuracy = self.evaluate_all()
            self.history.append(record)
        per_client = {
            client.client_id: self._evaluate_client(client) for client in self.clients
        }
        self.history.final_per_client_accuracy = per_client
        self.history.final_accuracy = float(np.mean(list(per_client.values())))
        return self.history

    def _round(self, round_index: int, sampled: List[int]) -> RoundRecord:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def _evaluate_client(self, client: FederatedClient) -> float:
        """Personalized test accuracy of one client (subclass-specific)."""
        client.load_global(self.global_state)
        return client.test_accuracy()

    def evaluate_all(self) -> float:
        """Paper metric: mean personalized test accuracy over *all* clients."""
        return float(
            np.mean([self._evaluate_client(client) for client in self.clients])
        )

    def evaluate_sampled(self, sampled: List[int]) -> float:
        return float(
            np.mean([self.clients[index].test_accuracy() for index in sampled])
        )
