"""Round orchestration shared by every federated algorithm."""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Union

import numpy as np

from ...models.base import ConvNet
from ..callbacks import CallbackList
from ..client import FederatedClient
from ..execution import (
    ClientTask,
    ClientUpdate,
    ExecutionBackend,
    resolve_backend,
    run_client_task,
)
from ..metrics import History, RoundRecord
from ..sampler import ClientSampler


class FederatedTrainer:
    """Base class: sampling, the round loop, evaluation and bookkeeping.

    Subclasses implement :meth:`_round` (one communication round over the
    sampled clients, returning a partially filled :class:`RoundRecord`).
    Local work inside a round is expressed as a list of declarative
    :class:`~repro.federated.execution.ClientTask` objects handed to
    :meth:`execute`, which runs them on the configured
    :class:`~repro.federated.execution.ExecutionBackend` (``serial``,
    ``thread`` or ``process``) and returns the
    :class:`~repro.federated.execution.ClientUpdate` results in task order
    — so aggregation is reduction-order-deterministic regardless of how
    the tasks were scheduled.  Subclasses may override :meth:`_eval_task`
    to define what a client's *personal* model is under their algorithm.

    :meth:`run` drives the lifecycle and dispatches
    :mod:`~repro.federated.callbacks` hooks around every round.  The loop
    resumes after ``len(self.history.rounds)`` completed rounds, so a
    callback that restores a checkpoint in ``on_run_start`` (see
    :class:`~repro.federated.callbacks.CheckpointCallback`) transparently
    skips the finished prefix.  A callback may call :meth:`request_stop`
    to end the loop early; the final all-client evaluation still runs, so
    the returned history is truncated but consistent.

    With a :class:`~repro.systems.rounds.FleetSimulator` attached
    (``fleet_sim``, wired by the builder from the config's ``systems``
    section), each round additionally starts with a
    :class:`~repro.systems.rounds.RoundPlan`: the simulator predicts
    which sampled clients are still busy mid-flight (they skip local
    work), which will miss the round close (their update gets zero
    aggregation weight), and what staleness discount each delivery
    carries.  Trainers read the plan through :meth:`round_participants`
    and :meth:`delivery_weight`; without a simulator both are identity
    pass-throughs, so legacy behavior is bit-identical.
    """

    algorithm_name = "base"

    #: Does this trainer's ``_round`` consume the fleet plan
    #: (``round_participants``/``delivery_weight``/``_delivered_states``)?
    #: Trainers that do not must refuse non-synchronous round policies —
    #: otherwise the record would report stragglers as dropped while the
    #: aggregation silently kept them at full weight.
    supports_round_plan = False

    def __init__(
        self,
        clients: List[FederatedClient],
        model_fn: Callable[[], ConvNet],
        rounds: int,
        sample_fraction: float = 0.1,
        seed: int = 0,
        eval_every: int = 0,
        backend: Union[str, ExecutionBackend, None] = "serial",
        workers: int = 0,
        sampler: Optional[ClientSampler] = None,
        fleet_sim=None,
    ) -> None:
        if rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {rounds}")
        if not clients:
            raise ValueError("need at least one client")
        self.clients = clients
        self.model_fn = model_fn
        self.rounds = rounds
        self.eval_every = eval_every
        # The participation model is injectable (see the scenario registry
        # in repro.federated.scenario); the default reproduces the paper's
        # uniform protocol exactly.
        self.sampler = (
            sampler
            if sampler is not None
            else ClientSampler(len(clients), sample_fraction, seed=seed)
        )
        self.global_state: Dict[str, np.ndarray] = model_fn().state_dict()
        self.history = History(algorithm=self.algorithm_name)
        self.total_params = int(sum(v.size for v in self.global_state.values()))
        self.stop_requested = False
        self.backend = resolve_backend(backend, workers)
        self.fleet_sim = fleet_sim
        self.round_plan = None  # the current round's RoundPlan (or None)
        # Backends that dispatch work outside this process (the serving
        # layer's wire backend) need the trainer for round context — the
        # current plan, the fleet simulator's pending timelines.
        bind = getattr(self.backend, "bind_trainer", None)
        if bind is not None:
            bind(self)

    # ------------------------------------------------------------------
    # Task execution
    # ------------------------------------------------------------------
    def execute(self, tasks: Sequence[ClientTask]) -> List[ClientUpdate]:
        """Run ``tasks`` on the configured backend; results in task order."""
        tasks = list(tasks)
        if not tasks:
            return []
        pinned = getattr(self.clients, "pinned", None)
        if pinned is None or not getattr(self.backend, "concurrent_in_process", False):
            return self.backend.run(tasks, self.clients, self.global_state)
        # A ClientPool must not evict (and later rebuild) a client that a
        # concurrent backend is still mutating — pin this batch until every
        # task has finished.
        with pinned(task.client_index for task in tasks):
            return self.backend.run(tasks, self.clients, self.global_state)

    # ------------------------------------------------------------------
    # Fleet-simulation plan (no-ops without an attached simulator)
    # ------------------------------------------------------------------
    def _estimated_traffic(self, sampled: List[int]) -> Dict[int, tuple]:
        """Pre-round per-client byte estimate the simulator plans with.

        The default prices a dense exchange (the full model both ways);
        algorithms whose exchanges differ per client (Sub-FedAvg masks)
        override this with their committed pre-round sizes.  The round's
        *recorded* bytes re-price the completed timeline afterwards.
        """
        one_way = self.total_params * 4.0  # 32-bit floats
        return {client_id: (one_way, one_way) for client_id in sampled}

    def round_participants(self, sampled: List[int]) -> List[int]:
        """Sampled clients that actually run local work this round.

        Under async round policies a sampled client may still be
        mid-flight from an earlier round; the plan marks it busy and it
        skips this round's local work.  Without a plan this is the
        sampled list unchanged.
        """
        if self.round_plan is None:
            return list(sampled)
        started = set(self.round_plan.started)
        return [client_id for client_id in sampled if client_id in started]

    def delivery_weight(self, client_id: int) -> float:
        """The plan's aggregation weight for one client (1.0 without a plan).

        0.0 marks an update the server never aggregates (a deadline
        straggler, or an async client whose upload lands in a later
        round); fractional values are staleness discounts on carried
        async arrivals.
        """
        if self.round_plan is None:
            return 1.0
        return self.round_plan.delivery_weight(client_id)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def request_stop(self) -> None:
        """Ask the round loop to stop after the current round completes."""
        self.stop_requested = True

    def run(self, callbacks: Optional[Iterable] = None) -> History:
        """Execute the remaining communication rounds and the final evaluation.

        ``callbacks`` is an optional iterable of
        :class:`~repro.federated.callbacks.Callback` objects (or anything
        exposing a subset of the hook methods), invoked in list order.
        Rounds — and therefore callback dispatches — stay strictly
        sequential whatever the backend; only the client work inside a
        round is parallelized.
        """
        dispatcher = CallbackList(callbacks)
        self.stop_requested = False
        dispatcher.on_run_start(self)
        start_round = len(self.history.rounds) + 1
        for round_index in range(start_round, self.rounds + 1):
            sampled = self.sampler.sample()
            if self.fleet_sim is not None:
                self.round_plan = self.fleet_sim.plan_round(
                    round_index, sampled, self._estimated_traffic(sampled)
                )
            dispatcher.on_round_start(self, round_index, sampled)
            record = self._round(round_index, sampled)
            if self.eval_every and round_index % self.eval_every == 0:
                record.mean_accuracy = self.evaluate_all()
                dispatcher.on_evaluate(self, round_index, record.mean_accuracy)
            self.history.append(record)
            dispatcher.on_round_end(self, round_index, record)
            if self.stop_requested:
                break
        updates = self.execute(
            [self._eval_task(index) for index in range(len(self.clients))]
        )
        per_client = {update.client_id: update.accuracy for update in updates}
        self.history.final_per_client_accuracy = per_client
        self.history.final_accuracy = float(np.mean(list(per_client.values())))
        dispatcher.on_run_end(self, self.history)
        return self.history

    def _round(self, round_index: int, sampled: List[int]) -> RoundRecord:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def _eval_task(self, client_index: int) -> ClientTask:
        """Task measuring one client's *personal* accuracy (overridable).

        The default — used by the FedAvg family and Sub-FedAvg — loads the
        global weights (the client's committed mask, if any, is re-applied
        by ``load_global``) and restores the client's own state afterwards,
        so a mid-run ``evaluate_all`` never clobbers local models and the
        tasks are safe to run concurrently.
        """
        return ClientTask(
            client_index=client_index, kind="evaluate", load="global", restore=True
        )

    def _evaluate_client(self, client: FederatedClient) -> float:
        """Personalized test accuracy of one client (runs its eval task)."""
        index = self.clients.index(client)
        return run_client_task(client, self._eval_task(index), self.global_state).accuracy

    def evaluate_all(self) -> float:
        """Paper metric: mean personalized test accuracy over *all* clients."""
        updates = self.execute(
            [self._eval_task(index) for index in range(len(self.clients))]
        )
        return float(np.mean([update.accuracy for update in updates]))

    def evaluate_sampled(self, sampled: List[int]) -> float:
        """Mean test accuracy of the given clients on their current models."""
        updates = self.execute(
            [
                ClientTask(client_index=index, kind="evaluate", load="none")
                for index in sampled
            ]
        )
        return float(np.mean([update.accuracy for update in updates]))
