"""Federated multi-task learning baseline (Smith et al. 2017, simplified).

MOCHA's full primal-dual machinery targets convex models; for the deep
networks of this paper the standard simplification (used by its evaluation
code and follow-ups) is mean-regularized multi-task learning: every client
keeps a personal model and its local objective adds λ/2·‖w_k − w̄‖², where
w̄ is the average of all personal models.  The server's only job is to
recompute and broadcast w̄ each round — which is why the paper's Table 1
charges MTL the largest communication bill.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..accounting.communication import dense_exchange
from ..aggregation import fedavg_average
from ..execution import ClientTask
from ..metrics import RoundRecord
from ..registry import register_trainer
from .base import FederatedTrainer


@register_trainer("mtl", local_defaults={"mtl_lambda": 0.1})
class FedMTL(FederatedTrainer):
    """Mean-regularized multi-task learning (simplified MOCHA)."""

    algorithm_name = "mtl"

    def _round(self, round_index: int, sampled: List[int]) -> RoundRecord:
        for index in sampled:
            client = self.clients[index]
            if client.config.mtl_lambda <= 0:
                raise ValueError(
                    "FedMTL requires clients configured with mtl_lambda > 0 "
                    f"(client {client.client_id} has {client.config.mtl_lambda})"
                )
        # Clients keep their personal model (no download); the broadcast w̄
        # only enters through the mean-regularizer anchor.
        updates = self.execute(
            [
                ClientTask(client_index=index, kind="train", anchor_global=True)
                for index in sampled
            ]
        )
        # w̄ over the participants' personal models, broadcast next round.
        self.global_state = fedavg_average([update.state for update in updates])
        # Clients exchange their full personal model and receive w̄ back.
        traffic = dense_exchange(self.total_params, len(sampled))
        return RoundRecord(
            round_index=round_index,
            sampled_clients=sampled,
            train_loss=float(np.mean([update.mean_loss for update in updates])),
            uploaded_bytes=traffic.uploaded_bytes,
            downloaded_bytes=traffic.downloaded_bytes,
        )

    def _eval_task(self, client_index: int) -> ClientTask:
        """MTL clients are evaluated on their retained personal model."""
        return ClientTask(client_index=client_index, kind="evaluate", load="none")
