"""Federated multi-task learning baseline (Smith et al. 2017, simplified).

MOCHA's full primal-dual machinery targets convex models; for the deep
networks of this paper the standard simplification (used by its evaluation
code and follow-ups) is mean-regularized multi-task learning: every client
keeps a personal model and its local objective adds λ/2·‖w_k − w̄‖², where
w̄ is the average of all personal models.  The server's only job is to
recompute and broadcast w̄ each round — which is why the paper's Table 1
charges MTL the largest communication bill.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..accounting.communication import dense_exchange
from ..aggregation import fedavg_average
from ..client import FederatedClient
from ..metrics import RoundRecord
from ..registry import register_trainer
from .base import FederatedTrainer


@register_trainer("mtl", local_defaults={"mtl_lambda": 0.1})
class FedMTL(FederatedTrainer):
    """Mean-regularized multi-task learning (simplified MOCHA)."""

    algorithm_name = "mtl"

    def _round(self, round_index: int, sampled: List[int]) -> RoundRecord:
        losses = []
        for index in sampled:
            client = self.clients[index]
            if client.config.mtl_lambda <= 0:
                raise ValueError(
                    "FedMTL requires clients configured with mtl_lambda > 0 "
                    f"(client {client.client_id} has {client.config.mtl_lambda})"
                )
            client.set_anchor(self.global_state)
            result = client.train_local()
            losses.append(result.mean_loss)

        # w̄ over the participants' personal models, broadcast next round.
        states = [self.clients[index].state_dict() for index in sampled]
        self.global_state = fedavg_average(states)
        # Clients exchange their full personal model and receive w̄ back.
        traffic = dense_exchange(self.total_params, len(sampled))
        return RoundRecord(
            round_index=round_index,
            sampled_clients=sampled,
            train_loss=float(np.mean(losses)),
            uploaded_bytes=traffic.uploaded_bytes,
            downloaded_bytes=traffic.downloaded_bytes,
        )

    def _evaluate_client(self, client: FederatedClient) -> float:
        """MTL clients are evaluated on their retained personal model."""
        return client.test_accuracy()
