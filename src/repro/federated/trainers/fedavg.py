"""FedAvg (McMahan et al. 2017) — the traditional-FL benchmark."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..accounting.communication import dense_exchange
from ..aggregation import fedavg_average
from ..execution import ClientTask, ClientUpdate
from ..metrics import RoundRecord
from ..registry import register_trainer
from .base import FederatedTrainer


@register_trainer("fedavg")
class FedAvg(FederatedTrainer):
    """Classic dense averaging weighted by client example counts.

    Personalized evaluation loads the single global model into every
    client, so under pathological non-IID the reported accuracy exposes
    FedAvg's collapse (the paper's Remark-2).

    ``stragglers`` optionally installs a
    :class:`~repro.federated.robust.StragglerModel`: each client then runs
    its own epoch budget per round instead of the configured count,
    simulating system heterogeneity (partial local work).  Aggregation
    weights count the examples a client actually processed this round, so
    a straggler's stale state is discounted in proportion to the work it
    skipped (and weighted zero if it did none).
    """

    algorithm_name = "fedavg"

    def __init__(self, *args, stragglers=None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.stragglers = stragglers

    def _local_epochs(self, client_index: int) -> Optional[int]:
        if self.stragglers is None:
            return None  # fall back to the client's configured epochs
        return self.stragglers.epochs_for(client_index)

    def _train_tasks(self, sampled: List[int]) -> List[ClientTask]:
        """Declarative description of one round's local work (overridable)."""
        return [
            ClientTask(
                client_index=index,
                kind="train",
                load="global",
                epochs=self._local_epochs(index),
            )
            for index in sampled
        ]

    def _aggregate(self, updates: List[ClientUpdate]) -> None:
        states = [update.state for update in updates]
        weights = [update.num_examples for update in updates]
        # All-straggler corner: nobody processed an example, so there is no
        # work to weight by — keep uniform weights instead of dividing by 0.
        self.global_state = fedavg_average(
            states, weights if sum(weights) > 0 else None
        )

    def _round(self, round_index: int, sampled: List[int]) -> RoundRecord:
        updates = self.execute(self._train_tasks(sampled))
        self._aggregate(updates)
        traffic = dense_exchange(self.total_params, len(sampled))
        return RoundRecord(
            round_index=round_index,
            sampled_clients=sampled,
            train_loss=float(np.mean([update.mean_loss for update in updates])),
            uploaded_bytes=traffic.uploaded_bytes,
            downloaded_bytes=traffic.downloaded_bytes,
        )


@register_trainer("fedprox", local_defaults={"prox_mu": 0.01})
class FedProx(FedAvg):
    """FedAvg plus a proximal term μ/2·‖w − w_g‖² in the local objective.

    The proximal gradient is added by the client when its
    ``LocalTrainConfig.prox_mu`` is non-zero; each training task pins the
    anchor to the current global weights at the start of the round.
    """

    algorithm_name = "fedprox"

    def _train_tasks(self, sampled: List[int]) -> List[ClientTask]:
        for index in sampled:
            client = self.clients[index]
            if client.config.prox_mu <= 0:
                raise ValueError(
                    "FedProx requires clients configured with prox_mu > 0 "
                    f"(client {client.client_id} has {client.config.prox_mu})"
                )
        return [
            ClientTask(
                client_index=index,
                kind="train",
                load="global",
                anchor_global=True,
                epochs=self._local_epochs(index),
            )
            for index in sampled
        ]
