"""FedAvg (McMahan et al. 2017) — the traditional-FL benchmark."""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..accounting.communication import FLOAT_BITS, dense_exchange
from ..aggregation import fedavg_average
from ..execution import ClientTask, ClientUpdate
from ..metrics import RoundRecord
from ..registry import register_trainer
from .base import FederatedTrainer


@register_trainer("fedavg")
class FedAvg(FederatedTrainer):
    """Classic dense averaging weighted by client example counts.

    Personalized evaluation loads the single global model into every
    client, so under pathological non-IID the reported accuracy exposes
    FedAvg's collapse (the paper's Remark-2).

    ``stragglers`` optionally installs a
    :class:`~repro.federated.robust.StragglerModel`: each client then runs
    its own epoch budget per round instead of the configured count,
    simulating system heterogeneity (partial local work).  Aggregation
    weights count the examples a client actually processed this round, so
    a straggler's stale state is discounted in proportion to the work it
    skipped (and weighted zero if it did none).

    With a fleet simulator attached, aggregation follows the round plan
    instead: deadline stragglers weigh zero (their upload missed the
    close), and under the async-buffer policy an in-flight client's
    earlier update is aggregated when it finally *arrives*, discounted by
    its staleness weight.  The carried delivery replays the *state
    snapshot taken at upload time* — held here until the arrival lands —
    so anything that mutates the client in between (an availability
    restart, an eviction/rebuild, side-effect-free evaluation) cannot
    alter what the server aggregates.
    """

    algorithm_name = "fedavg"
    supports_round_plan = True

    def __init__(self, *args, stragglers=None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.stragglers = stragglers
        # Upload-time (state, examples) snapshots of async in-flight
        # updates, consumed when the carried delivery finally arrives.
        self._held_updates: Dict[int, tuple] = {}

    def _local_epochs(self, client_index: int) -> Optional[int]:
        if self.stragglers is None:
            return None  # fall back to the client's configured epochs
        return self.stragglers.epochs_for(client_index)

    def _train_tasks(self, sampled: List[int]) -> List[ClientTask]:
        """Declarative description of one round's local work (overridable)."""
        return [
            ClientTask(
                client_index=index,
                kind="train",
                load="global",
                epochs=self._local_epochs(index),
            )
            for index in sampled
        ]

    def _aggregate(self, updates: List[ClientUpdate]) -> None:
        plan = self.round_plan
        if plan is None:
            states = [update.state for update in updates]
            weights = [update.num_examples for update in updates]
            # All-straggler corner: nobody processed an example, so there is
            # no work to weight by — keep uniform weights instead of
            # dividing by 0.
            self.global_state = fedavg_average(
                states, weights if sum(weights) > 0 else None
            )
            return
        by_id = {update.client_id: update for update in updates}
        states, weights = [], []
        for delivery in plan.deliveries:
            update = by_id.get(delivery.client_id)
            if update is not None:
                state, examples = update.state, update.num_examples
            else:
                # A carried async arrival: replay the snapshot held at
                # upload time, staleness-discounted.  (The live model may
                # have moved since — restarts, evictions and evaluation
                # must not change what the server aggregates.)
                held = self._held_updates.pop(delivery.client_id, None)
                if held is not None:
                    state, examples = held
                else:
                    # No held snapshot (e.g. a plan replayed post hoc):
                    # fall back to the client's current state.
                    state = self.clients[delivery.client_id].state_dict()
                    examples = 1
            states.append(state)
            weights.append(examples * delivery.weight)
        delivered = plan.delivered_ids
        for update in updates:
            if update.client_id in delivered:
                self._held_updates.pop(update.client_id, None)
            else:
                self._held_updates[update.client_id] = (
                    update.state,
                    update.num_examples,
                )
        if not states:
            return  # the server closed the round before any upload landed
        self.global_state = fedavg_average(
            states, weights if sum(weights) > 0 else None
        )

    def _round(self, round_index: int, sampled: List[int]) -> RoundRecord:
        started = self.round_participants(sampled)
        updates = self.execute(self._train_tasks(started))
        self._aggregate(updates)
        traffic = dense_exchange(self.total_params, len(started))
        one_way = self.total_params * FLOAT_BITS / 8.0
        return RoundRecord(
            round_index=round_index,
            sampled_clients=sampled,
            train_loss=float(np.mean([update.mean_loss for update in updates])),
            uploaded_bytes=traffic.uploaded_bytes,
            downloaded_bytes=traffic.downloaded_bytes,
            client_uploaded_bytes={cid: one_way for cid in started},
            client_downloaded_bytes={cid: one_way for cid in started},
        )


@register_trainer("fedprox", local_defaults={"prox_mu": 0.01})
class FedProx(FedAvg):
    """FedAvg plus a proximal term μ/2·‖w − w_g‖² in the local objective.

    The proximal gradient is added by the client when its
    ``LocalTrainConfig.prox_mu`` is non-zero; each training task pins the
    anchor to the current global weights at the start of the round.
    """

    algorithm_name = "fedprox"

    def _train_tasks(self, sampled: List[int]) -> List[ClientTask]:
        for index in sampled:
            client = self.clients[index]
            if client.config.prox_mu <= 0:
                raise ValueError(
                    "FedProx requires clients configured with prox_mu > 0 "
                    f"(client {client.client_id} has {client.config.prox_mu})"
                )
        return [
            ClientTask(
                client_index=index,
                kind="train",
                load="global",
                anchor_global=True,
                epochs=self._local_epochs(index),
            )
            for index in sampled
        ]
