"""FedAvg (McMahan et al. 2017) — the traditional-FL benchmark."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..accounting.communication import dense_exchange
from ..aggregation import fedavg_average
from ..metrics import RoundRecord
from ..registry import register_trainer
from .base import FederatedTrainer


@register_trainer("fedavg")
class FedAvg(FederatedTrainer):
    """Classic dense averaging weighted by client example counts.

    Personalized evaluation loads the single global model into every
    client, so under pathological non-IID the reported accuracy exposes
    FedAvg's collapse (the paper's Remark-2).

    ``stragglers`` optionally installs a
    :class:`~repro.federated.robust.StragglerModel`: each client then runs
    its own epoch budget per round instead of the configured count,
    simulating system heterogeneity (partial local work).
    """

    algorithm_name = "fedavg"

    def __init__(self, *args, stragglers=None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.stragglers = stragglers

    def _local_epochs(self, client_index: int) -> Optional[int]:
        if self.stragglers is None:
            return None  # fall back to the client's configured epochs
        return self.stragglers.epochs_for(client_index)

    def _round(self, round_index: int, sampled: List[int]) -> RoundRecord:
        states = []
        weights = []
        losses = []
        for index in sampled:
            client = self.clients[index]
            client.load_global(self.global_state)
            self._before_local(client)
            result = client.train_local(epochs=self._local_epochs(index))
            losses.append(result.mean_loss)
            states.append(client.state_dict())
            weights.append(result.num_examples)

        self.global_state = fedavg_average(states, weights)
        traffic = dense_exchange(self.total_params, len(sampled))
        return RoundRecord(
            round_index=round_index,
            sampled_clients=sampled,
            train_loss=float(np.mean(losses)),
            uploaded_bytes=traffic.uploaded_bytes,
            downloaded_bytes=traffic.downloaded_bytes,
        )

    def _before_local(self, client) -> None:
        """Hook for subclasses (FedProx installs its proximal anchor here)."""


@register_trainer("fedprox", local_defaults={"prox_mu": 0.01})
class FedProx(FedAvg):
    """FedAvg plus a proximal term μ/2·‖w − w_g‖² in the local objective.

    The proximal gradient is added by the client when its
    ``LocalTrainConfig.prox_mu`` is non-zero; this trainer pins the anchor
    to the current global weights at the start of each round.
    """

    algorithm_name = "fedprox"

    def _before_local(self, client) -> None:
        if client.config.prox_mu <= 0:
            raise ValueError(
                "FedProx requires clients configured with prox_mu > 0 "
                f"(client {client.client_id} has {client.config.prox_mu})"
            )
        client.set_anchor(self.global_state)
