"""FedAvg + local fine-tuning: the two-step personalization baseline.

The paper's §2 describes the dominant prior personalization recipe:
"a global model is constituted collaboratively in the first step, and then
the global model is personalized for each client using the client's
private data in the second step" (Jiang et al. 2019; Yu et al. 2020).
Sub-FedAvg's pitch is avoiding that extra step; this trainer implements
the recipe so the comparison can be run.

Training is exactly FedAvg; at evaluation time each client downloads the
global model and fine-tunes for ``finetune_epochs`` on its local data
before testing.  The extra local compute is the method's documented cost.
The evaluation task restores the client's model and data-order stream
afterwards, so a mid-run ``evaluate_all`` leaves the federation exactly
as it found it (and the tasks can run on any execution backend).
"""

from __future__ import annotations

from typing import Callable, List

from ...models.base import ConvNet
from ..client import FederatedClient
from ..execution import ClientTask
from ..registry import register_trainer
from .fedavg import FedAvg


@register_trainer("fedavg-ft")
class FedAvgFinetune(FedAvg):
    """FedAvg personalized by a post-hoc local fine-tune (two-step recipe)."""

    algorithm_name = "fedavg-ft"

    def __init__(
        self,
        clients: List[FederatedClient],
        model_fn: Callable[[], ConvNet],
        rounds: int,
        sample_fraction: float = 0.1,
        seed: int = 0,
        eval_every: int = 0,
        finetune_epochs: int = 1,
        **backend_kwargs,
    ) -> None:
        super().__init__(
            clients,
            model_fn,
            rounds,
            sample_fraction=sample_fraction,
            seed=seed,
            eval_every=eval_every,
            **backend_kwargs,
        )
        if finetune_epochs < 1:
            raise ValueError(f"finetune_epochs must be >= 1, got {finetune_epochs}")
        self.finetune_epochs = finetune_epochs

    def _eval_task(self, client_index: int) -> ClientTask:
        """Global model, personalized by a short local fine-tune (step two)."""
        return ClientTask(
            client_index=client_index,
            kind="evaluate",
            load="global",
            epochs=self.finetune_epochs,
            restore=True,
        )
