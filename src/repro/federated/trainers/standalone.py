"""Standalone baseline: purely local training, no federation.

Each client trains on its own shard for the configured number of rounds ×
local epochs.  Zero communication by definition; its accuracy is the bar a
personalization method must beat for federation to be worth joining (the
paper's Remark-2).
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..execution import ClientTask
from ..metrics import RoundRecord
from ..registry import register_trainer
from .base import FederatedTrainer


@register_trainer("standalone")
class Standalone(FederatedTrainer):
    """Purely local training, no communication (the Remark-2 baseline)."""

    algorithm_name = "standalone"

    def _round(self, round_index: int, sampled: List[int]) -> RoundRecord:
        updates = self.execute(
            [ClientTask(client_index=index, kind="train") for index in sampled]
        )
        return RoundRecord(
            round_index=round_index,
            sampled_clients=sampled,
            train_loss=float(np.mean([update.mean_loss for update in updates])),
            uploaded_bytes=0.0,
            downloaded_bytes=0.0,
        )

    def _eval_task(self, client_index: int) -> ClientTask:
        """Standalone clients are evaluated on their own local model."""
        return ClientTask(client_index=client_index, kind="evaluate", load="none")
