"""Standalone baseline: purely local training, no federation.

Each client trains on its own shard for the configured number of rounds ×
local epochs.  Zero communication by definition; its accuracy is the bar a
personalization method must beat for federation to be worth joining (the
paper's Remark-2).
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..client import FederatedClient
from ..metrics import RoundRecord
from ..registry import register_trainer
from .base import FederatedTrainer


@register_trainer("standalone")
class Standalone(FederatedTrainer):
    """Purely local training, no communication (the Remark-2 baseline)."""

    algorithm_name = "standalone"

    def _round(self, round_index: int, sampled: List[int]) -> RoundRecord:
        losses = []
        for index in sampled:
            result = self.clients[index].train_local()
            losses.append(result.mean_loss)
        return RoundRecord(
            round_index=round_index,
            sampled_clients=sampled,
            train_loss=float(np.mean(losses)),
            uploaded_bytes=0.0,
            downloaded_bytes=0.0,
        )

    def _evaluate_client(self, client: FederatedClient) -> float:
        """Standalone clients are evaluated on their own local model."""
        return client.test_accuracy()
