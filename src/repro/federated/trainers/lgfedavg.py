"""LG-FedAvg (Liang et al. 2020): local representations, global head.

Each client keeps its convolutional (representation) layers personal and
only the classifier layers are averaged on the server — "think locally,
act globally".  Only the shared layers travel, so the per-round cost is a
fraction of FedAvg's.
"""

from __future__ import annotations

from typing import Callable, List

import numpy as np

from ...models.base import ConvNet
from ..accounting.communication import partial_exchange
from ..aggregation import partial_average
from ..client import FederatedClient
from ..execution import ClientTask
from ..metrics import RoundRecord
from ..registry import register_trainer
from .base import FederatedTrainer


@register_trainer("lg-fedavg")
class LGFedAvg(FederatedTrainer):
    """Personal representation layers, federated classifier head."""

    algorithm_name = "lg-fedavg"

    def __init__(
        self,
        clients: List[FederatedClient],
        model_fn: Callable[[], ConvNet],
        rounds: int,
        sample_fraction: float = 0.1,
        seed: int = 0,
        eval_every: int = 0,
        **backend_kwargs,
    ) -> None:
        super().__init__(
            clients,
            model_fn,
            rounds,
            sample_fraction=sample_fraction,
            seed=seed,
            eval_every=eval_every,
            **backend_kwargs,
        )
        probe = model_fn()
        shared_layers = probe.classifier_names
        self.shared_names = tuple(
            name
            for name in probe.state_dict()
            if any(name.startswith(layer + ".") for layer in shared_layers)
        )
        if not self.shared_names:
            raise ValueError("model exposes no classifier layers for LG-FedAvg to share")
        self.shared_params = int(
            sum(self.global_state[name].size for name in self.shared_names)
        )

    def _round(self, round_index: int, sampled: List[int]) -> RoundRecord:
        updates = self.execute(
            [
                ClientTask(
                    client_index=index,
                    kind="train",
                    load="partial",
                    shared_names=self.shared_names,
                )
                for index in sampled
            ]
        )
        states = [update.state for update in updates]
        weights = [update.num_examples for update in updates]
        self.global_state = partial_average(
            states, self.shared_names, self.global_state, weights
        )
        traffic = partial_exchange(self.shared_params, len(sampled))
        return RoundRecord(
            round_index=round_index,
            sampled_clients=sampled,
            train_loss=float(np.mean([update.mean_loss for update in updates])),
            uploaded_bytes=traffic.uploaded_bytes,
            downloaded_bytes=traffic.downloaded_bytes,
        )

    def _eval_task(self, client_index: int) -> ClientTask:
        """Personal model = personal representation + current global head."""
        return ClientTask(
            client_index=client_index,
            kind="evaluate",
            load="partial",
            shared_names=self.shared_names,
            restore=True,
        )
