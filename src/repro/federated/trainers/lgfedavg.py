"""LG-FedAvg (Liang et al. 2020): local representations, global head.

Each client keeps its convolutional (representation) layers personal and
only the classifier layers are averaged on the server — "think locally,
act globally".  Only the shared layers travel, so the per-round cost is a
fraction of FedAvg's.
"""

from __future__ import annotations

from typing import Callable, List

import numpy as np

from ...models.base import ConvNet
from ..accounting.communication import partial_exchange
from ..aggregation import partial_average
from ..client import FederatedClient
from ..metrics import RoundRecord
from ..registry import register_trainer
from .base import FederatedTrainer


@register_trainer("lg-fedavg")
class LGFedAvg(FederatedTrainer):
    """Personal representation layers, federated classifier head."""

    algorithm_name = "lg-fedavg"

    def __init__(
        self,
        clients: List[FederatedClient],
        model_fn: Callable[[], ConvNet],
        rounds: int,
        sample_fraction: float = 0.1,
        seed: int = 0,
        eval_every: int = 0,
    ) -> None:
        super().__init__(clients, model_fn, rounds, sample_fraction, seed, eval_every)
        probe = model_fn()
        shared_layers = probe.classifier_names
        self.shared_names = [
            name
            for name in probe.state_dict()
            if any(name.startswith(layer + ".") for layer in shared_layers)
        ]
        if not self.shared_names:
            raise ValueError("model exposes no classifier layers for LG-FedAvg to share")
        self.shared_params = int(
            sum(self.global_state[name].size for name in self.shared_names)
        )

    def _round(self, round_index: int, sampled: List[int]) -> RoundRecord:
        states = []
        weights = []
        losses = []
        for index in sampled:
            client = self.clients[index]
            client.load_partial(self.global_state, self.shared_names)
            result = client.train_local()
            losses.append(result.mean_loss)
            states.append(client.state_dict())
            weights.append(result.num_examples)

        self.global_state = partial_average(
            states, self.shared_names, self.global_state, weights
        )
        traffic = partial_exchange(self.shared_params, len(sampled))
        return RoundRecord(
            round_index=round_index,
            sampled_clients=sampled,
            train_loss=float(np.mean(losses)),
            uploaded_bytes=traffic.uploaded_bytes,
            downloaded_bytes=traffic.downloaded_bytes,
        )

    def _evaluate_client(self, client: FederatedClient) -> float:
        """Personal model = personal representation + current global head."""
        client.load_partial(self.global_state, self.shared_names)
        return client.test_accuracy()
