"""Communication-compression baselines (the paper's related work, §2).

The paper positions Sub-FedAvg against the classic cost-reduction line:
structured/sketched updates (Konečný et al. 2016) and gradient compression
(Lin et al. 2017).  This module implements three representative update
compressors plus a FedAvg variant that uses them, so the repository can
regenerate the "compression vs pruning" comparison:

* :class:`TopKCompressor` — keep the largest-magnitude fraction of the
  update (deep gradient compression style),
* :class:`RandomMaskCompressor` — random sparsification (structured-updates
  style),
* :class:`QuantizationCompressor` — uniform b-bit quantization.

Compressors act on *updates* (client state minus global state), which is
where sparsity/quantization tolerance actually lives; the trainer
reconstructs states server-side and charges the compressed bit count to the
communication meter.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..pruning.unstructured import _rank_threshold
from .accounting.communication import FLOAT_BITS, MASK_BITS
from .execution import ClientUpdate
from .metrics import RoundRecord
from .registry import register_trainer
from .trainers.fedavg import FedAvg

State = Dict[str, np.ndarray]


class Compressor:
    """Lossy update codec: ``encode`` returns the decoded update + its bits.

    Simulation-friendly contract: instead of materializing a wire format we
    return the *post-roundtrip* update (what the server would decode) and
    the exact number of bits a real encoding would occupy.
    """

    def encode(self, update: State) -> Tuple[State, float]:
        raise NotImplementedError


class IdentityCompressor(Compressor):
    """No-op codec: full-precision update, 32 bits per value."""

    def encode(self, update: State) -> Tuple[State, float]:
        bits = sum(value.size for value in update.values()) * FLOAT_BITS
        return {name: value.copy() for name, value in update.items()}, float(bits)


class TopKCompressor(Compressor):
    """Keep the top ``fraction`` of update coordinates by magnitude.

    Wire format modelled as 32-bit values for survivors plus a 1-bit
    occupancy mask — the same convention the paper uses for Sub-FedAvg's
    masks, which keeps the comparison apples-to-apples.
    """

    def __init__(self, fraction: float) -> None:
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        self.fraction = fraction

    def encode(self, update: State) -> Tuple[State, float]:
        magnitudes = np.concatenate([np.abs(v).ravel() for v in update.values()])
        threshold = _rank_threshold(magnitudes, 1.0 - self.fraction)
        encoded: State = {}
        kept = 0
        total = 0
        for name, value in update.items():
            mask = np.abs(value) > threshold
            encoded[name] = value * mask
            kept += int(mask.sum())
            total += value.size
        bits = kept * FLOAT_BITS + total * MASK_BITS
        return encoded, float(bits)


class RandomMaskCompressor(Compressor):
    """Random sparsification with unbiased rescaling (structured updates).

    Each coordinate survives independently with probability ``fraction``
    and is scaled by ``1/fraction`` so the expected update is unchanged.
    """

    def __init__(self, fraction: float, seed: int = 0) -> None:
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        self.fraction = fraction
        self._rng = np.random.default_rng(seed)

    def encode(self, update: State) -> Tuple[State, float]:
        encoded: State = {}
        kept = 0
        total = 0
        for name, value in update.items():
            mask = self._rng.random(value.shape) < self.fraction
            encoded[name] = value * mask / self.fraction
            kept += int(mask.sum())
            total += value.size
        bits = kept * FLOAT_BITS + total * MASK_BITS
        return encoded, float(bits)


class QuantizationCompressor(Compressor):
    """Uniform per-tensor quantization to ``bits`` bits per value."""

    def __init__(self, bits: int = 8) -> None:
        if not 1 <= bits <= 32:
            raise ValueError(f"bits must be in [1, 32], got {bits}")
        self.bits = bits
        self.levels = 2 ** bits - 1

    def encode(self, update: State) -> Tuple[State, float]:
        encoded: State = {}
        total_bits = 0.0
        for name, value in update.items():
            low, high = float(value.min()), float(value.max())
            span = high - low
            if span == 0.0:
                encoded[name] = value.copy()
            else:
                codes = np.round((value - low) / span * self.levels)
                encoded[name] = low + codes / self.levels * span
            # b bits per value + two 32-bit floats (min/max) per tensor.
            total_bits += value.size * self.bits + 2 * FLOAT_BITS
        return encoded, total_bits


@register_trainer("fedavg-compressed")
class FedAvgCompressed(FedAvg):
    """FedAvg whose uplink carries compressed *updates* instead of states.

    Downlink stays full precision (the asymmetric-bandwidth setting of
    §2: uplink is the bottleneck).  The server decodes each client's
    update, adds it to the global weights and averages as usual.
    """

    algorithm_name = "fedavg-compressed"

    def __init__(self, *args, compressor: Optional[Compressor] = None, **kwargs):
        super().__init__(*args, **kwargs)
        self.compressor = compressor if compressor is not None else IdentityCompressor()

    def _round(self, round_index: int, sampled: List[int]) -> RoundRecord:
        started = self.round_participants(sampled)
        updates = self.execute(self._train_tasks(started))
        # Encode/decode server-side in sampled order: stochastic codecs
        # (RandomMaskCompressor) draw from one stream, so the reduction
        # order must not depend on the execution backend.
        decoded_updates = []
        uplink_bits = 0.0
        one_way_down = self.total_params * FLOAT_BITS / 8.0
        client_up = {}
        client_down = {}
        for update in updates:
            delta = {
                name: value - self.global_state[name]
                for name, value in update.state.items()
            }
            decoded, bits = self.compressor.encode(delta)
            uplink_bits += bits
            client_up[update.client_id] = bits / 8.0
            client_down[update.client_id] = one_way_down
            decoded_updates.append(
                ClientUpdate(
                    client_index=update.client_index,
                    client_id=update.client_id,
                    state={
                        name: self.global_state[name] + decoded[name]
                        for name in decoded
                    },
                    num_examples=update.num_examples,
                    mean_loss=update.mean_loss,
                )
            )

        # Delegate to FedAvg's plan-aware aggregation over the *decoded*
        # states: deadline stragglers weigh zero, and carried async
        # arrivals land with their staleness discount (the in-flight
        # client's model still holds the state it uploaded).
        self._aggregate(decoded_updates)
        downlink = len(started) * one_way_down
        return RoundRecord(
            round_index=round_index,
            sampled_clients=sampled,
            train_loss=float(np.mean([update.mean_loss for update in updates])),
            uploaded_bytes=uplink_bits / 8.0,
            downloaded_bytes=downlink,
            client_uploaded_bytes=client_up,
            client_downloaded_bytes=client_down,
        )
