"""Symmetric update codecs: the compression API behind trainer and wire.

The paper positions Sub-FedAvg against the classic cost-reduction line:
structured/sketched updates (Konečný et al. 2016) and gradient compression
(Lin et al. 2017).  This module implements the representative codecs — and,
since PR 8, implements them as a *symmetric* API that can actually survive
a wire:

* :meth:`Compressor.encode` packs a state/update dict into an
  :class:`EncodedState` — real bytes (self-describing header + raw
  buffers) plus the *modeled* bit count the communication meter charges,
* :meth:`Compressor.decode` is the matching inverse: any instance of the
  same codec can decode any peer's payload (all parameters needed to
  decode travel in the payload header),
* :meth:`Compressor.roundtrip` preserves the historical simulation
  contract (``decoded_update, bits``) for in-process callers.

Codecs register with :func:`register_compressor` and are selected by a
:class:`CompressionConfig` (the ``compression:`` section of
``FederationConfig``); :func:`build_compressor` resolves one.  The serving
layer uses the same registry for its uplink transport codec.

Modeled bits vs container bytes: the paper's accounting convention prices
values at 32 bits (``FLOAT_BITS``) plus 1-bit occupancy masks
(``MASK_BITS``), while the container carries float64 for bitwise-lossless
reconstruction — so ``EncodedState.bits`` (what the meter charges) is
deliberately *not* ``8 * len(payload)``.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from ..pruning.unstructured import _rank_threshold
from .accounting.communication import FLOAT_BITS, MASK_BITS
from .execution import ClientUpdate
from .metrics import RoundRecord
from .registry import register_trainer
from .trainers.fedavg import FedAvg

State = Dict[str, np.ndarray]

#: Container magic + layout version ("repro codec, v1").
_MAGIC = b"RPC1"


# ----------------------------------------------------------------------
# Payload container: one deterministic byte layout for every codec
# ----------------------------------------------------------------------
def pack_payload(meta: Dict, arrays: Dict[str, np.ndarray]) -> bytes:
    """Pack a JSON-safe ``meta`` dict plus named arrays into one blob.

    Layout: magic, little-endian header length, canonical-JSON header
    (meta + per-array dtype/shape manifest in insertion order), then the
    raw array buffers concatenated in the same order.  Deterministic for
    equal inputs, so payload bytes are comparable across processes.
    """
    header = {
        "meta": meta,
        "arrays": [
            {"name": name, "dtype": str(array.dtype), "shape": list(array.shape)}
            for name, array in arrays.items()
        ],
    }
    head = json.dumps(header, sort_keys=True, separators=(",", ":")).encode()
    parts = [_MAGIC, struct.pack("<I", len(head)), head]
    for array in arrays.values():
        parts.append(np.ascontiguousarray(array).tobytes())
    return b"".join(parts)


def unpack_payload(blob: bytes) -> Tuple[Dict, Dict[str, np.ndarray]]:
    """Inverse of :func:`pack_payload`: ``(meta, arrays)`` with fresh arrays."""
    if blob[:4] != _MAGIC:
        raise ValueError(
            f"not a codec payload (magic {blob[:4]!r}, expected {_MAGIC!r})"
        )
    (head_len,) = struct.unpack("<I", blob[4:8])
    header = json.loads(blob[8 : 8 + head_len].decode())
    offset = 8 + head_len
    arrays: Dict[str, np.ndarray] = {}
    for spec in header["arrays"]:
        dtype = np.dtype(spec["dtype"])
        shape = tuple(spec["shape"])
        count = int(np.prod(shape, dtype=np.int64)) if shape else 1
        array = np.frombuffer(blob, dtype=dtype, count=count, offset=offset)
        arrays[spec["name"]] = array.reshape(shape).copy()
        offset += dtype.itemsize * count
    return header["meta"], arrays


def pack_state(state: State) -> bytes:
    """Pack a plain state dict losslessly (the identity container)."""
    return pack_payload({}, {name: np.asarray(v) for name, v in state.items()})


def unpack_state(blob: bytes) -> State:
    """Inverse of :func:`pack_state`."""
    return unpack_payload(blob)[1]


@dataclass(frozen=True)
class EncodedState:
    """One encoded update: codec name, payload bytes, modeled wire bits."""

    codec: str
    payload: bytes
    bits: float

    @property
    def nbytes(self) -> int:
        """Actual container size (≠ ``bits/8``; see module docstring)."""
        return len(self.payload)


# ----------------------------------------------------------------------
# Codec base class
# ----------------------------------------------------------------------
class Compressor:
    """Symmetric lossy codec over state/update dicts.

    ``encode`` produces an :class:`EncodedState`; ``decode`` reconstructs
    exactly the post-roundtrip values from the payload alone (every
    decode parameter travels in the header, so a default-constructed
    instance of the same codec decodes any peer's payload).
    ``roundtrip`` keeps the historical in-memory contract.
    """

    name = "abstract"

    def encode(self, update: State) -> EncodedState:
        raise NotImplementedError

    def decode(self, encoded: Union[EncodedState, bytes]) -> State:
        blob = encoded.payload if isinstance(encoded, EncodedState) else bytes(encoded)
        meta, arrays = unpack_payload(blob)
        codec = meta.get("codec")
        if codec != self.name:
            raise ValueError(
                f"payload was encoded by codec {codec!r}, not {self.name!r}"
            )
        return self._decode(meta, arrays)

    def _decode(self, meta: Dict, arrays: Dict[str, np.ndarray]) -> State:
        raise NotImplementedError

    def roundtrip(self, update: State) -> Tuple[State, float]:
        """Encode then decode: ``(post-roundtrip update, modeled bits)``."""
        encoded = self.encode(update)
        return self.decode(encoded), encoded.bits

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class IdentityCompressor(Compressor):
    """Lossless passthrough: raw buffers on the wire, 32 modeled bits/value."""

    name = "identity"

    def encode(self, update: State) -> EncodedState:
        arrays = {name: np.asarray(value) for name, value in update.items()}
        bits = sum(value.size for value in arrays.values()) * FLOAT_BITS
        payload = pack_payload({"codec": self.name}, arrays)
        return EncodedState(self.name, payload, float(bits))

    def _decode(self, meta, arrays):
        return dict(arrays)


class TopKCompressor(Compressor):
    """Keep the top ``fraction`` of update coordinates by magnitude.

    Wire format modelled as 32-bit values for survivors plus a 1-bit
    occupancy mask — the same convention the paper uses for Sub-FedAvg's
    masks, which keeps the comparison apples-to-apples.
    """

    name = "topk"

    def __init__(self, fraction: float = 0.1) -> None:
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        self.fraction = fraction

    def encode(self, update: State) -> EncodedState:
        magnitudes = np.concatenate([np.abs(v).ravel() for v in update.values()])
        threshold = _rank_threshold(magnitudes, 1.0 - self.fraction)
        arrays: Dict[str, np.ndarray] = {}
        shapes: Dict[str, List[int]] = {}
        kept = 0
        total = 0
        for name, value in update.items():
            value = np.asarray(value, dtype=np.float64)
            flat = value.ravel()
            indices = np.flatnonzero(np.abs(flat) > threshold)
            arrays[f"{name}/idx"] = indices.astype(np.int64)
            arrays[f"{name}/val"] = flat[indices]
            shapes[name] = list(value.shape)
            kept += int(indices.size)
            total += value.size
        bits = kept * FLOAT_BITS + total * MASK_BITS
        payload = pack_payload({"codec": self.name, "shapes": shapes}, arrays)
        return EncodedState(self.name, payload, float(bits))

    def _decode(self, meta, arrays):
        return _scatter_decode(meta["shapes"], arrays)


class RandomMaskCompressor(Compressor):
    """Random sparsification with unbiased rescaling (structured updates).

    Each coordinate survives independently with probability ``fraction``
    and is scaled by ``1/fraction`` so the expected update is unchanged.
    The mask stream lives encoder-side only; survivors travel explicitly,
    so decode needs no shared seed.
    """

    name = "randommask"

    def __init__(self, fraction: float = 0.1, seed: int = 0) -> None:
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        self.fraction = fraction
        self._rng = np.random.default_rng(seed)

    def encode(self, update: State) -> EncodedState:
        arrays: Dict[str, np.ndarray] = {}
        shapes: Dict[str, List[int]] = {}
        kept = 0
        total = 0
        for name, value in update.items():
            value = np.asarray(value, dtype=np.float64)
            mask = self._rng.random(value.shape) < self.fraction
            flat = (value * mask / self.fraction).ravel()
            indices = np.flatnonzero(mask.ravel())
            arrays[f"{name}/idx"] = indices.astype(np.int64)
            arrays[f"{name}/val"] = flat[indices]
            shapes[name] = list(value.shape)
            kept += int(indices.size)
            total += value.size
        bits = kept * FLOAT_BITS + total * MASK_BITS
        payload = pack_payload({"codec": self.name, "shapes": shapes}, arrays)
        return EncodedState(self.name, payload, float(bits))

    def _decode(self, meta, arrays):
        return _scatter_decode(meta["shapes"], arrays)


def _scatter_decode(
    shapes: Dict[str, List[int]], arrays: Dict[str, np.ndarray]
) -> State:
    """Rebuild dense tensors from (indices, values) sparse pairs."""
    decoded: State = {}
    for name, shape in shapes.items():
        shape = tuple(shape)
        size = int(np.prod(shape, dtype=np.int64)) if shape else 1
        flat = np.zeros(size, dtype=np.float64)
        flat[arrays[f"{name}/idx"]] = arrays[f"{name}/val"]
        decoded[name] = flat.reshape(shape)
    return decoded


class QuantizationCompressor(Compressor):
    """Uniform per-tensor quantization to ``bits`` bits per value.

    Codes travel as the narrowest unsigned integer type that holds
    ``2**bits - 1``; the per-tensor ``(low, span)`` range rides in the
    header, so decode is exact for the quantized values (encode→decode
    is bitwise-stable).
    """

    name = "quantize"

    def __init__(self, bits: int = 8) -> None:
        if not 1 <= bits <= 32:
            raise ValueError(f"bits must be in [1, 32], got {bits}")
        self.bits = bits
        self.levels = 2 ** bits - 1

    def _code_dtype(self) -> np.dtype:
        if self.bits <= 8:
            return np.dtype(np.uint8)
        if self.bits <= 16:
            return np.dtype(np.uint16)
        return np.dtype(np.uint32)

    def encode(self, update: State) -> EncodedState:
        arrays: Dict[str, np.ndarray] = {}
        tensors: Dict[str, Dict] = {}
        total_bits = 0.0
        for name, value in update.items():
            value = np.asarray(value, dtype=np.float64)
            low, high = float(value.min()), float(value.max())
            span = high - low
            if span == 0.0:
                # Constant tensor: quantization is degenerate, ship it raw.
                tensors[name] = {"raw": True}
                arrays[name] = value.copy()
            else:
                codes = np.round((value - low) / span * self.levels)
                tensors[name] = {"low": low, "span": span}
                arrays[name] = codes.astype(self._code_dtype())
            # b bits per value + two 32-bit floats (min/max) per tensor.
            total_bits += value.size * self.bits + 2 * FLOAT_BITS
        meta = {"codec": self.name, "levels": self.levels, "tensors": tensors}
        payload = pack_payload(meta, arrays)
        return EncodedState(self.name, payload, total_bits)

    def _decode(self, meta, arrays):
        levels = meta["levels"]
        decoded: State = {}
        for name, spec in meta["tensors"].items():
            if spec.get("raw"):
                decoded[name] = arrays[name]
            else:
                codes = arrays[name].astype(np.float64)
                decoded[name] = spec["low"] + codes / levels * spec["span"]
        return decoded


# ----------------------------------------------------------------------
# Codec registry + config section
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CompressorSpec:
    """One registry entry: a factory from config to codec instance."""

    name: str
    factory: Callable[["CompressionConfig"], Compressor]
    summary: str = ""


_REGISTRY: Dict[str, CompressorSpec] = {}


def register_compressor(name: str, *, summary: str = "") -> Callable:
    """Decorator adding a codec factory to the registry under ``name``.

    The factory receives the :class:`CompressionConfig` selecting it and
    returns a :class:`Compressor`; the decorated function is returned
    unchanged so it stays directly callable.
    """

    def decorator(factory: Callable) -> Callable:
        if name in _REGISTRY:
            raise ValueError(f"compressor {name!r} is already registered")
        doc = summary or (factory.__doc__ or "").strip().split("\n", 1)[0]
        _REGISTRY[name] = CompressorSpec(name=name, factory=factory, summary=doc)
        return factory

    return decorator


def get_compressor(name: str) -> CompressorSpec:
    """Look up one registered codec; raises ``KeyError`` for unknown names."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown compressor {name!r}; choose from {available_compressors()}"
        ) from None


def available_compressors() -> Tuple[str, ...]:
    """Registered codec names, in registration order."""
    return tuple(_REGISTRY)


def compressor_specs() -> Tuple[CompressorSpec, ...]:
    """All registry entries, in registration order."""
    return tuple(_REGISTRY.values())


def unregister_compressor(name: str) -> CompressorSpec:
    """Remove one entry (plugin teardown / test isolation); returns it."""
    try:
        return _REGISTRY.pop(name)
    except KeyError:
        raise KeyError(f"compressor {name!r} is not registered") from None


@dataclass(frozen=True)
class CompressionConfig:
    """The ``compression:`` config section: codec choice + its knobs.

    ``codec`` resolves through the registry; ``fraction`` parameterizes
    the sparsifying codecs (topk / randommask), ``bits`` the quantizer,
    ``seed`` the randommask stream.  Hash-gated on ``FederationConfig``:
    a config without a section keeps its historical ``stable_hash``.
    """

    codec: str = "identity"
    fraction: float = 0.1
    bits: int = 8
    seed: int = 0

    def __post_init__(self) -> None:
        get_compressor(self.codec)  # raises KeyError for unknown codecs


def build_compressor(
    config: Union[CompressionConfig, str, None] = None,
) -> Compressor:
    """Resolve a ``compression`` section (or codec name, or None) to a codec."""
    if config is None:
        config = CompressionConfig()
    elif isinstance(config, str):
        config = CompressionConfig(codec=config)
    return get_compressor(config.codec).factory(config)


def decode_state(encoded: Union[EncodedState, bytes]) -> State:
    """Decode any registered codec's payload by its self-describing header."""
    blob = encoded.payload if isinstance(encoded, EncodedState) else bytes(encoded)
    meta, _ = unpack_payload(blob)
    codec = build_compressor(CompressionConfig(codec=meta.get("codec", "identity")))
    return codec.decode(blob)


@register_compressor("identity", summary="lossless passthrough (32 modeled bits/value)")
def _build_identity(config: CompressionConfig) -> Compressor:
    return IdentityCompressor()


@register_compressor("topk", summary="largest-magnitude fraction of coordinates")
def _build_topk(config: CompressionConfig) -> Compressor:
    return TopKCompressor(config.fraction)


@register_compressor("randommask", summary="random sparsification, unbiased rescale")
def _build_randommask(config: CompressionConfig) -> Compressor:
    return RandomMaskCompressor(config.fraction, seed=config.seed)


@register_compressor("quantize", summary="uniform per-tensor b-bit quantization")
def _build_quantize(config: CompressionConfig) -> Compressor:
    return QuantizationCompressor(bits=config.bits)


# ----------------------------------------------------------------------
# Compressed-uplink trainer: a thin shim over the registry
# ----------------------------------------------------------------------
@register_trainer("fedavg-compressed", config_sections=("compression",))
class FedAvgCompressed(FedAvg):
    """FedAvg whose uplink carries compressed *updates* instead of states.

    Downlink stays full precision (the asymmetric-bandwidth setting of
    §2: uplink is the bottleneck).  The server round-trips each client's
    update through the configured codec and charges the modeled bit
    count.  The codec comes from the registry via the ``compression:``
    config section; ``compressor=`` accepts a prebuilt instance directly.
    """

    algorithm_name = "fedavg-compressed"

    def __init__(
        self,
        *args,
        compressor: Optional[Compressor] = None,
        compression: Union[CompressionConfig, Dict, None] = None,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        if isinstance(compression, dict):
            compression = CompressionConfig(**compression)
        self.compression = compression
        if compressor is None:
            compressor = build_compressor(compression)
        self.compressor = compressor

    def _round(self, round_index: int, sampled: List[int]) -> RoundRecord:
        started = self.round_participants(sampled)
        updates = self.execute(self._train_tasks(started))
        # Encode/decode server-side in sampled order: stochastic codecs
        # (RandomMaskCompressor) draw from one stream, so the reduction
        # order must not depend on the execution backend.
        decoded_updates = []
        uplink_bits = 0.0
        one_way_down = self.total_params * FLOAT_BITS / 8.0
        client_up = {}
        client_down = {}
        for update in updates:
            delta = {
                name: value - self.global_state[name]
                for name, value in update.state.items()
            }
            decoded, bits = self.compressor.roundtrip(delta)
            uplink_bits += bits
            client_up[update.client_id] = bits / 8.0
            client_down[update.client_id] = one_way_down
            decoded_updates.append(
                ClientUpdate(
                    client_index=update.client_index,
                    client_id=update.client_id,
                    state={
                        name: self.global_state[name] + decoded[name]
                        for name in decoded
                    },
                    num_examples=update.num_examples,
                    mean_loss=update.mean_loss,
                )
            )

        # Delegate to FedAvg's plan-aware aggregation over the *decoded*
        # states: deadline stragglers weigh zero, and carried async
        # arrivals land with their staleness discount (the in-flight
        # client's model still holds the state it uploaded).
        self._aggregate(decoded_updates)
        downlink = len(started) * one_way_down
        return RoundRecord(
            round_index=round_index,
            sampled_clients=sampled,
            train_loss=float(np.mean([update.mean_loss for update in updates])),
            uploaded_bytes=uplink_bits / 8.0,
            downloaded_bytes=downlink,
            client_uploaded_bytes=client_up,
            client_downloaded_bytes=client_down,
        )
