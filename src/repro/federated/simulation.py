"""Wall-clock modelling of federated rounds on edge hardware.

The paper motivates Sub-FedAvg with edge constraints: uplinks of ~1 MB/s
(§4.2.2) and compute-limited devices (§3).  This module converts a run
:class:`~repro.federated.metrics.History` into estimated wall-clock time
under explicit device profiles, so "rounds to accuracy" becomes the
deployment-relevant "seconds to accuracy":

* a :class:`~repro.systems.fleet.DeviceProfile` gives a device's conv
  throughput and link rates (defined in :mod:`repro.systems.fleet`,
  re-exported here for backward compatibility),
* :class:`WallClockModel` prices one round as the *slowest* sampled client
  (synchronous FL: the server waits for stragglers) plus server overhead.
  The client→device assignment is owned by a
  :class:`~repro.systems.fleet.Fleet` (the historical round-robin rule is
  the ``tiers`` fleet shape), and traffic is priced per client when the
  record carries a per-client breakdown — the even split over
  participants is only the documented fallback for dense-era records,
* :func:`time_to_accuracy` walks an accuracy curve and accumulates round
  times until the target is reached.

For richer semantics — deadline rounds, FedBuff-style async aggregation,
stragglers overlapping across rounds — use the event-driven
:class:`~repro.systems.rounds.FleetSimulator`; its ``synchronous`` round
policy reproduces this model's totals bit-for-bit (pinned in tests).
For live per-round annotation, wrap a :class:`WallClockModel` in a
:class:`~repro.federated.callbacks.WallClockCallback` (or a
:class:`~repro.systems.callback.FleetSimCallback` around a simulator).

The FLOP term uses the paper's conv-only counting convention, scaled by
the per-round number of local passes (epochs × examples × 3 for the
forward/backward pair).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Union

from ..systems.fleet import (  # noqa: F401  (re-exported public names)
    DEVICE_PROFILES,
    EDGE_PHONE,
    RASPBERRY_PI,
    WORKSTATION,
    DeviceProfile,
    Fleet,
)
from .metrics import History, RoundRecord


class WallClockModel:
    """Prices federated rounds in seconds under per-client device profiles."""

    def __init__(
        self,
        profiles: Union[Sequence[DeviceProfile], Fleet],
        flops_per_example: float,
        examples_per_round: float,
        server_overhead_seconds: float = 0.5,
    ) -> None:
        if isinstance(profiles, Fleet):
            fleet = profiles
        else:
            if not profiles:
                raise ValueError("need at least one device profile")
            fleet = Fleet(cycle=tuple(profiles))
        if flops_per_example <= 0 or examples_per_round <= 0:
            raise ValueError("flops_per_example and examples_per_round must be positive")
        self.fleet = fleet
        self.profiles = list(fleet.cycle)
        self.flops_per_example = flops_per_example
        self.examples_per_round = examples_per_round
        self.server_overhead_seconds = server_overhead_seconds

    def profile_for(self, client_id: int) -> DeviceProfile:
        """Deterministic client → device assignment (delegates to the fleet)."""
        return self.fleet.profile_for(client_id)

    def client_round_seconds(
        self, client_id: int, upload_bytes: float, download_bytes: float
    ) -> float:
        """One client's local time: download, compute, upload (sequential).

        A backward pass costs about twice the forward pass, so each
        training example is priced at 3× the inference FLOPs.
        """
        profile = self.profile_for(client_id)
        compute = (
            3.0 * self.flops_per_example * self.examples_per_round
        ) / profile.flops_per_second
        up = upload_bytes / profile.upload_bytes_per_second
        down = download_bytes / profile.download_bytes_per_second
        return compute + up + down

    def round_seconds(self, record: RoundRecord) -> float:
        """Synchronous-round time: the slowest sampled client plus overhead.

        Traffic comes from the record's per-client breakdown when present
        (Sub-FedAvg masks make per-client bytes genuinely different);
        records without one fall back to splitting the round totals
        evenly over participants — exact for the dense baselines, an
        approximation for per-client-sparse algorithms.
        """
        slowest = max(
            self.client_round_seconds(client_id, up, down)
            for client_id, (up, down) in record.per_client_traffic().items()
        )
        return slowest + self.server_overhead_seconds

    def total_seconds(self, history: History) -> float:
        return float(sum(self.round_seconds(record) for record in history.rounds))


def time_to_accuracy(
    history: History, model: WallClockModel, target: float
) -> Optional[float]:
    """Seconds of simulated wall-clock until mean accuracy reaches ``target``.

    Requires the run to have been executed with ``eval_every`` so rounds
    carry accuracy measurements; returns ``None`` if the target is never
    reached.
    """
    elapsed = 0.0
    for record in history.rounds:
        elapsed += model.round_seconds(record)
        if record.mean_accuracy is not None and record.mean_accuracy >= target:
            return elapsed
    return None


def compare_time_to_accuracy(
    histories: Dict[str, History], model: WallClockModel, target: float
) -> Dict[str, Optional[float]]:
    """Per-algorithm seconds-to-target table (the deployment-relevant Fig 3)."""
    return {
        name: time_to_accuracy(history, model, target)
        for name, history in histories.items()
    }
