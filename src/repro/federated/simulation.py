"""Wall-clock modelling of federated rounds on edge hardware.

The paper motivates Sub-FedAvg with edge constraints: uplinks of ~1 MB/s
(§4.2.2) and compute-limited devices (§3).  This module converts a run
:class:`~repro.federated.metrics.History` into estimated wall-clock time
under explicit device profiles, so "rounds to accuracy" becomes the
deployment-relevant "seconds to accuracy":

* a :class:`DeviceProfile` gives a device's conv throughput and link rates,
* :class:`WallClockModel` prices one round as the *slowest* sampled client
  (synchronous FL: the server waits for stragglers) plus server overhead,
* :func:`time_to_accuracy` walks an accuracy curve and accumulates round
  times until the target is reached.

For live (per-round, during the run) pricing instead of post-hoc analysis,
wrap a :class:`WallClockModel` in a
:class:`~repro.federated.callbacks.WallClockCallback` and pass it to
``Federation.run(callbacks=[...])`` — each ``RoundRecord`` then carries its
``wall_clock_seconds`` as the round completes.

The FLOP term uses the paper's conv-only counting convention, scaled by
the per-round number of local passes (epochs × examples × 3 for the
forward/backward pair).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence


from .metrics import History, RoundRecord


@dataclass(frozen=True)
class DeviceProfile:
    """Compute and network capabilities of one client device.

    Defaults approximate a mid-range phone with the paper's constrained
    uplink: 1 GFLOP/s effective conv throughput, 1 MB/s up, 8 MB/s down.
    """

    name: str = "edge-phone"
    flops_per_second: float = 1e9
    upload_bytes_per_second: float = 1e6
    download_bytes_per_second: float = 8e6

    def __post_init__(self) -> None:
        for field_name in (
            "flops_per_second",
            "upload_bytes_per_second",
            "download_bytes_per_second",
        ):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be positive")


EDGE_PHONE = DeviceProfile()
RASPBERRY_PI = DeviceProfile(
    name="raspberry-pi",
    flops_per_second=3e8,
    upload_bytes_per_second=2e6,
    download_bytes_per_second=2e6,
)
WORKSTATION = DeviceProfile(
    name="workstation",
    flops_per_second=5e10,
    upload_bytes_per_second=1.25e7,
    download_bytes_per_second=1.25e7,
)

#: Built-in profiles by name — how serialized configs reference a device
#: class (``ScenarioConfig(profiles=("edge-phone", "raspberry-pi"))``).
DEVICE_PROFILES: Dict[str, DeviceProfile] = {
    profile.name: profile for profile in (EDGE_PHONE, RASPBERRY_PI, WORKSTATION)
}


class WallClockModel:
    """Prices federated rounds in seconds under per-client device profiles."""

    def __init__(
        self,
        profiles: Sequence[DeviceProfile],
        flops_per_example: float,
        examples_per_round: float,
        server_overhead_seconds: float = 0.5,
    ) -> None:
        if not profiles:
            raise ValueError("need at least one device profile")
        if flops_per_example <= 0 or examples_per_round <= 0:
            raise ValueError("flops_per_example and examples_per_round must be positive")
        self.profiles = list(profiles)
        self.flops_per_example = flops_per_example
        self.examples_per_round = examples_per_round
        self.server_overhead_seconds = server_overhead_seconds

    def profile_for(self, client_id: int) -> DeviceProfile:
        """Deterministic client → device assignment (round-robin)."""
        return self.profiles[client_id % len(self.profiles)]

    def client_round_seconds(
        self, client_id: int, upload_bytes: float, download_bytes: float
    ) -> float:
        """One client's local time: download, compute, upload (sequential).

        A backward pass costs about twice the forward pass, so each
        training example is priced at 3× the inference FLOPs.
        """
        profile = self.profile_for(client_id)
        compute = (
            3.0 * self.flops_per_example * self.examples_per_round
        ) / profile.flops_per_second
        up = upload_bytes / profile.upload_bytes_per_second
        down = download_bytes / profile.download_bytes_per_second
        return compute + up + down

    def round_seconds(self, record: RoundRecord) -> float:
        """Synchronous-round time: the slowest sampled client plus overhead.

        Traffic in the record is summed over participants; it is split
        evenly here, which is exact for the dense baselines and a close
        approximation for Sub-FedAvg (per-client masks differ slightly).
        """
        participants = record.sampled_clients or [0]
        per_client_up = record.uploaded_bytes / len(participants)
        per_client_down = record.downloaded_bytes / len(participants)
        slowest = max(
            self.client_round_seconds(client_id, per_client_up, per_client_down)
            for client_id in participants
        )
        return slowest + self.server_overhead_seconds

    def total_seconds(self, history: History) -> float:
        return float(sum(self.round_seconds(record) for record in history.rounds))


def time_to_accuracy(
    history: History, model: WallClockModel, target: float
) -> Optional[float]:
    """Seconds of simulated wall-clock until mean accuracy reaches ``target``.

    Requires the run to have been executed with ``eval_every`` so rounds
    carry accuracy measurements; returns ``None`` if the target is never
    reached.
    """
    elapsed = 0.0
    for record in history.rounds:
        elapsed += model.round_seconds(record)
        if record.mean_accuracy is not None and record.mean_accuracy >= target:
            return elapsed
    return None


def compare_time_to_accuracy(
    histories: Dict[str, History], model: WallClockModel, target: float
) -> Dict[str, Optional[float]]:
    """Per-algorithm seconds-to-target table (the deployment-relevant Fig 3)."""
    return {
        name: time_to_accuracy(history, model, target)
        for name, history in histories.items()
    }
