"""The federated client: local SGD training, evaluation and pruning hooks.

A :class:`FederatedClient` owns a model replica, its local data views and —
for the Sub-FedAvg algorithms — a :class:`~repro.pruning.PruningController`.
The trainer drives it through the round protocol:

1. ``load_global(state)`` — download the global weights (the client's mask
   is re-applied, so it trains its personal subnetwork of the global model),
2. ``train_local()`` — E epochs of SGD; with a controller attached, mask
   snapshots are taken at the first/last epoch boundary and the paper's
   pruning gates run on the local validation accuracy,
3. ``state_dict()`` / ``mask`` — upload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

from ..data.dataset import Dataset
from ..data.loader import DataLoader, full_batch
from ..models.base import ConvNet
from ..nn import CrossEntropyLoss
from ..optim import SGD
from ..pruning import MaskSet, PruningController
from ..tensor import Tensor, no_grad
from ..data.partition import ClientData


@dataclass(frozen=True)
class LocalTrainConfig:
    """Local optimization hyper-parameters (paper §4.1 defaults)."""

    lr: float = 0.01
    momentum: float = 0.5
    weight_decay: float = 0.0
    batch_size: int = 10
    epochs: int = 5
    prox_mu: float = 0.0  # FedProx proximal coefficient (0 = plain SGD)
    mtl_lambda: float = 0.0  # MTL mean-regularization coefficient

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {self.epochs}")


@dataclass
class LocalTrainResult:
    """Outcome of one ``train_local`` call.

    ``num_examples`` counts the examples *actually processed* this call
    (epochs × dataset passes), so FedAvg-style weighting charges a client
    for the work it did: a straggler granted 0 epochs contributes weight 0
    instead of its full dataset size behind a stale state.
    """

    mean_loss: float
    num_examples: int
    val_accuracy: Optional[float] = None
    pruned_unstructured: bool = False
    pruned_structured: bool = False


class FederatedClient:
    """One participant in the federation."""

    def __init__(
        self,
        data: ClientData,
        model_fn: Callable[[], ConvNet],
        config: LocalTrainConfig,
        seed: int = 0,
    ) -> None:
        self.data = data
        self.client_id = data.client_id
        self.config = config
        self.model = model_fn()
        self.controller: Optional[PruningController] = None
        self._loss_fn = CrossEntropyLoss()
        self._loader = DataLoader(
            data.train,
            batch_size=config.batch_size,
            shuffle=True,
            seed=(seed, data.client_id),
        )
        # Reference weights for proximal / MTL regularizers, set per round.
        self._anchor: Optional[Dict[str, np.ndarray]] = None

    # ------------------------------------------------------------------
    # Mask plumbing
    # ------------------------------------------------------------------
    def attach_controller(self, controller: PruningController) -> None:
        """Install the Sub-FedAvg pruning state machine (uses this model)."""
        if controller.model is not self.model:
            raise ValueError("controller must wrap this client's model")
        self.controller = controller

    @property
    def mask(self) -> Optional[MaskSet]:
        """The client's committed personal keep-mask (None when not pruning)."""
        if self.controller is None:
            return None
        return self.controller.combined_mask()

    # ------------------------------------------------------------------
    # Round protocol
    # ------------------------------------------------------------------
    def load_global(self, state: Dict[str, np.ndarray]) -> None:
        """Download global weights; re-apply the personal mask if any."""
        self.model.load_state_dict(state)
        mask = self.mask
        if mask is not None:
            mask.apply_to_model(self.model)

    def load_partial(self, state: Dict[str, np.ndarray], names) -> None:
        """Download only the named entries (LG-FedAvg's shared layers)."""
        own = self.model.state_dict()
        for name in names:
            own[name] = state[name]
        self.model.load_state_dict(own)

    def set_anchor(self, state: Optional[Dict[str, np.ndarray]]) -> None:
        """Reference point for proximal (FedProx) / mean (MTL) regularizers."""
        self._anchor = None if state is None else {k: v.copy() for k, v in state.items()}

    def state_dict(self) -> Dict[str, np.ndarray]:
        return self.model.state_dict()

    # ------------------------------------------------------------------
    # State snapshot / restore (side-effect-free evaluation, backend sync)
    # ------------------------------------------------------------------
    def rng_state(self):
        """Picklable snapshot of the client's private data-order stream."""
        return self._loader.get_rng_state()

    def set_rng_state(self, state) -> None:
        self._loader.set_rng_state(state)

    def snapshot_state(self) -> Dict[str, object]:
        """Capture everything local work can mutate, so it can be undone:
        model weights, the data-order RNG stream and (when pruning is
        attached) the controller's committed masks/rates."""
        snapshot: Dict[str, object] = {
            "model": self.model.state_dict(),
            "rng": self.rng_state(),
        }
        if self.controller is not None:
            snapshot["controller"] = self.controller.state_dict()
        return snapshot

    def restore_state(self, snapshot: Dict[str, object]) -> None:
        """Undo any mutation since the matching :meth:`snapshot_state`."""
        self.model.load_state_dict(snapshot["model"])
        self.set_rng_state(snapshot["rng"])
        if "controller" in snapshot and self.controller is not None:
            self.controller.load_state_dict(snapshot["controller"])

    # ------------------------------------------------------------------
    # Local training
    # ------------------------------------------------------------------
    def train_local(self, epochs: Optional[int] = None) -> LocalTrainResult:
        """Run local SGD for ``epochs`` (defaults to the configured count).

        When a pruning controller is attached this performs the full
        ClientUpdate of Algorithms 1-2: snapshot candidate masks at the end
        of the first and the last epoch, evaluate on local validation data,
        and let the controller's gates decide whether to commit.
        """
        epochs = epochs if epochs is not None else self.config.epochs
        self.model.train()
        optimizer = SGD(
            list(self.model.named_parameters()),
            lr=self.config.lr,
            momentum=self.config.momentum,
            weight_decay=self.config.weight_decay,
        )
        mask = self.mask
        if mask is not None:
            optimizer.set_masks(mask.as_grad_masks())

        total_loss = 0.0
        total_examples = 0
        first_snapshot = None
        for epoch in range(epochs):
            for images, labels in self._loader:
                optimizer.zero_grad()
                logits = self.model(Tensor(images))
                loss = self._loss_fn(logits, labels)
                loss.backward()
                self._apply_regularizers()
                optimizer.step()
                total_loss += loss.item() * len(labels)
                total_examples += len(labels)
            if epoch == 0 and self.controller is not None:
                first_snapshot = self.controller.snapshot()

        result = LocalTrainResult(
            mean_loss=total_loss / max(total_examples, 1),
            num_examples=total_examples,
        )

        if self.controller is not None:
            last_snapshot = self.controller.snapshot()
            val_accuracy = self.evaluate(self.data.val) if len(self.data.val) else 1.0
            result.val_accuracy = val_accuracy
            decision = self.controller.update(val_accuracy, first_snapshot, last_snapshot)
            result.pruned_unstructured = decision.unstructured_applied
            result.pruned_structured = decision.structured_applied
            new_mask = self.controller.combined_mask()
            new_mask.apply_to_model(self.model)
        return result

    def _apply_regularizers(self) -> None:
        """Add proximal/MTL gradient terms in place (after ``backward``)."""
        if self._anchor is None:
            return
        coefficient = self.config.prox_mu + self.config.mtl_lambda
        if coefficient == 0.0:
            return
        for name, param in self.model.named_parameters():
            if name in self._anchor and param.grad is not None:
                param.grad = param.grad + coefficient * (param.data - self._anchor[name])

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, dataset: Optional[Dataset] = None, batch_size: int = 256) -> float:
        """Accuracy of the current personal model on ``dataset`` (default: test)."""
        dataset = dataset if dataset is not None else self.data.test
        if len(dataset) == 0:
            return 0.0
        self.model.eval()
        correct = 0
        images, labels = full_batch(dataset)
        with no_grad():
            for start in range(0, len(labels), batch_size):
                chunk = images[start : start + batch_size]
                predictions = self.model(Tensor(chunk)).data.argmax(axis=1)
                correct += int((predictions == labels[start : start + batch_size]).sum())
        self.model.train()
        return correct / len(labels)

    def test_accuracy(self) -> float:
        return self.evaluate(self.data.test)
