"""Participation scenarios: the sampler registry and ``ScenarioConfig``.

The third scenario axis (after dataset and partition) is *who shows up
each round*.  This module mirrors the trainer and partitioner registries:
a participation model registers a factory with :func:`register_sampler`
and is selected per run via the ``scenario`` section of
:class:`~repro.federated.builder.FederationConfig` — no edits to the
builder or trainers:

>>> from repro.federated.scenario import register_sampler
>>> @register_sampler("every-other-round")
... def every_other(num_clients, sample_fraction, seed, scenario):
...     ...  # return a ClientSampler-compatible object

Shipped models: ``uniform`` (the paper's protocol), ``fixed`` (a pinned
subset), ``availability`` (per-client participation probabilities plus
i.i.d. dropout — see
:class:`~repro.federated.sampler.AvailabilitySampler`) and ``diurnal``
(day/night participation cycles driven by simulated time — see
:class:`~repro.federated.sampler.DiurnalSampler`).

The scenario also names the run's *fleet* — which hardware each client
is, resolved through the :func:`~repro.systems.fleet.register_fleet`
registry.  The fleet is shared by everything device-aware: the
availability sampler's profile map, the legacy
:class:`~repro.federated.simulation.WallClockModel`, and the
:class:`~repro.systems.rounds.FleetSimulator` configured by the
``systems`` section.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from ..systems.fleet import Fleet, build_fleet, get_fleet
from .registry import _first_doc_line
from .sampler import (
    AvailabilitySampler,
    ClientSampler,
    DiurnalSampler,
    FixedSampler,
)


@dataclass(frozen=True)
class ScenarioConfig:
    """Declarative description of the participation model of one run.

    Serializes as the ``scenario`` section of a
    :class:`~repro.federated.builder.FederationConfig`.  The default is the
    paper's uniform sampling, so a config without a ``scenario`` section
    (every pre-scenario payload) behaves exactly as before.

    The ``availability`` model reads ``participation`` (±
    ``participation_spread``) and ``dropout``, or — when set — the explicit
    ``participation_probs`` (one probability per client), or the fleet's
    device assignment with ``profile_participation`` mapping each device
    class name to a probability.  ``fixed_clients`` pins the ``fixed``
    model's subset.  The ``diurnal`` model reads ``participation``,
    ``diurnal_amplitude``, ``diurnal_period_seconds`` and
    ``diurnal_round_seconds``.  Third-party samplers read whichever
    fields they need.

    ``fleet`` selects the client→device assignment shape from the
    :func:`~repro.systems.fleet.register_fleet` registry: ``tiers`` (the
    default — ``profiles`` assigned round-robin, the historical rule),
    ``uniform``, ``profile-list`` (explicit per-client
    ``client_profiles``), or ``hierarchical`` (two-tier: clients upload
    through ``regions`` edge cells sharing
    ``region_uplink_bytes_per_second`` of backhaul each).
    """

    sampler: str = "uniform"
    participation: float = 1.0
    participation_spread: float = 0.0
    dropout: float = 0.0
    fixed_clients: Tuple[int, ...] = ()
    participation_probs: Tuple[float, ...] = ()
    profiles: Tuple[str, ...] = ()
    profile_participation: Tuple[Tuple[str, float], ...] = ()
    fleet: str = "tiers"
    client_profiles: Tuple[str, ...] = ()
    diurnal_amplitude: float = 0.8
    diurnal_period_seconds: float = 86400.0
    diurnal_round_seconds: float = 600.0
    regions: int = 0  # hierarchical fleet: number of edge cells (0 = unset)
    region_uplink_bytes_per_second: float = 0.0  # shared backhaul per cell

    def __post_init__(self) -> None:
        # JSON deserialization hands us lists; normalize to the hashable form.
        if not isinstance(self.fixed_clients, tuple):
            object.__setattr__(
                self, "fixed_clients", tuple(int(i) for i in self.fixed_clients)
            )
        if not isinstance(self.participation_probs, tuple):
            object.__setattr__(
                self,
                "participation_probs",
                tuple(float(p) for p in self.participation_probs),
            )
        if not isinstance(self.profiles, tuple):
            object.__setattr__(self, "profiles", tuple(self.profiles))
        if not isinstance(self.client_profiles, tuple):
            object.__setattr__(self, "client_profiles", tuple(self.client_profiles))
        # Accept the natural mapping spelling ({"edge-phone": 0.2}) as well
        # as pair sequences; canonicalize to name-sorted tuples so equal
        # mappings compare (and hash) equal regardless of insertion order.
        raw = self.profile_participation
        items = raw.items() if isinstance(raw, Mapping) else raw
        pairs = tuple(sorted((str(name), float(prob)) for name, prob in items))
        if pairs != self.profile_participation:
            object.__setattr__(self, "profile_participation", pairs)
        if not 0.0 < self.participation <= 1.0:
            raise ValueError(
                f"participation must be in (0, 1], got {self.participation}"
            )
        if self.participation_spread < 0.0:
            raise ValueError(
                f"participation_spread must be >= 0, got {self.participation_spread}"
            )
        if not 0.0 <= self.dropout < 1.0:
            raise ValueError(f"dropout must be in [0, 1), got {self.dropout}")
        if not 0.0 <= self.diurnal_amplitude <= 1.0:
            raise ValueError(
                f"diurnal_amplitude must be in [0, 1], got {self.diurnal_amplitude}"
            )
        if self.diurnal_period_seconds <= 0 or self.diurnal_round_seconds <= 0:
            raise ValueError(
                "diurnal_period_seconds and diurnal_round_seconds must be positive"
            )
        if self.regions < 0:
            raise ValueError(f"regions must be >= 0, got {self.regions}")
        if self.region_uplink_bytes_per_second < 0:
            raise ValueError(
                "region_uplink_bytes_per_second must be >= 0, got "
                f"{self.region_uplink_bytes_per_second}"
            )
        get_fleet(self.fleet)  # raises KeyError for unknown fleet shapes

    def build_fleet(self, num_clients: int) -> Fleet:
        """The client→device assignment this scenario describes."""
        return build_fleet(self, num_clients)


@dataclass(frozen=True)
class SamplerSpec:
    """One registry entry: the factory plus its description.

    ``factory(num_clients, sample_fraction, seed, scenario)`` must return
    an object with the :class:`~repro.federated.sampler.ClientSampler`
    interface (``sample()`` and ``clients_per_round``).
    """

    name: str
    factory: Callable[..., ClientSampler]
    summary: str = ""


_REGISTRY: Dict[str, SamplerSpec] = {}


def register_sampler(name: str, *, summary: str = "") -> Callable:
    """Decorator adding a sampler factory to the registry under ``name``."""

    def decorator(factory: Callable) -> Callable:
        if name in _REGISTRY:
            raise ValueError(f"sampler {name!r} is already registered")
        doc = summary or _first_doc_line(factory)
        _REGISTRY[name] = SamplerSpec(name=name, factory=factory, summary=doc)
        return factory

    return decorator


def get_sampler(name: str) -> SamplerSpec:
    """Look up one registered sampler; raises ``KeyError`` for unknown names."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown sampler {name!r}; choose from {available_samplers()}"
        ) from None


def available_samplers() -> Tuple[str, ...]:
    """Registered sampler names, in registration order."""
    return tuple(_REGISTRY)


def sampler_specs() -> Tuple[SamplerSpec, ...]:
    """All sampler registry entries, in registration order."""
    return tuple(_REGISTRY.values())


def unregister_sampler(name: str) -> SamplerSpec:
    """Remove one entry (plugin teardown / test isolation); returns it."""
    try:
        return _REGISTRY.pop(name)
    except KeyError:
        raise KeyError(f"sampler {name!r} is not registered") from None


def build_sampler(
    scenario: ScenarioConfig,
    num_clients: int,
    sample_fraction: float,
    seed: int,
) -> ClientSampler:
    """Instantiate the configured participation model via the registry."""
    return get_sampler(scenario.sampler).factory(
        num_clients, sample_fraction, seed, scenario
    )


@register_sampler("uniform", summary="uniform k = max(1, K*N) draw (paper protocol)")
def _uniform_sampler(
    num_clients: int, sample_fraction: float, seed: int, scenario: ScenarioConfig
) -> ClientSampler:
    return ClientSampler(num_clients, sample_fraction, seed=seed)


@register_sampler("fixed", summary="pinned client subset every round")
def _fixed_sampler(
    num_clients: int, sample_fraction: float, seed: int, scenario: ScenarioConfig
) -> FixedSampler:
    # An empty fixed_clients pins the whole federation.
    clients = scenario.fixed_clients or tuple(range(num_clients))
    return FixedSampler(clients, num_clients=num_clients)


@register_sampler(
    "availability",
    summary="per-client participation probabilities + per-round dropout",
)
def _availability_sampler(
    num_clients: int, sample_fraction: float, seed: int, scenario: ScenarioConfig
) -> AvailabilitySampler:
    # Only hand the sampler a fleet when the scenario actually describes
    # one — otherwise the spread-based probability draw applies.
    fleet = None
    if scenario.profiles or scenario.client_profiles:
        fleet = scenario.build_fleet(num_clients)
    return AvailabilitySampler(
        num_clients,
        sample_fraction,
        seed=seed,
        participation=scenario.participation,
        participation_spread=scenario.participation_spread,
        dropout=scenario.dropout,
        participation_probs=scenario.participation_probs or None,
        fleet=fleet,
        profile_participation=dict(scenario.profile_participation) or None,
    )


@register_sampler(
    "diurnal",
    summary="day/night participation cycles driven by simulated time",
)
def _diurnal_sampler(
    num_clients: int, sample_fraction: float, seed: int, scenario: ScenarioConfig
) -> DiurnalSampler:
    return DiurnalSampler(
        num_clients,
        sample_fraction,
        seed=seed,
        participation=scenario.participation,
        amplitude=scenario.diurnal_amplitude,
        period_seconds=scenario.diurnal_period_seconds,
        round_seconds=scenario.diurnal_round_seconds,
    )
