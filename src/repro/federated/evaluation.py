"""Evaluation metrics beyond mean accuracy.

The paper reports "average accuracy across all clients"; a personalization
method's real story also lives in the *distribution* over clients — a
global model can have fine mean accuracy while starving the clients whose
data it underserves (exactly FedAvg's failure mode in Table 1).  This
module provides per-class metrics and a client-fairness report used by the
fairness benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from ..data.loader import full_batch
from ..tensor import Tensor, no_grad


def confusion_matrix(
    predictions: np.ndarray, targets: np.ndarray, num_classes: int
) -> np.ndarray:
    """Counts matrix ``M[i, j]`` = examples of true class i predicted j."""
    predictions = np.asarray(predictions)
    targets = np.asarray(targets)
    if predictions.shape != targets.shape:
        raise ValueError("predictions and targets must have the same shape")
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (targets, predictions), 1)
    return matrix


def per_class_accuracy(matrix: np.ndarray) -> np.ndarray:
    """Recall per class from a confusion matrix (NaN for absent classes)."""
    totals = matrix.sum(axis=1)
    with np.errstate(invalid="ignore", divide="ignore"):
        return np.where(totals > 0, np.diag(matrix) / totals, np.nan)


def model_confusion(model, dataset, num_classes: int, batch_size: int = 256) -> np.ndarray:
    """Confusion matrix of ``model`` over ``dataset`` (eval mode)."""
    model.eval()
    images, labels = full_batch(dataset)
    predictions = np.empty(len(labels), dtype=np.int64)
    with no_grad():
        for start in range(0, len(labels), batch_size):
            chunk = images[start : start + batch_size]
            predictions[start : start + len(chunk)] = (
                model(Tensor(chunk)).data.argmax(axis=1)
            )
    model.train()
    return confusion_matrix(predictions, labels, num_classes)


@dataclass(frozen=True)
class FairnessReport:
    """Summary of a per-client accuracy distribution."""

    mean: float
    std: float
    minimum: float
    maximum: float
    percentile_10: float
    percentile_90: float
    below_half: int  # clients under 50% accuracy — the "left behind" count

    @classmethod
    def from_accuracies(cls, accuracies: Mapping[int, float]) -> "FairnessReport":
        if not accuracies:
            raise ValueError("no client accuracies to summarize")
        values = np.asarray(list(accuracies.values()), dtype=np.float64)
        return cls(
            mean=float(values.mean()),
            std=float(values.std()),
            minimum=float(values.min()),
            maximum=float(values.max()),
            percentile_10=float(np.percentile(values, 10)),
            percentile_90=float(np.percentile(values, 90)),
            below_half=int((values < 0.5).sum()),
        )

    def describe(self) -> str:
        return (
            f"mean={self.mean:.3f} std={self.std:.3f} "
            f"min={self.minimum:.3f} p10={self.percentile_10:.3f} "
            f"p90={self.percentile_90:.3f} max={self.maximum:.3f} "
            f"clients<50%: {self.below_half}"
        )


def fairness_report(history) -> FairnessReport:
    """Fairness summary of a finished run's per-client accuracies."""
    return FairnessReport.from_accuracies(history.final_per_client_accuracy)
