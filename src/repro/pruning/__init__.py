"""Pruning: masks, unstructured/structured derivation, client-side gating."""

from .mask import MaskSet, hamming_distance
from .unstructured import magnitude_mask, random_mask, sparsity_of
from .structured import (
    ChannelMask,
    ReductionReport,
    bn_scale_channel_mask,
    conv_spatial_sizes,
    expand_channel_mask,
    reduction_report,
)
from .compact import compact_model, compaction_summary
from .sparse import (
    SparsePayload,
    decode_state,
    encode_state,
    payload_bytes,
    upload_size_bytes,
)
from .controller import (
    MaskSnapshot,
    PruneDecision,
    PruningController,
    StructuredConfig,
    UnstructuredConfig,
)

__all__ = [
    "MaskSet",
    "hamming_distance",
    "magnitude_mask",
    "random_mask",
    "sparsity_of",
    "ChannelMask",
    "bn_scale_channel_mask",
    "expand_channel_mask",
    "reduction_report",
    "conv_spatial_sizes",
    "ReductionReport",
    "PruningController",
    "UnstructuredConfig",
    "StructuredConfig",
    "MaskSnapshot",
    "PruneDecision",
    "compact_model",
    "compaction_summary",
    "SparsePayload",
    "encode_state",
    "decode_state",
    "payload_bytes",
    "upload_size_bytes",
]
