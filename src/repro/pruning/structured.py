"""Structured (channel-level) pruning via batch-norm scaling factors.

Follows the network-slimming recipe the paper adopts (Liu et al. 2017,
§3.5 "Structured Pruning"): the absolute value of each BN scale γ indicates
its channel's importance, and the pruning threshold is a percentile over
*all* scaling factors in the network.  A pruned channel removes:

* the producing convolution's filter (weight row + bias entry),
* the BN scale/shift for that channel,
* the consuming convolution's corresponding input slice — or, when the
  channel feeds the flattened classifier, the corresponding input columns
  of the first fully connected layer.

Masks keep tensors dense (pruned coordinates are zeros); FLOP and parameter
reductions are computed analytically from the channel census, which is how
the paper reports Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Mapping, Optional

import numpy as np

from ..models.base import ConvNet
from .mask import MaskSet


class ChannelMask:
    """Per-BN-layer boolean keep vectors (True = channel kept)."""

    def __init__(self, masks: Optional[Mapping[str, np.ndarray]] = None) -> None:
        self._masks: Dict[str, np.ndarray] = {}
        if masks:
            for name, mask in masks.items():
                self[name] = mask

    def __setitem__(self, bn_name: str, mask: np.ndarray) -> None:
        self._masks[bn_name] = np.asarray(mask, dtype=bool)

    def __getitem__(self, bn_name: str) -> np.ndarray:
        return self._masks[bn_name]

    def __contains__(self, bn_name: str) -> bool:
        return bn_name in self._masks

    def __iter__(self) -> Iterator[str]:
        return iter(self._masks)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ChannelMask):
            return NotImplemented
        if set(self._masks) != set(other._masks):
            return False
        return all(np.array_equal(self._masks[k], other._masks[k]) for k in self._masks)

    def items(self):
        return self._masks.items()

    def copy(self) -> "ChannelMask":
        return ChannelMask({name: mask.copy() for name, mask in self._masks.items()})

    def kept_channels(self) -> int:
        return int(sum(mask.sum() for mask in self._masks.values()))

    def total_channels(self) -> int:
        return int(sum(mask.size for mask in self._masks.values()))

    def sparsity(self) -> float:
        total = self.total_channels()
        if total == 0:
            return 0.0
        return 1.0 - self.kept_channels() / total

    def intersect(self, other: "ChannelMask") -> "ChannelMask":
        result = ChannelMask()
        for name in set(self._masks) | set(other._masks):
            a = self._masks.get(name)
            b = other._masks.get(name)
            if a is None or b is None:
                result[name] = (a if a is not None else b).copy()
            else:
                result[name] = a & b
        return result

    def distance(self, other: "ChannelMask") -> float:
        """Normalized Hamming distance over all channels (the paper's Δs)."""
        names = set(self._masks) | set(other._masks)
        if not names:
            return 0.0
        differing = 0
        total = 0
        for name in names:
            a = self._masks.get(name)
            b = other._masks.get(name)
            if a is None:
                a = np.ones_like(b)
            if b is None:
                b = np.ones_like(a)
            differing += int((a != b).sum())
            total += a.size
        return differing / total

    @classmethod
    def dense_for(cls, model: ConvNet) -> "ChannelMask":
        masks = {}
        for bn_name, count in model.channel_census():
            masks[bn_name] = np.ones(count, dtype=bool)
        return cls(masks)


def bn_scale_channel_mask(
    model: ConvNet,
    rate: float,
    previous: Optional[ChannelMask] = None,
    min_channels: int = 1,
) -> ChannelMask:
    """Derive a channel keep-mask pruning the lowest-|γ| ``rate`` fraction.

    The threshold is a single percentile across every BN scale in the model
    (the paper: "the pruning threshold is determined by a percentile among
    all scaling factors").  ``min_channels`` channels are always retained in
    each layer so the network never disconnects — when thresholding would
    remove a whole layer, its largest-|γ| channels are resurrected.
    """
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"channel pruning rate must be in [0, 1), got {rate}")
    modules = dict(model.named_modules())
    gammas = {}
    for unit in model.conv_units:
        gammas[unit.bn] = np.abs(modules[unit.bn].weight.data)

    all_values = np.concatenate([values.ravel() for values in gammas.values()])
    k = int(np.floor(rate * all_values.size))
    if k <= 0:
        threshold = -np.inf
    elif k >= all_values.size:
        threshold = float(all_values.max())
    else:
        threshold = float(np.partition(all_values, k - 1)[k - 1])

    result = ChannelMask()
    for bn_name, values in gammas.items():
        keep = values > threshold
        if previous is not None and bn_name in previous:
            keep = keep & previous[bn_name]
        if keep.sum() < min_channels:
            # Resurrect the strongest channels to keep the layer alive.
            order = np.argsort(values)[::-1]
            keep = np.zeros_like(keep)
            keep[order[:min_channels]] = True
            if previous is not None and bn_name in previous:
                # Respect monotonicity against the committed mask if possible.
                allowed = previous[bn_name]
                if allowed.sum() >= min_channels:
                    candidates = order[allowed[order]]
                    keep = np.zeros_like(keep)
                    keep[candidates[:min_channels]] = True
        result[bn_name] = keep
    return result


def expand_channel_mask(model: ConvNet, channels: ChannelMask) -> MaskSet:
    """Expand per-channel keeps into parameter-level masks.

    Covers, for each conv unit: the conv weight/bias rows, the BN γ/β, the
    next conv's input columns, and — for the final unit — the first FC
    layer's input columns corresponding to the flattened feature map.
    """
    params = dict(model.named_parameters())
    masks: Dict[str, np.ndarray] = {}

    def ensure(name: str) -> np.ndarray:
        if name not in masks:
            masks[name] = np.ones(params[name].shape)
        return masks[name]

    for unit in model.conv_units:
        keep = channels[unit.bn].astype(np.float64)
        conv_weight = ensure(f"{unit.conv}.weight")
        conv_weight *= keep[:, None, None, None]
        if f"{unit.conv}.bias" in params:
            ensure(f"{unit.conv}.bias")
            masks[f"{unit.conv}.bias"] *= keep
        ensure(f"{unit.bn}.weight")
        masks[f"{unit.bn}.weight"] *= keep
        ensure(f"{unit.bn}.bias")
        masks[f"{unit.bn}.bias"] *= keep

        if unit.next_conv is not None:
            next_weight = ensure(f"{unit.next_conv}.weight")
            next_weight *= keep[None, :, None, None]
        elif model.first_fc is not None:
            if unit.spatial is None:
                raise ValueError(
                    f"conv unit {unit.conv} feeds the classifier but has no "
                    "spatial size; set ConvUnit.spatial"
                )
            fc_weight = ensure(f"{model.first_fc}.weight")
            per_channel = unit.spatial * unit.spatial
            expected = keep.size * per_channel
            if fc_weight.shape[1] != expected:
                raise ValueError(
                    f"{model.first_fc}.weight expects {fc_weight.shape[1]} inputs "
                    f"but channel map implies {expected}"
                )
            column_keep = np.repeat(keep, per_channel)
            fc_weight *= column_keep[None, :]

    return MaskSet(masks)


@dataclass(frozen=True)
class ReductionReport:
    """Analytic FLOP / parameter reduction from a channel mask."""

    dense_flops: int
    pruned_flops: int
    dense_params: int
    pruned_params: int

    @property
    def flop_reduction(self) -> float:
        """Speed-up factor, e.g. 2.4 means 2.4× fewer conv FLOPs."""
        if self.pruned_flops == 0:
            return float("inf")
        return self.dense_flops / self.pruned_flops

    @property
    def param_reduction(self) -> float:
        """Fraction of parameters removed (paper's Table 2 convention)."""
        if self.dense_params == 0:
            return 0.0
        return 1.0 - self.pruned_params / self.dense_params


def conv_spatial_sizes(model: ConvNet, input_size: int) -> Dict[str, int]:
    """Output spatial side of each conv, assuming conv(valid) + 2×2 pool.

    Matches both paper architectures (conv5×5 stride 1 no padding, each
    followed by 2×2 max pooling).  Models with a different layout can
    override ``ConvNet.conv_spatial_sizes``.
    """
    override = getattr(model, "conv_spatial_sizes", None)
    if callable(override):
        return override(input_size)
    modules = dict(model.named_modules())
    sizes = {}
    size = input_size
    for unit in model.conv_units:
        conv = modules[unit.conv]
        size = (size + 2 * conv.padding - conv.kernel_size) // conv.stride + 1
        sizes[unit.conv] = size
        size //= 2  # the 2x2 max pool that follows every conv in the paper
    return sizes


def reduction_report(
    model: ConvNet, channels: Optional[ChannelMask], input_size: int
) -> ReductionReport:
    """Compute conv-FLOP and total-parameter reduction for a channel mask.

    FLOPs follow the paper's §4.2.3 convention: convolution operations only
    (BN/pooling ignored), counted as multiply-accumulates:
    ``out_h * out_w * k^2 * in_channels * out_channels``.
    """
    modules = dict(model.named_modules())
    spatial = conv_spatial_sizes(model, input_size)

    dense_flops = 0
    pruned_flops = 0
    dense_params = model.num_parameters()
    removed_params = 0

    prev_keep: Optional[int] = None
    prev_total: Optional[int] = None
    for unit in model.conv_units:
        conv = modules[unit.conv]
        out_side = spatial[unit.conv]
        in_total = conv.in_channels if prev_total is None else prev_total
        in_keep = conv.in_channels if prev_keep is None else prev_keep
        out_total = conv.out_channels
        if channels is not None and unit.bn in channels:
            out_keep = int(channels[unit.bn].sum())
        else:
            out_keep = out_total
        k2 = conv.kernel_size ** 2
        area = out_side * out_side
        dense_flops += area * k2 * in_total * out_total
        pruned_flops += area * k2 * in_keep * out_keep
        # Parameter removal: conv weights whose row or column is gone.
        dense_w = k2 * in_total * out_total
        kept_w = k2 * in_keep * out_keep
        removed_params += dense_w - kept_w
        removed_params += out_total - out_keep  # conv bias
        removed_params += 2 * (out_total - out_keep)  # bn gamma/beta
        if unit.next_conv is None and model.first_fc is not None and unit.spatial:
            per_channel = unit.spatial ** 2
            fc = modules[model.first_fc]
            removed_params += (out_total - out_keep) * per_channel * fc.out_features
        prev_keep, prev_total = out_keep, out_total

    return ReductionReport(
        dense_flops=dense_flops,
        pruned_flops=pruned_flops,
        dense_params=dense_params,
        pruned_params=dense_params - removed_params,
    )
