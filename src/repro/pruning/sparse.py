"""Wire-format encoding of pruned states.

The communication cost model (§4.2.2) prices a Sub-FedAvg upload as 32-bit
floats for kept coordinates plus a 1-bit mask.  This module actually
*builds* that encoding — packed mask bits plus a dense value vector — so
the cost model's byte counts are grounded in a real, round-trippable wire
format rather than arithmetic alone
(``tests/pruning/test_sparse.py`` asserts the sizes agree).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

import numpy as np

from .mask import MaskSet

State = Dict[str, np.ndarray]


@dataclass
class SparsePayload:
    """One tensor's encoded form: packed mask bits + kept values."""

    shape: Tuple[int, ...]
    packed_mask: np.ndarray  # uint8, ceil(size/8) bytes
    values: np.ndarray  # float32, one per kept coordinate

    @property
    def num_bytes(self) -> int:
        return self.packed_mask.nbytes + self.values.nbytes


def encode_state(state: Mapping[str, np.ndarray], mask: MaskSet) -> Dict[str, SparsePayload]:
    """Encode the masked tensors of ``state`` (uncovered tensors are skipped).

    Kept values are cast to float32 — the 32-bit B of the paper's cost
    formula — which is the only lossy step.
    """
    payloads: Dict[str, SparsePayload] = {}
    for name in mask.names():
        value = np.asarray(state[name])
        keep = mask[name].astype(bool)
        if keep.shape != value.shape:
            raise ValueError(f"mask/value shape mismatch for {name!r}")
        flat_keep = keep.ravel()
        payloads[name] = SparsePayload(
            shape=value.shape,
            packed_mask=np.packbits(flat_keep),
            values=value.ravel()[flat_keep].astype(np.float32),
        )
    return payloads


def decode_state(payloads: Mapping[str, SparsePayload]) -> State:
    """Reconstruct dense tensors; pruned coordinates come back as zeros."""
    state: State = {}
    for name, payload in payloads.items():
        size = int(np.prod(payload.shape))
        keep = np.unpackbits(payload.packed_mask)[:size].astype(bool)
        if int(keep.sum()) != payload.values.size:
            raise ValueError(
                f"corrupt payload for {name!r}: mask keeps {int(keep.sum())} "
                f"but {payload.values.size} values present"
            )
        dense = np.zeros(size, dtype=np.float64)
        dense[keep] = payload.values
        state[name] = dense.reshape(payload.shape)
    return state


def payload_bytes(payloads: Mapping[str, SparsePayload]) -> int:
    """Total wire size of an encoded upload."""
    return sum(payload.num_bytes for payload in payloads.values())


def upload_size_bytes(state: Mapping[str, np.ndarray], mask: MaskSet) -> int:
    """Wire size of a client upload without materializing the payloads.

    Matches ``encode_state`` exactly: 4 bytes per kept value plus the
    packed mask (``ceil(size / 8)`` bytes per tensor).
    """
    total = 0
    for name in mask.names():
        keep = mask[name]
        total += int(keep.sum()) * 4
        total += (keep.size + 7) // 8
    return total
