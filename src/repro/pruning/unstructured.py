"""Unstructured (parameter-level) magnitude pruning.

Implements the mask-derivation step of Algorithm 1: given a pruning rate
``r``, assign 0 to the lowest ``r``-fraction of parameter magnitudes and 1
to the rest.  Biases and batch-norm parameters are exempt (standard
magnitude-pruning practice, Han et al. 2015); the caller chooses the weight
tensors in scope — all weights for Sub-FedAvg (Un), FC weights only for
Sub-FedAvg (Hy).
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional

import numpy as np

from .mask import MaskSet


def magnitude_mask(
    state: Mapping[str, np.ndarray],
    names: Iterable[str],
    rate: float,
    scope: str = "global",
    previous: Optional[MaskSet] = None,
) -> MaskSet:
    """Derive a keep-mask pruning the smallest-magnitude ``rate`` fraction.

    Parameters
    ----------
    state:
        ``name -> array`` of current parameter values (e.g. a state dict).
    names:
        Which tensors participate.
    rate:
        Target fraction of the *covered* coordinates to prune, in ``[0, 1)``.
    scope:
        ``"global"`` ranks magnitudes across all covered tensors jointly
        (lottery-ticket convention); ``"layer"`` prunes ``rate`` within each
        tensor independently.
    previous:
        Optional committed mask; coordinates it already prunes stay pruned
        (their stored value is zero, so they rank lowest anyway — the AND
        makes monotonicity explicit and robust to ties at zero).
    """
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"pruning rate must be in [0, 1), got {rate}")
    names = list(names)
    for name in names:
        if name not in state:
            raise KeyError(f"state has no tensor named {name!r}")

    result = MaskSet()
    if scope == "global":
        magnitudes = np.concatenate([np.abs(state[name]).ravel() for name in names])
        threshold = _rank_threshold(magnitudes, rate)
        for name in names:
            result[name] = (np.abs(state[name]) > threshold).astype(np.float64)
    elif scope == "layer":
        for name in names:
            magnitudes = np.abs(state[name]).ravel()
            threshold = _rank_threshold(magnitudes, rate)
            result[name] = (np.abs(state[name]) > threshold).astype(np.float64)
    else:
        raise ValueError(f"scope must be 'global' or 'layer', got {scope!r}")

    if previous is not None:
        result = result.intersect(previous)
    return result


def _rank_threshold(magnitudes: np.ndarray, rate: float) -> float:
    """Magnitude below-or-equal-to which coordinates are pruned.

    Uses a rank-based cut (k-th smallest) rather than a percentile
    interpolation so exactly ``floor(rate * n)`` coordinates fall at or
    below the threshold when magnitudes are distinct.
    """
    count = magnitudes.size
    k = int(np.floor(rate * count))
    if k <= 0:
        return -np.inf  # keep everything (strict > comparison)
    if k >= count:
        return float(np.max(magnitudes))
    return float(np.partition(magnitudes, k - 1)[k - 1])


def sparsity_of(state: Mapping[str, np.ndarray], names: Iterable[str]) -> float:
    """Fraction of exactly-zero coordinates among the named tensors."""
    names = list(names)
    total = sum(state[name].size for name in names)
    zeros = sum(int((state[name] == 0).sum()) for name in names)
    return zeros / total if total else 0.0


def random_mask(
    shapes: Dict[str, tuple], rate: float, rng: np.random.Generator
) -> MaskSet:
    """Random keep-mask at the given rate (ablation baseline for magnitude)."""
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"pruning rate must be in [0, 1), got {rate}")
    result = MaskSet()
    for name, shape in shapes.items():
        result[name] = (rng.random(shape) >= rate).astype(np.float64)
    return result
