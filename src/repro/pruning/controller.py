"""Client-side pruning state machine (the ClientUpdate gates of Algs. 1-2).

Each client owns one :class:`PruningController`.  During a communication
round the client:

1. snapshots candidate masks at the end of its *first* local epoch,
2. snapshots candidate masks at the end of its *last* local epoch,
3. calls :meth:`PruningController.update` with its validation accuracy.

``update`` implements the paper's gating exactly: a candidate mask is
committed only when validation accuracy is at least ``acc_threshold``, the
target rate has not been reached, and the (normalized Hamming) distance
between the first- and last-epoch masks is at least ``epsilon``.  In the
hybrid algorithm the structured and unstructured branches gate
independently (Algorithm 2's "when one does satisfy the constraints it
applies the mask regardless of ... the other one").

Every committed mask escalates the branch's current rate by its per-round
step, capped at the target — the paper's "iteratively pruning by 5%-10% per
iteration" schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..models.base import ConvNet
from .mask import MaskSet, hamming_distance
from .structured import ChannelMask, bn_scale_channel_mask, expand_channel_mask
from .unstructured import magnitude_mask


@dataclass(frozen=True)
class UnstructuredConfig:
    """Knobs of the unstructured branch (Algorithm 1 and the Hy fc-branch)."""

    target_rate: float = 0.5  # p_us: final fraction of covered weights pruned
    step: float = 0.1  # r_us: extra fraction pruned per committed round
    epsilon: float = 1e-4  # mask-distance gate (paper: 1e-4)
    acc_threshold: float = 0.5  # Acc_th on local validation accuracy
    scope: str = "global"
    rewind: bool = False  # lottery-ticket mode: reset kept weights to theta_0
    # on every commit (Frankle & Carbin 2018, the paper's f(x; m ⊙ θ_0))

    def __post_init__(self) -> None:
        if not 0.0 <= self.target_rate < 1.0:
            raise ValueError(f"target_rate must be in [0, 1), got {self.target_rate}")
        if self.step <= 0:
            raise ValueError(f"step must be positive, got {self.step}")


@dataclass(frozen=True)
class StructuredConfig:
    """Knobs of the structured branch (Algorithm 2)."""

    target_rate: float = 0.5  # p_s: final fraction of channels pruned
    step: float = 0.1  # r_s
    epsilon: float = 0.05  # paper: 0.05 for the hybrid algorithm
    acc_threshold: float = 0.5
    min_channels: int = 1

    def __post_init__(self) -> None:
        if not 0.0 <= self.target_rate < 1.0:
            raise ValueError(f"target_rate must be in [0, 1), got {self.target_rate}")
        if self.step <= 0:
            raise ValueError(f"step must be positive, got {self.step}")


@dataclass
class PruneDecision:
    """What :meth:`PruningController.update` did this round."""

    unstructured_applied: bool = False
    structured_applied: bool = False
    unstructured_distance: float = 0.0
    structured_distance: float = 0.0
    unstructured_rate: float = 0.0
    structured_rate: float = 0.0


@dataclass
class MaskSnapshot:
    """Candidate masks captured at one epoch boundary."""

    unstructured: Optional[MaskSet] = None
    structured: Optional[ChannelMask] = None


class PruningController:
    """Tracks committed masks and applies the paper's pruning gates."""

    def __init__(
        self,
        model: ConvNet,
        unstructured: Optional[UnstructuredConfig] = None,
        structured: Optional[StructuredConfig] = None,
    ) -> None:
        if unstructured is None and structured is None:
            raise ValueError("enable at least one of unstructured/structured pruning")
        self.model = model
        self.un_cfg = unstructured
        self.st_cfg = structured

        if unstructured is not None:
            # Algorithm 1 covers every weight matrix; Algorithm 2 restricts
            # the unstructured branch to the fully connected layers.
            if structured is None:
                self.un_names: List[str] = model.prunable_weight_names()
            else:
                self.un_names = model.fc_weight_names()
            self.un_mask: MaskSet = MaskSet.for_model(model, self.un_names)
        else:
            self.un_names = []
            self.un_mask = MaskSet()
        self.un_rate = 0.0

        if structured is not None:
            self.ch_mask: ChannelMask = ChannelMask.dense_for(model)
        else:
            self.ch_mask = ChannelMask()
        self.st_rate = 0.0

        # Snapshot theta_0 for lottery-ticket rewinding; taken lazily only
        # when the mode is enabled to avoid doubling memory otherwise.
        if unstructured is not None and unstructured.rewind:
            self._init_state = {
                name: param.data.copy()
                for name, param in model.named_parameters()
                if name in self.un_names
            }
        else:
            self._init_state = None

        self.history: List[PruneDecision] = []

    # ------------------------------------------------------------------
    # Candidate derivation
    # ------------------------------------------------------------------
    def _next_un_rate(self) -> float:
        return min(self.un_rate + self.un_cfg.step, self.un_cfg.target_rate)

    def _next_st_rate(self) -> float:
        return min(self.st_rate + self.st_cfg.step, self.st_cfg.target_rate)

    def snapshot(self) -> MaskSnapshot:
        """Derive candidate masks from the model's current weights.

        Call at the end of the first and of the last local epoch (the
        algorithms' ``m^{j,fe}`` and ``m^{j,le}``).
        """
        snap = MaskSnapshot()
        if self.un_cfg is not None:
            # Rank magnitudes of the *masked* weights: already-pruned
            # coordinates are zero and therefore always rank lowest, so the
            # candidate pruned set grows exactly to the candidate rate and
            # never overshoots the target.
            state = {
                name: param.data * self.un_mask[name]
                if name in self.un_mask
                else param.data
                for name, param in self.model.named_parameters()
            }
            snap.unstructured = magnitude_mask(
                state,
                self.un_names,
                self._next_un_rate(),
                scope=self.un_cfg.scope,
                previous=self.un_mask,
            )
        if self.st_cfg is not None:
            snap.structured = bn_scale_channel_mask(
                self.model,
                self._next_st_rate(),
                previous=self.ch_mask,
                min_channels=self.st_cfg.min_channels,
            )
        return snap

    # ------------------------------------------------------------------
    # Gating
    # ------------------------------------------------------------------
    def update(
        self, val_accuracy: float, first: MaskSnapshot, last: MaskSnapshot
    ) -> PruneDecision:
        """Apply the paper's gates and commit the last-epoch masks if passed."""
        decision = PruneDecision(
            unstructured_rate=self.un_rate, structured_rate=self.st_rate
        )

        if self.un_cfg is not None and first.unstructured is not None:
            distance = hamming_distance(first.unstructured, last.unstructured)
            decision.unstructured_distance = distance
            target_open = self.un_rate < self.un_cfg.target_rate
            if (
                val_accuracy >= self.un_cfg.acc_threshold
                and target_open
                and distance >= self.un_cfg.epsilon
            ):
                self.un_mask = last.unstructured
                self.un_rate = self._next_un_rate()
                decision.unstructured_applied = True
                decision.unstructured_rate = self.un_rate
                if self._init_state is not None:
                    self._rewind_to_init()

        if self.st_cfg is not None and first.structured is not None:
            distance = first.structured.distance(last.structured)
            decision.structured_distance = distance
            target_open = self.st_rate < self.st_cfg.target_rate
            if (
                val_accuracy >= self.st_cfg.acc_threshold
                and target_open
                and distance >= self.st_cfg.epsilon
            ):
                self.ch_mask = last.structured
                self.st_rate = self._next_st_rate()
                decision.structured_applied = True
                decision.structured_rate = self.st_rate

        self.history.append(decision)
        return decision

    def _rewind_to_init(self) -> None:
        """Reset the covered tensors to ``theta_0 ⊙ mask`` (lottery ticket)."""
        params = dict(self.model.named_parameters())
        for name, init_value in self._init_state.items():
            params[name].data[...] = init_value * self.un_mask[name]

    # ------------------------------------------------------------------
    # Serialization (process-backend sync, checkpointing)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Picklable snapshot of the mutable pruning state.

        Captures committed masks, current rates and the decision history —
        everything a round of training may change.  Configs and the
        ``theta_0`` rewind snapshot are construction-time constants and are
        not included.
        """
        return {
            "un_mask": self.un_mask.copy(),
            "ch_mask": self.ch_mask.copy(),
            "un_rate": self.un_rate,
            "st_rate": self.st_rate,
            "history": list(self.history),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot taken with :meth:`state_dict`."""
        self.un_mask = state["un_mask"].copy()
        self.ch_mask = state["ch_mask"].copy()
        self.un_rate = state["un_rate"]
        self.st_rate = state["st_rate"]
        self.history = list(state["history"])

    # ------------------------------------------------------------------
    # Combined mask view
    # ------------------------------------------------------------------
    def combined_mask(self) -> MaskSet:
        """Parameter-level keep-mask from both committed branches."""
        mask = self.un_mask.copy()
        if self.st_cfg is not None:
            mask = mask.intersect(expand_channel_mask(self.model, self.ch_mask))
        return mask

    def unstructured_sparsity(self) -> float:
        """Fraction pruned among the unstructured branch's covered weights."""
        return self.un_mask.sparsity() if len(self.un_mask) else 0.0

    def channel_sparsity(self) -> float:
        """Fraction of channels pruned by the structured branch."""
        return self.ch_mask.sparsity() if self.st_cfg is not None else 0.0
