"""Physical model compaction after structured pruning.

Masks simulate sparsity on dense tensors; deployment wants the actually
smaller network the paper promises ("a compressed network that can be
efficiently inferenced on conventional CNN platforms", §3.3).  This module
rebuilds a :class:`~repro.models.base.ConvNet` with pruned channels
*removed*: conv filters, BN statistics and downstream input slices are
physically sliced out, so parameter counts and conv FLOPs drop for real.

The compacted model is functionally identical to the masked model — the
equivalence is asserted by the test suite on random inputs — because a
channel with γ = β = 0 contributes exactly zero downstream.
"""

from __future__ import annotations

import copy
from typing import Dict, Optional

import numpy as np

from ..models.base import ConvNet
from .structured import ChannelMask


def compact_model(model: ConvNet, channels: ChannelMask) -> ConvNet:
    """Return a new model with the pruned channels physically removed.

    ``model`` is left untouched.  ``channels`` maps each conv unit's BN name
    to a boolean keep-vector; unnamed units stay at full width.  Works for
    any :class:`ConvNet` whose forward pass reads layers through ``self``
    attributes (both paper architectures do).
    """
    compacted = copy.deepcopy(model)
    modules = dict(compacted.named_modules())

    prev_keep: Optional[np.ndarray] = None
    for unit in compacted.conv_units:
        conv = modules[unit.conv]
        bn = modules[unit.bn]
        if unit.bn in channels:
            keep = np.asarray(channels[unit.bn], dtype=bool)
        else:
            keep = np.ones(conv.out_channels, dtype=bool)
        if keep.shape != (conv.out_channels,):
            raise ValueError(
                f"channel mask for {unit.bn} has shape {keep.shape}, expected "
                f"({conv.out_channels},)"
            )
        if not keep.any():
            raise ValueError(f"cannot compact {unit.conv}: all channels pruned")

        # Slice the producing convolution: filters (rows) and, if the
        # previous unit was sliced, input channels (columns).
        weight = conv.weight.data[keep]
        if prev_keep is not None:
            weight = weight[:, prev_keep]
            conv.in_channels = int(prev_keep.sum())
        conv.weight.data = weight
        if conv.bias is not None:
            conv.bias.data = conv.bias.data[keep]
        conv.out_channels = int(keep.sum())

        # Slice the batch norm (parameters and running statistics).
        bn.weight.data = bn.weight.data[keep]
        bn.bias.data = bn.bias.data[keep]
        bn.register_buffer("running_mean", bn.running_mean[keep].copy())
        bn.register_buffer("running_var", bn.running_var[keep].copy())
        bn.num_features = int(keep.sum())

        if unit.next_conv is None and compacted.first_fc is not None:
            if unit.spatial is None:
                raise ValueError(
                    f"conv unit {unit.conv} feeds the classifier but has no "
                    "spatial size; set ConvUnit.spatial"
                )
            fc = modules[compacted.first_fc]
            column_keep = np.repeat(keep, unit.spatial * unit.spatial)
            fc.weight.data = fc.weight.data[:, column_keep]
            fc.in_features = int(column_keep.sum())
        prev_keep = keep

    return compacted


def compaction_summary(model: ConvNet, compacted: ConvNet) -> Dict[str, float]:
    """Parameter/channel counts before and after compaction."""
    return {
        "dense_params": model.num_parameters(),
        "compact_params": compacted.num_parameters(),
        "param_reduction": 1.0 - compacted.num_parameters() / model.num_parameters(),
        "dense_channels": model.total_channels(),
        "compact_channels": compacted.total_channels(),
    }
