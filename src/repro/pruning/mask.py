"""Binary parameter masks.

A :class:`MaskSet` maps parameter names to 0/1 arrays of the parameter's
shape.  Masks are the central currency of Sub-FedAvg: clients derive them
locally, apply them during training (pruned coordinates frozen at zero) and
upload them with their weights; the server averages on mask intersections.

Parameters without an entry are implicitly fully kept — a deliberate
sparse representation so that "mask only FC layers" (the hybrid algorithm)
needs no entries for conv/BN tensors.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Optional, Tuple

import numpy as np


class MaskSet:
    """Named binary keep-masks over a model's parameters (1 = keep)."""

    def __init__(self, masks: Optional[Mapping[str, np.ndarray]] = None) -> None:
        self._masks: Dict[str, np.ndarray] = {}
        if masks:
            for name, mask in masks.items():
                self[name] = mask

    # ------------------------------------------------------------------
    # Mapping protocol
    # ------------------------------------------------------------------
    def __setitem__(self, name: str, mask: np.ndarray) -> None:
        array = np.asarray(mask)
        if not np.isin(array, (0, 1)).all():
            raise ValueError(f"mask {name!r} contains values other than 0/1")
        self._masks[name] = array.astype(np.float64)

    def __getitem__(self, name: str) -> np.ndarray:
        return self._masks[name]

    def __contains__(self, name: str) -> bool:
        return name in self._masks

    def __iter__(self) -> Iterator[str]:
        return iter(self._masks)

    def __len__(self) -> int:
        return len(self._masks)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MaskSet):
            return NotImplemented
        if set(self._masks) != set(other._masks):
            return False
        return all(np.array_equal(self._masks[k], other._masks[k]) for k in self._masks)

    def items(self) -> Iterable[Tuple[str, np.ndarray]]:
        return self._masks.items()

    def names(self) -> Iterable[str]:
        return self._masks.keys()

    def get(self, name: str, default=None):
        return self._masks.get(name, default)

    def copy(self) -> "MaskSet":
        return MaskSet({name: mask.copy() for name, mask in self._masks.items()})

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def ones_like(cls, shapes: Mapping[str, Tuple[int, ...]]) -> "MaskSet":
        """Fully dense mask set over ``name -> shape``."""
        return cls({name: np.ones(shape) for name, shape in shapes.items()})

    @classmethod
    def for_model(cls, model, names: Optional[Iterable[str]] = None) -> "MaskSet":
        """Dense masks for the named parameters of ``model`` (all if None)."""
        params = dict(model.named_parameters())
        chosen = list(names) if names is not None else list(params)
        return cls({name: np.ones(params[name].shape) for name in chosen})

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def kept(self) -> int:
        """Number of coordinates kept (mask value 1)."""
        return int(sum(mask.sum() for mask in self._masks.values()))

    def total(self) -> int:
        return int(sum(mask.size for mask in self._masks.values()))

    def sparsity(self) -> float:
        """Fraction of masked coordinates pruned (0 = dense)."""
        total = self.total()
        if total == 0:
            return 0.0
        return 1.0 - self.kept() / total

    def density(self) -> float:
        return 1.0 - self.sparsity()

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def intersect(self, other: "MaskSet") -> "MaskSet":
        """Coordinate-wise AND; missing entries are treated as all-ones."""
        result = MaskSet()
        for name in set(self._masks) | set(other._masks):
            a = self._masks.get(name)
            b = other._masks.get(name)
            if a is None:
                result[name] = b.copy()
            elif b is None:
                result[name] = a.copy()
            else:
                result[name] = a * b
        return result

    def union(self, other: "MaskSet") -> "MaskSet":
        """Coordinate-wise OR over the shared names (missing = all-ones)."""
        result = MaskSet()
        for name in set(self._masks) | set(other._masks):
            a = self._masks.get(name)
            b = other._masks.get(name)
            if a is None or b is None:
                source = a if a is not None else b
                result[name] = np.ones_like(source)
            else:
                result[name] = np.maximum(a, b)
        return result

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------
    def apply_to_model(self, model) -> None:
        """Zero pruned coordinates of the model's parameters in place."""
        params = dict(model.named_parameters())
        for name, mask in self._masks.items():
            if name not in params:
                raise KeyError(f"mask refers to unknown parameter {name!r}")
            params[name].data *= mask

    def apply_to_state(self, state: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Return a copy of ``state`` with pruned coordinates zeroed."""
        out = {name: value.copy() for name, value in state.items()}
        for name, mask in self._masks.items():
            if name in out:
                out[name] = out[name] * mask
        return out

    def as_grad_masks(self) -> Dict[str, np.ndarray]:
        """View usable by ``SGD.set_masks`` (same arrays, no copy)."""
        return dict(self._masks)


def hamming_distance(a: MaskSet, b: MaskSet, normalized: bool = True) -> float:
    """Hamming distance between two mask sets (the paper's "mask distance").

    Compares the union of the two mask sets' names; a name present in only
    one set is compared against an implicit all-ones mask.  With
    ``normalized=True`` (the paper's usage) the count of differing
    coordinates is divided by the total number of compared coordinates.
    """
    names = set(a.names()) | set(b.names())
    if not names:
        return 0.0
    differing = 0
    total = 0
    for name in names:
        mask_a = a.get(name)
        mask_b = b.get(name)
        if mask_a is None:
            mask_a = np.ones_like(mask_b)
        if mask_b is None:
            mask_b = np.ones_like(mask_a)
        if mask_a.shape != mask_b.shape:
            raise ValueError(f"mask shape mismatch for {name!r}")
        differing += int((mask_a != mask_b).sum())
        total += mask_a.size
    return differing / total if normalized else float(differing)
