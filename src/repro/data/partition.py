"""Non-IID client partitioning, dispatched through the partitioner registry.

The paper's protocol (§4.1): sort the training set by label, split it into
shards of 250 examples (125 for CIFAR-100), and give each client two shards
drawn at random.  A client therefore typically sees examples of only one or
two labels — the pathological heterogeneity under which FedAvg collapses and
personalization pays off.

Partition strategies are plugins: every partitioner self-registers with
:func:`~repro.data.registry.register_partitioner`, declaring which
:class:`DataConfig` fields parameterize it, and :func:`build_client_data`
dispatches on the config's ``partition`` name through the registry — so a
new skew pattern is one decorated function, no edits here.  Shipped
strategies:

* ``shard`` — the paper's 2-shard label split (McMahan et al. 2017),
* ``dirichlet`` — Dirichlet(α) label skew (Hsu et al. 2019),
* ``iid`` — uniform random equal split (the homogeneous control),
* ``quantity-skew`` — IID labels but Dirichlet(α) over client *sizes*,
* ``label-k`` — each client sees exactly ``k`` labels.

:func:`build_client_data` then assembles complete per-client bundles
(train/val/test views), where each client's test set contains every test
example whose label the client owns (the paper's personalized evaluation
rule).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import List, Optional, Sequence

import numpy as np

from .dataset import ArrayDataset, Dataset, Subset, train_val_split
from .registry import get_partitioner, register_partitioner


@dataclass(frozen=True)
class DataConfig:
    """Declarative description of the data scenario of one run.

    Serializes as the ``data`` section of a
    :class:`~repro.federated.builder.FederationConfig`; field defaults
    mirror the historical flat-config defaults so legacy payloads migrate
    losslessly.  Partitioner-specific fields are only read by the strategy
    that declared them (see each ``@register_partitioner`` call below).
    """

    partition: str = "shard"
    n_train: int = 2000
    n_test: int = 500
    val_fraction: float = 0.1
    shards_per_client: int = 2
    shard_size: Optional[int] = None
    dirichlet_alpha: float = 0.5
    quantity_alpha: float = 1.0
    labels_per_client: int = 2
    min_size: int = 2
    max_attempts: int = 100

    def __post_init__(self) -> None:
        if self.n_train <= 0 or self.n_test <= 0:
            raise ValueError(
                f"n_train/n_test must be positive, got {self.n_train}/{self.n_test}"
            )
        if not 0.0 <= self.val_fraction < 1.0:
            raise ValueError(
                f"val_fraction must be in [0, 1), got {self.val_fraction}"
            )
        if self.min_size < 1:
            raise ValueError(f"min_size must be >= 1, got {self.min_size}")
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")

    @classmethod
    def field_names(cls) -> tuple:
        return tuple(spec.name for spec in fields(cls))


@dataclass
class ClientData:
    """Everything one client can see: local train/val views and a test view."""

    client_id: int
    train: Dataset
    val: Dataset
    test: Dataset
    labels: np.ndarray = field(default_factory=lambda: np.array([], dtype=np.int64))

    @property
    def num_train(self) -> int:
        return len(self.train)


@register_partitioner(
    "shard",
    params=("shards_per_client", "shard_size"),
    summary="label-sorted shards, s random shards per client (paper §4.1)",
)
def shard_partition(
    labels: np.ndarray,
    num_clients: int,
    shards_per_client: int = 2,
    shard_size: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> List[np.ndarray]:
    """Partition example indices into per-client index sets by label shards.

    Follows McMahan et al. (2017) / the paper's §4.1: indices are sorted by
    label, chopped into equal shards, and each client receives
    ``shards_per_client`` random shards without replacement.

    ``shard_size`` defaults to using the entire dataset:
    ``len(labels) // (num_clients * shards_per_client)``.

    Returns a list of index arrays, one per client.  Raises ``ValueError``
    when the dataset is too small to give every client its shard quota.
    """
    labels = np.asarray(labels)
    rng = rng if rng is not None else np.random.default_rng()
    total_shards = num_clients * shards_per_client
    if shard_size is None:
        shard_size = len(labels) // total_shards
    if shard_size <= 0:
        raise ValueError(
            f"dataset of {len(labels)} examples cannot supply "
            f"{total_shards} shards (shard_size={shard_size})"
        )
    needed = total_shards * shard_size
    if needed > len(labels):
        raise ValueError(
            f"need {needed} examples for {total_shards} shards of {shard_size}, "
            f"have {len(labels)}"
        )

    # Stable sort keeps the within-label order deterministic.
    sorted_indices = np.argsort(labels, kind="stable")
    shards = [
        sorted_indices[i * shard_size : (i + 1) * shard_size]
        for i in range(total_shards)
    ]
    order = rng.permutation(total_shards)
    assignments: List[np.ndarray] = []
    for client in range(num_clients):
        picked = order[client * shards_per_client : (client + 1) * shards_per_client]
        assignments.append(np.concatenate([shards[s] for s in picked]))
    return assignments


@register_partitioner(
    "dirichlet",
    params={
        "alpha": "dirichlet_alpha",
        "min_size": "min_size",
        "max_attempts": "max_attempts",
    },
    summary="Dirichlet(alpha) label skew (Hsu et al. 2019)",
)
def dirichlet_partition(
    labels: np.ndarray,
    num_clients: int,
    alpha: float,
    rng: Optional[np.random.Generator] = None,
    min_size: int = 2,
    max_attempts: int = 100,
) -> List[np.ndarray]:
    """Dirichlet(α) label-skew partition (Hsu et al. 2019 convention).

    Lower ``alpha`` means more heterogeneity; ``alpha -> inf`` approaches
    IID.  Used by the heterogeneity-sweep ablation, not by the paper's main
    tables.  Resamples up to ``max_attempts`` times until every client
    holds at least ``min_size`` examples.
    """
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    labels = np.asarray(labels)
    rng = rng if rng is not None else np.random.default_rng()
    num_classes = int(labels.max()) + 1
    for _ in range(max_attempts):
        client_indices: List[List[int]] = [[] for _ in range(num_clients)]
        for k in range(num_classes):
            class_indices = np.flatnonzero(labels == k)
            rng.shuffle(class_indices)
            proportions = rng.dirichlet(np.full(num_clients, alpha))
            cuts = (np.cumsum(proportions)[:-1] * len(class_indices)).astype(int)
            for client, chunk in enumerate(np.split(class_indices, cuts)):
                client_indices[client].extend(chunk.tolist())
        sizes = [len(chunk) for chunk in client_indices]
        if min(sizes) >= min_size:
            return [np.asarray(chunk, dtype=np.int64) for chunk in client_indices]
    raise RuntimeError(
        f"no Dirichlet partition with every client >= {min_size} example(s) "
        f"after {max_attempts} attempts (alpha={alpha}, "
        f"num_clients={num_clients}, {len(labels)} examples over "
        f"{num_classes} classes); raise alpha or max_attempts, or lower "
        f"min_size/num_clients"
    )


@register_partitioner("iid", summary="uniform random equal split (IID control)")
def iid_partition(
    labels: np.ndarray,
    num_clients: int,
    rng: Optional[np.random.Generator] = None,
) -> List[np.ndarray]:
    """Shuffle all indices and deal them out evenly (the homogeneous control).

    Client sizes differ by at most one example; every client's label
    distribution approaches the global one as the dataset grows.
    """
    labels = np.asarray(labels)
    rng = rng if rng is not None else np.random.default_rng()
    order = rng.permutation(len(labels))
    return [np.sort(chunk).astype(np.int64) for chunk in np.array_split(order, num_clients)]


@register_partitioner(
    "quantity-skew",
    params={"alpha": "quantity_alpha", "min_size": "min_size"},
    summary="IID labels, Dirichlet(alpha) over client dataset sizes",
)
def quantity_skew_partition(
    labels: np.ndarray,
    num_clients: int,
    alpha: float = 1.0,
    rng: Optional[np.random.Generator] = None,
    min_size: int = 2,
) -> List[np.ndarray]:
    """IID label mix per client, but client *sizes* drawn Dirichlet(α).

    Isolates quantity skew from label skew: every client sees the global
    label distribution, yet a low ``alpha`` concentrates most examples on
    a few data-rich clients while the rest hold tiny local datasets
    (floored at ``min_size`` so no client is empty).
    """
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    labels = np.asarray(labels)
    total = len(labels)
    if total < num_clients * min_size:
        raise ValueError(
            f"{total} examples cannot give {num_clients} clients "
            f">= {min_size} each"
        )
    rng = rng if rng is not None else np.random.default_rng()
    proportions = rng.dirichlet(np.full(num_clients, alpha))
    sizes = np.maximum((proportions * total).astype(int), min_size)
    # Repair rounding drift while respecting the floor: trim the largest
    # clients first, grow the smallest first.
    while sizes.sum() > total:
        sizes[int(np.argmax(sizes))] -= 1
    while sizes.sum() < total:
        sizes[int(np.argmin(sizes))] += 1
    order = rng.permutation(total)
    cuts = np.cumsum(sizes)[:-1]
    return [np.sort(chunk).astype(np.int64) for chunk in np.split(order, cuts)]


@register_partitioner(
    "label-k",
    params={"labels_per_client": "labels_per_client"},
    summary="each client sees exactly k labels",
)
def label_k_partition(
    labels: np.ndarray,
    num_clients: int,
    labels_per_client: int = 2,
    rng: Optional[np.random.Generator] = None,
) -> List[np.ndarray]:
    """Give every client examples of exactly ``labels_per_client`` labels.

    Labels are assigned round-robin over a shuffled label order (so all
    ``num_clients * k`` slots are covered and every label is owned by at
    least one client whenever ``num_clients * k >= num_classes``); each
    label's examples are then split evenly among its owners.  This is the
    "pathological non-IID" family parameterized directly by label count
    instead of shard arithmetic.
    """
    labels = np.asarray(labels)
    num_classes = int(labels.max()) + 1
    if not 1 <= labels_per_client <= num_classes:
        raise ValueError(
            f"labels_per_client must be in [1, {num_classes}], "
            f"got {labels_per_client}"
        )
    rng = rng if rng is not None else np.random.default_rng()
    label_order = rng.permutation(num_classes)
    owners: List[List[int]] = [[] for _ in range(num_classes)]
    slot = 0
    for client in range(num_clients):
        for _ in range(labels_per_client):
            owners[label_order[slot % num_classes]].append(client)
            slot += 1
    assignments: List[List[int]] = [[] for _ in range(num_clients)]
    for label, label_owners in enumerate(owners):
        if not label_owners:
            continue
        class_indices = np.flatnonzero(labels == label)
        rng.shuffle(class_indices)
        for owner, chunk in zip(
            label_owners, np.array_split(class_indices, len(label_owners))
        ):
            assignments[owner].extend(chunk.tolist())
    return [np.sort(np.asarray(chunk, dtype=np.int64)) for chunk in assignments]


def label_test_view(test_set: ArrayDataset, owned_labels: Sequence[int]) -> Subset:
    """Test view containing all test examples of the client's labels (§4.1)."""
    owned = np.asarray(sorted(set(int(label) for label in owned_labels)))
    mask = np.isin(test_set.labels, owned)
    return Subset(test_set, np.flatnonzero(mask))


def partition_indices(
    labels: np.ndarray,
    num_clients: int,
    config: DataConfig,
    rng: Optional[np.random.Generator] = None,
) -> List[np.ndarray]:
    """Run the configured partition strategy via the registry."""
    spec = get_partitioner(config.partition)
    return spec.fn(labels, num_clients, rng=rng, **spec.kwargs_from(config))


def build_client_data(
    train_set: ArrayDataset,
    test_set: ArrayDataset,
    num_clients: int,
    config: Optional[DataConfig] = None,
    seed: int = 0,
    **overrides,
) -> List[ClientData]:
    """Construct the complete federation: one :class:`ClientData` per client.

    The scenario comes from ``config`` (a :class:`DataConfig`, defaulted),
    optionally adjusted by keyword ``overrides`` naming its fields — so
    both ``build_client_data(train, test, 10, config)`` and the historical
    flat form ``build_client_data(train, test, 10, partition="dirichlet",
    dirichlet_alpha=0.1)`` work.  The partition strategy is resolved
    through the registry; validation data is carved from each client's
    local training split, and the test view follows the paper's
    label-conditional rule.
    """
    if config is not None and not isinstance(config, DataConfig):
        raise TypeError(
            f"config must be a DataConfig, got {config!r}; the pre-scenario "
            "positional signature (shards_per_client as the 4th argument) "
            "is now keyword-only: build_client_data(train, test, n, "
            "shards_per_client=...)"
        )
    config = config if config is not None else DataConfig()
    if overrides:
        config = replace(config, **overrides)
    rng = np.random.default_rng(seed)
    index_sets = partition_indices(train_set.labels, num_clients, config, rng)

    clients: List[ClientData] = []
    for client_id, indices in enumerate(index_sets):
        local = Subset(train_set, indices)
        owned_labels = np.unique(local.labels)
        train_view, val_view = train_val_split(local, config.val_fraction, rng)
        clients.append(
            ClientData(
                client_id=client_id,
                train=train_view,
                val=val_view,
                test=label_test_view(test_set, owned_labels),
                labels=owned_labels,
            )
        )
    return clients


def label_distribution(clients: Sequence[ClientData], num_classes: int) -> np.ndarray:
    """Matrix ``(num_clients, num_classes)`` of per-client training label counts."""
    table = np.zeros((len(clients), num_classes), dtype=np.int64)
    for row, client in enumerate(clients):
        labels, counts = np.unique(client.train.labels, return_counts=True)
        table[row, labels] = counts
    return table


def label_overlap(a: ClientData, b: ClientData) -> float:
    """Jaccard similarity of two clients' owned label sets.

    The paper's central observation is that clients with overlapping labels
    develop similar personalized subnetworks; this metric quantifies the
    overlap for the mask-similarity experiments.
    """
    set_a, set_b = set(a.labels.tolist()), set(b.labels.tolist())
    if not set_a and not set_b:
        return 1.0
    return len(set_a & set_b) / len(set_a | set_b)
