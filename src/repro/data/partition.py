"""Non-IID client partitioning.

The paper's protocol (§4.1): sort the training set by label, split it into
shards of 250 examples (125 for CIFAR-100), and give each client two shards
drawn at random.  A client therefore typically sees examples of only one or
two labels — the pathological heterogeneity under which FedAvg collapses and
personalization pays off.

This module implements that shard partitioner, a Dirichlet partitioner for
heterogeneity-sweep ablations, and the construction of complete per-client
bundles (train/val/test views), where each client's test set contains every
test example whose label the client owns (the paper's personalized
evaluation rule).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from .dataset import ArrayDataset, Dataset, Subset, train_val_split


@dataclass
class ClientData:
    """Everything one client can see: local train/val views and a test view."""

    client_id: int
    train: Dataset
    val: Dataset
    test: Dataset
    labels: np.ndarray = field(default_factory=lambda: np.array([], dtype=np.int64))

    @property
    def num_train(self) -> int:
        return len(self.train)


def shard_partition(
    labels: np.ndarray,
    num_clients: int,
    shards_per_client: int = 2,
    shard_size: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> List[np.ndarray]:
    """Partition example indices into per-client index sets by label shards.

    Follows McMahan et al. (2017) / the paper's §4.1: indices are sorted by
    label, chopped into equal shards, and each client receives
    ``shards_per_client`` random shards without replacement.

    ``shard_size`` defaults to using the entire dataset:
    ``len(labels) // (num_clients * shards_per_client)``.

    Returns a list of index arrays, one per client.  Raises ``ValueError``
    when the dataset is too small to give every client its shard quota.
    """
    labels = np.asarray(labels)
    rng = rng if rng is not None else np.random.default_rng()
    total_shards = num_clients * shards_per_client
    if shard_size is None:
        shard_size = len(labels) // total_shards
    if shard_size <= 0:
        raise ValueError(
            f"dataset of {len(labels)} examples cannot supply "
            f"{total_shards} shards (shard_size={shard_size})"
        )
    needed = total_shards * shard_size
    if needed > len(labels):
        raise ValueError(
            f"need {needed} examples for {total_shards} shards of {shard_size}, "
            f"have {len(labels)}"
        )

    # Stable sort keeps the within-label order deterministic.
    sorted_indices = np.argsort(labels, kind="stable")
    shards = [
        sorted_indices[i * shard_size : (i + 1) * shard_size]
        for i in range(total_shards)
    ]
    order = rng.permutation(total_shards)
    assignments: List[np.ndarray] = []
    for client in range(num_clients):
        picked = order[client * shards_per_client : (client + 1) * shards_per_client]
        assignments.append(np.concatenate([shards[s] for s in picked]))
    return assignments


def dirichlet_partition(
    labels: np.ndarray,
    num_clients: int,
    alpha: float,
    rng: Optional[np.random.Generator] = None,
    min_size: int = 2,
) -> List[np.ndarray]:
    """Dirichlet(α) label-skew partition (Hsu et al. 2019 convention).

    Lower ``alpha`` means more heterogeneity; ``alpha -> inf`` approaches
    IID.  Used by the heterogeneity-sweep ablation, not by the paper's main
    tables.  Resamples until every client holds at least ``min_size``
    examples.
    """
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    labels = np.asarray(labels)
    rng = rng if rng is not None else np.random.default_rng()
    num_classes = int(labels.max()) + 1
    for _ in range(100):
        client_indices: List[List[int]] = [[] for _ in range(num_clients)]
        for k in range(num_classes):
            class_indices = np.flatnonzero(labels == k)
            rng.shuffle(class_indices)
            proportions = rng.dirichlet(np.full(num_clients, alpha))
            cuts = (np.cumsum(proportions)[:-1] * len(class_indices)).astype(int)
            for client, chunk in enumerate(np.split(class_indices, cuts)):
                client_indices[client].extend(chunk.tolist())
        sizes = [len(chunk) for chunk in client_indices]
        if min(sizes) >= min_size:
            return [np.asarray(chunk, dtype=np.int64) for chunk in client_indices]
    raise RuntimeError(
        f"could not find a Dirichlet partition giving every client >= {min_size} examples"
    )


def label_test_view(test_set: ArrayDataset, owned_labels: Sequence[int]) -> Subset:
    """Test view containing all test examples of the client's labels (§4.1)."""
    owned = np.asarray(sorted(set(int(label) for label in owned_labels)))
    mask = np.isin(test_set.labels, owned)
    return Subset(test_set, np.flatnonzero(mask))


def build_client_data(
    train_set: ArrayDataset,
    test_set: ArrayDataset,
    num_clients: int,
    shards_per_client: int = 2,
    shard_size: Optional[int] = None,
    val_fraction: float = 0.1,
    seed: int = 0,
    partition: str = "shard",
    dirichlet_alpha: float = 0.5,
) -> List[ClientData]:
    """Construct the complete federation: one :class:`ClientData` per client.

    ``partition`` selects ``"shard"`` (paper protocol) or ``"dirichlet"``
    (ablation).  Validation data is carved from each client's local training
    split; the test view follows the paper's label-conditional rule.
    """
    rng = np.random.default_rng(seed)
    if partition == "shard":
        index_sets = shard_partition(
            train_set.labels, num_clients, shards_per_client, shard_size, rng
        )
    elif partition == "dirichlet":
        index_sets = dirichlet_partition(train_set.labels, num_clients, dirichlet_alpha, rng)
    else:
        raise ValueError(f"unknown partition strategy {partition!r}")

    clients: List[ClientData] = []
    for client_id, indices in enumerate(index_sets):
        local = Subset(train_set, indices)
        owned_labels = np.unique(local.labels)
        train_view, val_view = train_val_split(local, val_fraction, rng)
        clients.append(
            ClientData(
                client_id=client_id,
                train=train_view,
                val=val_view,
                test=label_test_view(test_set, owned_labels),
                labels=owned_labels,
            )
        )
    return clients


def label_distribution(clients: Sequence[ClientData], num_classes: int) -> np.ndarray:
    """Matrix ``(num_clients, num_classes)`` of per-client training label counts."""
    table = np.zeros((len(clients), num_classes), dtype=np.int64)
    for row, client in enumerate(clients):
        labels, counts = np.unique(client.train.labels, return_counts=True)
        table[row, labels] = counts
    return table


def label_overlap(a: ClientData, b: ClientData) -> float:
    """Jaccard similarity of two clients' owned label sets.

    The paper's central observation is that clients with overlapping labels
    develop similar personalized subnetworks; this metric quantifies the
    overlap for the mask-similarity experiments.
    """
    set_a, set_b = set(a.labels.tolist()), set(b.labels.tolist())
    if not set_a and not set_b:
        return 1.0
    return len(set_a & set_b) / len(set_a | set_b)
