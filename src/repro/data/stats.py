"""Quantifying statistical heterogeneity.

Zhao et al. (2018) — cited by the paper as the canonical non-IID analysis
— measure heterogeneity as the earth-mover's distance (EMD) between each
client's label distribution and the population distribution, and show
FedAvg's accuracy loss grows with it.  These helpers compute that index
for any partition, so experiments can report *how* non-IID a configuration
actually is (the shard partition scores near the EMD maximum; Dirichlet
sweeps trace the whole range).
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from .partition import ClientData


def label_histogram(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Normalized label distribution (sums to 1; zeros for empty input)."""
    counts = np.bincount(np.asarray(labels, dtype=np.int64), minlength=num_classes)
    total = counts.sum()
    if total == 0:
        return np.zeros(num_classes)
    return counts / total


def label_emd(p: np.ndarray, q: np.ndarray) -> float:
    """Earth-mover's distance between two label distributions.

    For categorical (unordered) labels, EMD reduces to half the L1
    distance — the total-variation form used by Zhao et al. (2018).
    """
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    if p.shape != q.shape:
        raise ValueError("distributions must have the same length")
    return float(0.5 * np.abs(p - q).sum())


def heterogeneity_index(
    clients: Sequence[ClientData], num_classes: int
) -> Dict[str, float]:
    """Population heterogeneity summary.

    Returns the mean/max EMD between per-client training label
    distributions and the population distribution, plus the mean number of
    distinct labels per client.  IID partitions score near 0; the paper's
    2-shard partition scores near the maximum ``1 - k/num_classes`` (for
    k labels per client).
    """
    if not clients:
        raise ValueError("no clients to analyze")
    histograms = [
        label_histogram(client.train.labels, num_classes) for client in clients
    ]
    weights = np.asarray([len(client.train) for client in clients], dtype=np.float64)
    population = np.average(histograms, axis=0, weights=weights)
    emds = [label_emd(histogram, population) for histogram in histograms]
    labels_per_client = [
        len(np.unique(client.train.labels)) for client in clients
    ]
    return {
        "mean_emd": float(np.mean(emds)),
        "max_emd": float(np.max(emds)),
        "mean_labels_per_client": float(np.mean(labels_per_client)),
    }
