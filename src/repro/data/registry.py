"""Dataset and partitioner registries: the plugin point for data scenarios.

The paper's claims live or die on the *data scenario* — which dataset the
federation trains on and how pathologically it is split across clients.
This module makes both axes pluggable, mirroring the trainer registry in
:mod:`repro.federated.registry`: a new dataset or skew pattern is one
decorated function, no edits to ``builder.py`` or ``partition.py``.

Datasets register a :class:`~repro.data.synthetic.DatasetSpec` plus a
loader producing ``(train, test)`` :class:`~repro.data.dataset
.ArrayDataset` pairs:

>>> from repro.data.registry import register_dataset
>>> from repro.data.synthetic import DatasetSpec
>>> @register_dataset(DatasetSpec("tiny", (1, 8, 8), 4,
...                               signal=2.0, noise=1.0, max_shift=0))
... def load_tiny(spec, n_train, n_test, seed):
...     ...  # return (train, test) ArrayDatasets

Partitioners register a function over ``(labels, num_clients)`` returning
per-client index arrays, declaring which
:class:`~repro.data.partition.DataConfig` fields parameterize it:

>>> from repro.data.registry import register_partitioner
>>> @register_partitioner("first-come", summary="contiguous equal chunks")
... def first_come(labels, num_clients, rng=None):
...     ...  # return a list of index arrays, one per client

``SPECS`` in :mod:`repro.data.synthetic` is a live derived view of the
dataset registry, so registered datasets appear in the CLI, the model
factory and config validation immediately.
"""

from __future__ import annotations

from collections.abc import Mapping as MappingABC
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, Mapping, Sequence, Tuple, Union


# ----------------------------------------------------------------------
# Dataset registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DatasetEntry:
    """One registry entry: the static spec plus its split loader.

    ``loader(spec, n_train, n_test, seed)`` must return a ``(train, test)``
    pair of datasets exposing ``labels`` (the partitioners' contract).
    """

    name: str
    spec: Any  # DatasetSpec (kept untyped to avoid an import cycle)
    loader: Callable
    summary: str = ""


_DATASETS: Dict[str, DatasetEntry] = {}


def register_dataset(spec, *, summary: str = "") -> Callable:
    """Decorator adding a dataset to the registry under ``spec.name``.

    Apply to the loader function; the decorated function is returned
    unchanged so it stays directly callable.
    """

    def decorator(loader: Callable) -> Callable:
        name = spec.name
        if name in _DATASETS:
            raise ValueError(f"dataset {name!r} is already registered")
        doc = summary or _first_doc_line(loader)
        _DATASETS[name] = DatasetEntry(
            name=name, spec=spec, loader=loader, summary=doc
        )
        return loader

    return decorator


def get_dataset(name: str) -> DatasetEntry:
    """Look up one registered dataset; raises ``KeyError`` for unknown names."""
    try:
        return _DATASETS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; choose from {available_datasets()}"
        ) from None


def available_datasets() -> Tuple[str, ...]:
    """Registered dataset names, in registration order."""
    return tuple(_DATASETS)


def dataset_entries() -> Tuple[DatasetEntry, ...]:
    """All dataset registry entries, in registration order."""
    return tuple(_DATASETS.values())


def unregister_dataset(name: str) -> DatasetEntry:
    """Remove one entry (plugin teardown / test isolation); returns it."""
    try:
        return _DATASETS.pop(name)
    except KeyError:
        raise KeyError(f"dataset {name!r} is not registered") from None


class SpecView(MappingABC):
    """Live mapping view ``name -> DatasetSpec`` over the dataset registry.

    ``repro.data.synthetic.SPECS`` is an instance of this class, so every
    existing ``name in SPECS`` / ``SPECS[name]`` / ``SPECS.items()`` call
    site keeps working while reflecting late registrations immediately.
    """

    def __getitem__(self, name: str):
        return get_dataset(name).spec

    def __iter__(self) -> Iterator[str]:
        return iter(available_datasets())

    def __len__(self) -> int:
        return len(_DATASETS)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SpecView({available_datasets()})"


# ----------------------------------------------------------------------
# Partitioner registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PartitionerSpec:
    """One registry entry: the partition function plus its config contract.

    ``params`` maps the function's keyword arguments to the
    :class:`~repro.data.partition.DataConfig` field each one reads (e.g.
    ``{"alpha": "dirichlet_alpha"}``).  Dispatch forwards only the fields
    the config actually has, so third-party partitioners may declare
    parameters with function defaults that no config field backs.
    """

    name: str
    fn: Callable
    params: Mapping[str, str] = field(default_factory=dict)
    summary: str = ""

    def kwargs_from(self, config) -> Dict[str, Any]:
        """Keyword arguments for ``fn`` pulled from a config object."""
        sentinel = object()
        kwargs = {}
        for fn_kw, config_field in self.params.items():
            value = getattr(config, config_field, sentinel)
            if value is not sentinel:
                kwargs[fn_kw] = value
        return kwargs


_PARTITIONERS: Dict[str, PartitionerSpec] = {}


def register_partitioner(
    name: str,
    *,
    params: Union[Mapping[str, str], Sequence[str]] = (),
    summary: str = "",
) -> Callable:
    """Decorator adding a partition function to the registry under ``name``.

    The function must accept ``(labels, num_clients, ...)`` plus an ``rng``
    keyword and return one index array per client.  ``params`` declares the
    config-driven keyword arguments: either a sequence of names shared by
    the function and :class:`DataConfig`, or a mapping ``fn_kw ->
    config_field`` when they differ.
    """
    if not isinstance(params, MappingABC):
        params = {param: param for param in params}

    def decorator(fn: Callable) -> Callable:
        if name in _PARTITIONERS:
            raise ValueError(f"partitioner {name!r} is already registered")
        doc = summary or _first_doc_line(fn)
        _PARTITIONERS[name] = PartitionerSpec(
            name=name, fn=fn, params=dict(params), summary=doc
        )
        return fn

    return decorator


def get_partitioner(name: str) -> PartitionerSpec:
    """Look up one registered partitioner; raises ``KeyError`` if unknown."""
    try:
        return _PARTITIONERS[name]
    except KeyError:
        raise KeyError(
            f"unknown partition strategy {name!r}; "
            f"choose from {available_partitioners()}"
        ) from None


def available_partitioners() -> Tuple[str, ...]:
    """Registered partitioner names, in registration order."""
    return tuple(_PARTITIONERS)


def partitioner_specs() -> Tuple[PartitionerSpec, ...]:
    """All partitioner registry entries, in registration order."""
    return tuple(_PARTITIONERS.values())


def unregister_partitioner(name: str) -> PartitionerSpec:
    """Remove one entry (plugin teardown / test isolation); returns it."""
    try:
        return _PARTITIONERS.pop(name)
    except KeyError:
        raise KeyError(f"partitioner {name!r} is not registered") from None


def _first_doc_line(fn: Callable) -> str:
    doc = (fn.__doc__ or "").strip()
    return doc.splitlines()[0] if doc else ""
