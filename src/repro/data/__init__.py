"""Datasets, synthetic benchmark generators and non-IID partitioning."""

from .dataset import ArrayDataset, Dataset, Subset, train_val_split
from .loader import DataLoader, full_batch
from .partition import (
    ClientData,
    build_client_data,
    dirichlet_partition,
    label_distribution,
    label_overlap,
    label_test_view,
    shard_partition,
)
from .stats import heterogeneity_index, label_emd, label_histogram
from .transforms import (
    AugmentedDataset,
    Compose,
    GaussianNoise,
    Normalize,
    RandomCrop,
    RandomHorizontalFlip,
    Transform,
)
from .synthetic import (
    SPECS,
    DatasetSpec,
    class_templates,
    generate_split,
    load_dataset,
    synthetic_cifar10,
    synthetic_cifar100,
    synthetic_emnist,
    synthetic_mnist,
)

__all__ = [
    "Dataset",
    "ArrayDataset",
    "Subset",
    "train_val_split",
    "DataLoader",
    "full_batch",
    "ClientData",
    "shard_partition",
    "dirichlet_partition",
    "build_client_data",
    "label_test_view",
    "label_distribution",
    "label_overlap",
    "DatasetSpec",
    "SPECS",
    "class_templates",
    "generate_split",
    "load_dataset",
    "synthetic_mnist",
    "synthetic_emnist",
    "synthetic_cifar10",
    "synthetic_cifar100",
    "Transform",
    "Compose",
    "RandomCrop",
    "RandomHorizontalFlip",
    "GaussianNoise",
    "Normalize",
    "AugmentedDataset",
    "label_histogram",
    "label_emd",
    "heterogeneity_index",
]
