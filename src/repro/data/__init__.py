"""Datasets, synthetic benchmark generators and non-IID partitioning.

Both scenario axes are registry-driven: datasets register a
:class:`DatasetSpec` plus loader with :func:`register_dataset`, partition
strategies register with :func:`register_partitioner`, and ``SPECS`` is a
live derived view of the dataset registry.
"""

from .dataset import ArrayDataset, Dataset, Subset, train_val_split
from .loader import DataLoader, full_batch
from .registry import (
    DatasetEntry,
    PartitionerSpec,
    available_datasets,
    available_partitioners,
    dataset_entries,
    get_dataset,
    get_partitioner,
    partitioner_specs,
    register_dataset,
    register_partitioner,
    unregister_dataset,
    unregister_partitioner,
)
from .partition import (
    ClientData,
    DataConfig,
    build_client_data,
    dirichlet_partition,
    iid_partition,
    label_distribution,
    label_k_partition,
    label_overlap,
    label_test_view,
    partition_indices,
    quantity_skew_partition,
    shard_partition,
)
from .stats import heterogeneity_index, label_emd, label_histogram
from .transforms import (
    AugmentedDataset,
    Compose,
    GaussianNoise,
    Normalize,
    RandomCrop,
    RandomHorizontalFlip,
    Transform,
)
from .synthetic import (
    SPECS,
    DatasetSpec,
    class_templates,
    generate_split,
    load_dataset,
    synthetic_cifar10,
    synthetic_cifar100,
    synthetic_emnist,
    synthetic_mnist,
)

__all__ = [
    "Dataset",
    "ArrayDataset",
    "Subset",
    "train_val_split",
    "DataLoader",
    "full_batch",
    "ClientData",
    "DataConfig",
    "DatasetEntry",
    "PartitionerSpec",
    "register_dataset",
    "register_partitioner",
    "unregister_dataset",
    "unregister_partitioner",
    "get_dataset",
    "get_partitioner",
    "available_datasets",
    "available_partitioners",
    "dataset_entries",
    "partitioner_specs",
    "shard_partition",
    "dirichlet_partition",
    "iid_partition",
    "quantity_skew_partition",
    "label_k_partition",
    "partition_indices",
    "build_client_data",
    "label_test_view",
    "label_distribution",
    "label_overlap",
    "DatasetSpec",
    "SPECS",
    "class_templates",
    "generate_split",
    "load_dataset",
    "synthetic_mnist",
    "synthetic_emnist",
    "synthetic_cifar10",
    "synthetic_cifar100",
    "Transform",
    "Compose",
    "RandomCrop",
    "RandomHorizontalFlip",
    "GaussianNoise",
    "Normalize",
    "AugmentedDataset",
    "label_histogram",
    "label_emd",
    "heterogeneity_index",
]
