"""Data augmentation transforms.

The torchvision CIFAR pipelines the paper builds on use random crops with
padding and horizontal flips; these are their numpy equivalents, applied
batch-wise by :class:`AugmentedDataset`.  All transforms take an explicit
generator so augmented runs stay reproducible.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from .dataset import Dataset


class Transform:
    """Batch transform: ``(N, C, H, W) -> (N, C, H, W)``."""

    def __call__(self, images: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        raise NotImplementedError


class Compose(Transform):
    """Apply transforms in order."""

    def __init__(self, transforms: Sequence[Transform]) -> None:
        self.transforms = list(transforms)

    def __call__(self, images: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        for transform in self.transforms:
            images = transform(images, rng)
        return images


class RandomHorizontalFlip(Transform):
    """Flip each image left-right with probability ``prob``."""

    def __init__(self, prob: float = 0.5) -> None:
        if not 0.0 <= prob <= 1.0:
            raise ValueError(f"prob must be in [0, 1], got {prob}")
        self.prob = prob

    def __call__(self, images: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        flip = rng.random(len(images)) < self.prob
        out = images.copy()
        out[flip] = out[flip, :, :, ::-1]
        return out


class RandomCrop(Transform):
    """Zero-pad by ``padding`` then crop back to the original size."""

    def __init__(self, padding: int = 4) -> None:
        if padding < 1:
            raise ValueError(f"padding must be >= 1, got {padding}")
        self.padding = padding

    def __call__(self, images: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        batch, channels, height, width = images.shape
        pad = self.padding
        padded = np.pad(images, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
        offsets = rng.integers(0, 2 * pad + 1, size=(batch, 2))
        out = np.empty_like(images)
        for i, (dy, dx) in enumerate(offsets):
            out[i] = padded[i, :, dy : dy + height, dx : dx + width]
        return out


class GaussianNoise(Transform):
    """Additive Gaussian noise (robustness-style augmentation)."""

    def __init__(self, std: float = 0.05) -> None:
        if std < 0:
            raise ValueError(f"std must be non-negative, got {std}")
        self.std = std

    def __call__(self, images: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if self.std == 0:
            return images
        return images + rng.normal(scale=self.std, size=images.shape)


class Normalize(Transform):
    """Per-channel affine normalization ``(x - mean) / std``."""

    def __init__(self, mean: Sequence[float], std: Sequence[float]) -> None:
        self.mean = np.asarray(mean, dtype=np.float64).reshape(1, -1, 1, 1)
        self.std = np.asarray(std, dtype=np.float64).reshape(1, -1, 1, 1)
        if (self.std == 0).any():
            raise ValueError("std entries must be non-zero")

    def __call__(self, images: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return (images - self.mean) / self.std


class AugmentedDataset(Dataset):
    """Dataset view applying a transform on every (batched) access.

    Augmentation is sampled fresh per access from the view's own seeded
    generator, so epochs see different crops/flips but runs remain
    reproducible.
    """

    def __init__(self, base: Dataset, transform: Transform, seed: int = 0) -> None:
        self.base = base
        self.transform = transform
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        return len(self.base)

    def __getitem__(self, index: int):
        image, label = self.base[index]
        augmented = self.transform(image[None], self._rng)[0]
        return augmented, label

    @property
    def labels(self) -> np.ndarray:
        return self.base.labels

    def batch(self, indices) -> Tuple[np.ndarray, np.ndarray]:
        if hasattr(self.base, "batch"):
            images, labels = self.base.batch(indices)
        else:
            pairs = [self.base[int(i)] for i in indices]
            images = np.stack([p[0] for p in pairs])
            labels = np.asarray([p[1] for p in pairs])
        return self.transform(images, self._rng), labels
