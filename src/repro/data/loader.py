"""Mini-batch iteration over datasets."""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from .dataset import Dataset


class DataLoader:
    """Seeded, shuffling batch iterator yielding ``(images, labels)`` arrays.

    Unlike PyTorch's loader this is single-process; the gather is vectorized
    through ``Dataset.batch`` when available.  Each ``__iter__`` call draws a
    fresh permutation from the loader's own generator, so epoch order is
    reproducible given the seed but differs across epochs.
    """

    def __init__(
        self,
        dataset: Dataset,
        batch_size: int = 10,
        shuffle: bool = True,
        drop_last: bool = False,
        seed: Optional[int] = None,
    ) -> None:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        count = len(self.dataset)
        if self.drop_last:
            return count // self.batch_size
        return (count + self.batch_size - 1) // self.batch_size

    def get_rng_state(self):
        """Snapshot of the shuffle generator (a plain, picklable dict)."""
        return self._rng.bit_generator.state

    def set_rng_state(self, state) -> None:
        """Restore a snapshot taken with :meth:`get_rng_state`."""
        self._rng.bit_generator.state = state

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        count = len(self.dataset)
        order = self._rng.permutation(count) if self.shuffle else np.arange(count)
        stop = (count // self.batch_size) * self.batch_size if self.drop_last else count
        for start in range(0, stop, self.batch_size):
            indices = order[start : start + self.batch_size]
            if len(indices) == 0:
                continue
            yield self._gather(indices)

    def _gather(self, indices: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        if hasattr(self.dataset, "batch"):
            return self.dataset.batch(indices)
        xs, ys = zip(*(self.dataset[int(i)] for i in indices))
        return np.stack(xs), np.asarray(ys)


def full_batch(dataset: Dataset) -> Tuple[np.ndarray, np.ndarray]:
    """Materialize an entire dataset as one ``(images, labels)`` pair."""
    if hasattr(dataset, "batch"):
        return dataset.batch(np.arange(len(dataset)))
    xs, ys = zip(*(dataset[i] for i in range(len(dataset))))
    return np.stack(xs), np.asarray(ys)
