"""Synthetic stand-ins for MNIST, EMNIST, CIFAR-10 and CIFAR-100.

The evaluation environment has no network access, so torchvision downloads
are unavailable.  These generators produce class-conditional image
distributions that preserve the properties Sub-FedAvg's experiments depend
on (see DESIGN.md §2):

* fixed shapes and class counts matching the real datasets,
* a deterministic per-class *template* (a smoothed random field), so a small
  CNN can learn each class from few examples — mirroring the "limited data,
  few labels per client" regime of the 2-shard partition,
* per-sample Gaussian noise, random translation and per-class distractor
  structure, so classification is non-trivial and benefits from more data,
* a dataset difficulty ordering (MNIST ≈ EMNIST < CIFAR-10 < CIFAR-100)
  controlled by the signal-to-noise ratio.

Every generator is deterministic given ``seed``: the class templates depend
only on ``(seed, num_classes, shape)`` and sample noise is drawn from a
``numpy.random.Generator`` seeded from the same value.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Tuple

import numpy as np
from scipy import ndimage

from .dataset import ArrayDataset
from .registry import SpecView, get_dataset, register_dataset


@dataclass(frozen=True)
class DatasetSpec:
    """Static description of a dataset family."""

    name: str
    shape: Tuple[int, int, int]  # (C, H, W)
    num_classes: int
    signal: float  # template amplitude (higher = easier)
    noise: float  # per-sample Gaussian noise std
    max_shift: int  # uniform translation jitter, in pixels
    distractor: float = 0.0  # amplitude of an added wrong-class template


#: Live ``name -> DatasetSpec`` view over the dataset registry.  Third-party
#: datasets added with ``@register_dataset`` appear here (and therefore in
#: config validation, the CLI and the model factory) immediately.
SPECS = SpecView()


def class_templates(spec: DatasetSpec, seed: int) -> np.ndarray:
    """Deterministic per-class templates of shape ``(K, C, H, W)``.

    Templates are smoothed Gaussian random fields, normalized to unit RMS,
    so every class occupies a distinct low-frequency direction in pixel
    space.  Smoothing makes them translation-tolerant, which rewards the
    convolutional inductive bias just as natural images do.
    """
    rng = np.random.default_rng(seed)
    channels, height, width = spec.shape
    templates = rng.normal(size=(spec.num_classes, channels, height, width))
    for k in range(spec.num_classes):
        for c in range(channels):
            templates[k, c] = ndimage.gaussian_filter(templates[k, c], sigma=3.0)
    rms = np.sqrt((templates ** 2).mean(axis=(1, 2, 3), keepdims=True))
    return templates / rms


def _shift2d(image: np.ndarray, dy: int, dx: int) -> np.ndarray:
    """Translate the spatial axes of a ``(C, H, W)`` image with zero fill."""
    if dy == 0 and dx == 0:
        return image
    shifted = np.roll(image, (dy, dx), axis=(1, 2))
    if dy > 0:
        shifted[:, :dy, :] = 0.0
    elif dy < 0:
        shifted[:, dy:, :] = 0.0
    if dx > 0:
        shifted[:, :, :dx] = 0.0
    elif dx < 0:
        shifted[:, :, dx:] = 0.0
    return shifted


def generate_split(
    spec: DatasetSpec, count: int, seed: int, split: str
) -> ArrayDataset:
    """Sample ``count`` labelled images for ``split`` (``train``/``test``).

    Labels are balanced (each class appears ``count // num_classes`` times,
    remainder spread over the first classes) to mirror the balanced class
    frequencies of the real benchmark datasets, which the shard partitioner
    relies on.
    """
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    templates = class_templates(spec, seed)
    # Different noise stream per split, same templates.  zlib.crc32 is a
    # stable hash (builtin hash() varies across processes).
    split_key = zlib.crc32(split.encode("utf-8"))
    stream = np.random.default_rng((seed, split_key, count))
    per_class = count // spec.num_classes
    remainder = count % spec.num_classes
    labels = np.concatenate(
        [
            np.full(per_class + (1 if k < remainder else 0), k, dtype=np.int64)
            for k in range(spec.num_classes)
        ]
    )
    stream.shuffle(labels)

    channels, height, width = spec.shape
    images = stream.normal(scale=spec.noise, size=(count, channels, height, width))
    shifts = stream.integers(-spec.max_shift, spec.max_shift + 1, size=(count, 2))
    scales = stream.uniform(0.8, 1.2, size=count)
    distractor_classes = stream.integers(0, spec.num_classes, size=count)
    for i, label in enumerate(labels):
        template = _shift2d(templates[label], int(shifts[i, 0]), int(shifts[i, 1]))
        images[i] += spec.signal * scales[i] * template
        if spec.distractor > 0:
            # Mix in another class's pattern at lower amplitude, mimicking
            # the shared structure that makes natural images harder.
            other = int(distractor_classes[i])
            if other != label:
                images[i] += spec.distractor * templates[other]
    # Standardize globally, as the torchvision pipelines do per-dataset.
    images = (images - images.mean()) / (images.std() + 1e-8)
    return ArrayDataset(images.astype(np.float64), labels)


def _synthetic_loader(
    spec: DatasetSpec, n_train: int, n_test: int, seed: int
) -> Tuple[ArrayDataset, ArrayDataset]:
    """Synthetic class-conditional splits (see module docstring)."""
    train = generate_split(spec, n_train, seed, "train")
    test = generate_split(spec, n_test, seed, "test")
    return train, test


for _spec in (
    DatasetSpec(
        "mnist", (1, 28, 28), 10, signal=3.0, noise=1.0, max_shift=2, distractor=0.3
    ),
    DatasetSpec(
        "emnist", (1, 28, 28), 26, signal=3.0, noise=1.0, max_shift=2, distractor=0.3
    ),
    DatasetSpec(
        "cifar10", (3, 32, 32), 10, signal=1.8, noise=1.0, max_shift=3, distractor=0.9
    ),
    DatasetSpec(
        "cifar100", (3, 32, 32), 100, signal=1.5, noise=1.0, max_shift=3, distractor=1.1
    ),
):
    register_dataset(_spec, summary="synthetic class-conditional images")(
        _synthetic_loader
    )


def load_dataset(
    name: str, n_train: int, n_test: int, seed: int = 0
) -> Tuple[ArrayDataset, ArrayDataset]:
    """Return ``(train, test)`` datasets for a registered family.

    Dispatches through the dataset registry: the builtin synthetic families
    (``mnist``, ``emnist``, ``cifar10``, ``cifar100``) plus anything added
    with :func:`~repro.data.registry.register_dataset`.
    """
    entry = get_dataset(name)
    return entry.loader(entry.spec, n_train, n_test, seed)


def synthetic_mnist(n_train: int = 2000, n_test: int = 500, seed: int = 0):
    """Synthetic MNIST: 1×28×28, 10 classes (see module docstring)."""
    return load_dataset("mnist", n_train, n_test, seed)


def synthetic_emnist(n_train: int = 2000, n_test: int = 500, seed: int = 0):
    """Synthetic EMNIST letters: 1×28×28, 26 classes."""
    return load_dataset("emnist", n_train, n_test, seed)


def synthetic_cifar10(n_train: int = 2000, n_test: int = 500, seed: int = 0):
    """Synthetic CIFAR-10: 3×32×32, 10 classes, lower SNR than MNIST."""
    return load_dataset("cifar10", n_train, n_test, seed)


def synthetic_cifar100(n_train: int = 4000, n_test: int = 1000, seed: int = 0):
    """Synthetic CIFAR-100: 3×32×32, 100 classes, hardest family."""
    return load_dataset("cifar100", n_train, n_test, seed)
