"""Dataset containers.

The federated layer manipulates three views of data: the full training set
(to be partitioned across clients), per-client subsets (index views), and
per-client validation/test splits.  All of them are expressed through the
small :class:`Dataset` protocol here.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np


class Dataset:
    """Minimal dataset protocol: length + integer indexing to (x, y)."""

    def __len__(self) -> int:
        raise NotImplementedError

    def __getitem__(self, index: int) -> Tuple[np.ndarray, int]:
        raise NotImplementedError

    @property
    def labels(self) -> np.ndarray:
        """Integer label of every example (used by the partitioners)."""
        raise NotImplementedError


class ArrayDataset(Dataset):
    """Dataset backed by in-memory arrays ``images (N, C, H, W)``, ``labels (N,)``."""

    def __init__(self, images: np.ndarray, labels: np.ndarray) -> None:
        images = np.asarray(images)
        labels = np.asarray(labels)
        if len(images) != len(labels):
            raise ValueError(
                f"images and labels disagree on length: {len(images)} vs {len(labels)}"
            )
        if images.ndim != 4:
            raise ValueError(f"expected (N, C, H, W) images, got shape {images.shape}")
        self.images = images
        self._labels = labels.astype(np.int64)

    def __len__(self) -> int:
        return len(self.images)

    def __getitem__(self, index: int) -> Tuple[np.ndarray, int]:
        return self.images[index], int(self._labels[index])

    @property
    def labels(self) -> np.ndarray:
        return self._labels

    @property
    def num_classes(self) -> int:
        return int(self._labels.max()) + 1 if len(self._labels) else 0

    def batch(self, indices: Sequence[int]) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized gather of a batch (faster than per-item indexing)."""
        indices = np.asarray(indices)
        return self.images[indices], self._labels[indices]


class Subset(Dataset):
    """Index view over a base dataset."""

    def __init__(self, base: Dataset, indices: Sequence[int]) -> None:
        self.base = base
        self.indices = np.asarray(indices, dtype=np.int64)

    def __len__(self) -> int:
        return len(self.indices)

    def __getitem__(self, index: int) -> Tuple[np.ndarray, int]:
        return self.base[int(self.indices[index])]

    @property
    def labels(self) -> np.ndarray:
        return self.base.labels[self.indices]

    def batch(self, indices: Sequence[int]) -> Tuple[np.ndarray, np.ndarray]:
        mapped = self.indices[np.asarray(indices)]
        if hasattr(self.base, "batch"):
            return self.base.batch(mapped)
        xs, ys = zip(*(self.base[int(i)] for i in mapped))
        return np.stack(xs), np.asarray(ys)


def train_val_split(
    dataset: Dataset, val_fraction: float, rng: np.random.Generator
) -> Tuple[Subset, Subset]:
    """Random split into train/validation index views.

    Guarantees a non-empty validation set whenever ``val_fraction > 0`` and
    the dataset has at least two examples (the paper's accuracy gate needs a
    validation estimate on every client).
    """
    if not 0.0 <= val_fraction < 1.0:
        raise ValueError(f"val_fraction must be in [0, 1), got {val_fraction}")
    count = len(dataset)
    order = rng.permutation(count)
    n_val = int(round(count * val_fraction))
    if val_fraction > 0 and n_val == 0 and count >= 2:
        n_val = 1
    val_idx, train_idx = order[:n_val], order[n_val:]
    return Subset(dataset, train_idx), Subset(dataset, val_idx)
