"""Wire-attached clients: the HTTP session and the local-training runner.

:class:`ServerClient` is a thin, retrying ``urllib`` wrapper over the
``/v1`` protocol — one instance per connection/session.  On top of it,
:class:`WireClientRunner` rebuilds the *local* side of the federation from
the server's published config (``make_clients`` — same seeds, same
partitions, so client ``i`` here is bit-identical to client ``i`` of an
in-process run), then long-polls for tasks, executes them through the
one-and-only :func:`~repro.federated.execution.run_client_task` code
path, and streams codec-encoded updates back.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional, Sequence

from ..federated.builder import FederationConfig, make_clients
from ..federated.compression import build_compressor, unpack_state
from ..federated.execution import ClientTask, run_client_task
from .protocol import (
    PROTOCOL_VERSION,
    STATUS_DONE,
    STATUS_TASK,
    b64_decode,
    check_protocol,
)


class ServerClient:
    """One HTTP session against a :class:`~repro.serving.server
    .FederationServer` (or anything speaking the same protocol).

    Transient transport errors (connection refused/reset mid-round, the
    server's accept backlog overflowing under a thundering herd) are
    retried with linear backoff; protocol errors raise immediately.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        retries: int = 5,
        backoff_seconds: float = 0.2,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = retries
        self.backoff_seconds = backoff_seconds
        self.session: Optional[int] = None
        self.lease_seconds: float = 30.0

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _request(
        self, path: str, body: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        data = None
        headers = {}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        last_error: Optional[Exception] = None
        for attempt in range(self.retries + 1):
            request = urllib.request.Request(
                self.base_url + path, data=data, headers=headers
            )
            try:
                with urllib.request.urlopen(
                    request, timeout=self.timeout
                ) as response:
                    return json.loads(response.read().decode("utf-8"))
            except urllib.error.HTTPError as exc:
                # The server answered: decode its error payload and raise —
                # retrying a protocol error would just repeat it.
                detail = exc.read().decode("utf-8", "replace")
                try:
                    detail = json.loads(detail).get("error", detail)
                except (json.JSONDecodeError, AttributeError):
                    pass
                raise RuntimeError(
                    f"{path} failed with HTTP {exc.code}: {detail}"
                ) from exc
            except (urllib.error.URLError, ConnectionError, TimeoutError) as exc:
                last_error = exc
                if attempt < self.retries:
                    time.sleep(self.backoff_seconds * (attempt + 1))
        raise ConnectionError(
            f"{self.base_url}{path} unreachable after "
            f"{self.retries + 1} attempts: {last_error}"
        ) from last_error

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        return self._request("/v1/health")

    def fetch_config(self) -> Dict[str, Any]:
        """The server's run description: ``{"config": ..., "codec": ...}``."""
        payload = self._request("/v1/config")
        check_protocol(payload, "config")
        return payload

    def register(self, clients: Optional[Sequence[int]] = None) -> int:
        payload = self._request(
            "/v1/register",
            {
                "protocol": PROTOCOL_VERSION,
                "clients": None if clients is None else list(clients),
            },
        )
        check_protocol(payload, "register")
        self.session = int(payload["session"])
        self.lease_seconds = float(payload["lease_seconds"])
        return self.session

    def work(self, wait_seconds: float = 5.0, have_batch: int = 0) -> Dict[str, Any]:
        if self.session is None:
            raise RuntimeError("register() before polling for work")
        return self._request(
            f"/v1/work?session={self.session}&wait={wait_seconds}"
            f"&have_batch={have_batch}"
        )

    def post_result(self, task_id: int, wire_update: Dict[str, Any]) -> bool:
        payload = self._request(
            "/v1/result",
            {
                "protocol": PROTOCOL_VERSION,
                "task_id": task_id,
                "update": wire_update,
            },
        )
        return bool(payload["accepted"])

    def fetch_history(self) -> Dict[str, Any]:
        return self._request("/v1/history")["history"]

    def shutdown(self) -> None:
        self._request("/v1/shutdown", {"protocol": PROTOCOL_VERSION})


class WireClientRunner:
    """Drives real local training for a slice of the federation.

    The runner downloads the server's config, rebuilds the client
    population locally (lazy pool — only the served indices ever
    materialize), registers for ``client_indices`` (None = serve
    anything), and then loops: poll → decode weights → train/evaluate →
    encode → upload, until the server reports the run done.

    Client state lives here across rounds, exactly as it lives in the
    trainer's client list in-process — which is why served indices must
    not overlap between concurrently attached runners.
    """

    def __init__(
        self,
        base_url: str,
        client_indices: Optional[Sequence[int]] = None,
        poll_seconds: float = 5.0,
        timeout: float = 60.0,
    ) -> None:
        self.api = ServerClient(base_url, timeout=timeout)
        self.client_indices = (
            None if client_indices is None else list(client_indices)
        )
        self.poll_seconds = poll_seconds
        self.tasks_completed = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._error: Optional[BaseException] = None

    def run(self) -> int:
        """Serve until the run completes; returns tasks completed."""
        published = self.api.fetch_config()
        config = FederationConfig.from_dict(published["config"])
        # Encode uploads with the server's *wire* codec (normally identity:
        # a ``compression:`` section is modeled trainer-side, not on the
        # transport), never with ``config.compression`` — lossy-encoding
        # full states here would corrupt aggregation server-side.
        codec = build_compressor(published.get("codec") or "identity")
        clients = make_clients(config)
        self.api.register(self.client_indices)
        have_batch = 0
        global_state = None
        while not self._stop.is_set():
            try:
                response = self.api.work(
                    wait_seconds=self.poll_seconds, have_batch=have_batch
                )
            except ConnectionError:
                if self._confirm_run_over():
                    break
                raise
            status = response["status"]
            if status == STATUS_DONE:
                break
            if status != STATUS_TASK:
                continue  # wait: poll again
            if "global" in response:
                global_state = unpack_state(b64_decode(response["global"]))
                have_batch = int(response["batch_id"])
            task = ClientTask.from_wire(response["task"])
            update = run_client_task(
                clients[task.client_index], task, global_state
            )
            self.api.post_result(
                int(response["task_id"]), update.to_wire(codec=codec)
            )
            self.tasks_completed += 1
        return self.tasks_completed

    def _confirm_run_over(self) -> bool:
        """After losing the connection, verify the run actually ended.

        A server that finished serving may be torn down before this
        runner's next poll — that is a clean end of service, but only if
        the run is confirmed over.  A crash or a partition that outlasts
        the retry window must surface through :meth:`join`, not be
        swallowed as success.
        """
        try:
            return self.api.health().get("phase") in ("done", "stopped")
        except (ConnectionError, RuntimeError):
            return False

    # ------------------------------------------------------------------
    # Thread sugar (the CLI and tests run many runners side by side)
    # ------------------------------------------------------------------
    def start(self) -> "WireClientRunner":
        self._thread = threading.Thread(
            target=self._run_guarded, name="repro-wire-client", daemon=True
        )
        self._thread.start()
        return self

    def _run_guarded(self) -> None:
        try:
            self.run()
        except BaseException as exc:
            self._error = exc

    def join(self, timeout: Optional[float] = None) -> int:
        if self._thread is None:
            raise RuntimeError("runner was never started")
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise TimeoutError(f"runner still serving after {timeout}s")
        if self._error is not None:
            raise RuntimeError("wire client failed") from self._error
        return self.tasks_completed

    def stop(self) -> None:
        self._stop.set()


def attach_runners(
    base_url: str,
    partitions: List[Sequence[int]],
    poll_seconds: float = 5.0,
) -> List[WireClientRunner]:
    """Start one runner per index partition (disjoint slices of clients)."""
    return [
        WireClientRunner(
            base_url, client_indices=list(part), poll_seconds=poll_seconds
        ).start()
        for part in partitions
    ]
