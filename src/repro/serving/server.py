""":class:`FederationServer`: the round loop behind an HTTP endpoint.

The server owns three things: a :class:`~repro.serving.hub.WireHub` task
board, a trainer thread running the completely ordinary
``Federation.from_config(config, backend=WireBackend(hub)).run()``, and a
``ThreadingHTTPServer`` exposing the hub to wire clients (see
:mod:`~repro.serving.protocol` for the endpoint table).  Because the
trainer loop is the stock one, everything config-driven — samplers, fleet
simulation, round policies, callbacks — works unchanged over the wire.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Iterable, Optional
from urllib.parse import parse_qs, urlparse

from ..federated.builder import FederationConfig
from ..federated.federation import Federation
from ..federated.metrics import History
from ..utils.serialization import history_to_dict
from .hub import HubClosed, WireBackend, WireHub
from .protocol import PROTOCOL_VERSION, check_protocol


class _QuietThreadingHTTPServer(ThreadingHTTPServer):
    """Threading server that tolerates clients abandoning their sockets.

    A long-polling client whose socket times out (or that is killed
    mid-round) leaves the handler writing into a dead pipe; that is a
    normal serving event — the lease-expiry requeue recovers the task —
    not something worth a traceback per occurrence.
    """

    daemon_threads = True
    # A thousand clients long-polling means a thousand concurrent
    # connects at round boundaries; the default backlog of 5 drops them.
    request_queue_size = 256

    def handle_error(self, request, client_address) -> None:
        import sys

        exc = sys.exc_info()[1]
        if isinstance(exc, (BrokenPipeError, ConnectionResetError)):
            return
        super().handle_error(request, client_address)


class FederationServer:
    """A long-lived federation endpoint for one configured run.

    >>> server = FederationServer(config)           # doctest: +SKIP
    >>> server.start()                              # doctest: +SKIP
    >>> print(server.url)  # clients attach here    # doctest: +SKIP
    >>> history = server.wait()                     # doctest: +SKIP

    ``port=0`` binds an ephemeral port (read it back from ``.port``).
    ``time_scale`` > 0 paces task dispatch by the fleet-simulated
    download-done offsets (seconds of simulated time per real second);
    0 dispatches immediately.  The run starts on :meth:`start` and the
    trainer thread blocks on the hub until enough wire clients attach to
    execute each round's tasks.
    """

    def __init__(
        self,
        config: FederationConfig,
        host: str = "127.0.0.1",
        port: int = 0,
        lease_seconds: float = 30.0,
        time_scale: float = 0.0,
        callbacks: Optional[Iterable] = None,
    ) -> None:
        self.config = config
        self.host = host
        self._requested_port = port
        self._callbacks = callbacks
        self.hub = WireHub(lease_seconds=lease_seconds)
        # Wire transport is always lossless.  A ``compression:`` section is
        # *modeled* by the trainer itself (FedAvgCompressed round-trips each
        # delta through the codec server-side), so encoding full client
        # states with a lossy codec here would zero most coordinates on
        # decode and double-apply the codec — corrupting aggregation.
        self.backend = WireBackend(self.hub, codec="identity", time_scale=time_scale)
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._http_thread: Optional[threading.Thread] = None
        self._trainer_thread: Optional[threading.Thread] = None
        self._history: Optional[History] = None
        self._error: Optional[BaseException] = None
        self._phase = "idle"

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "FederationServer":
        """Bind the port, start the HTTP loop and the trainer thread."""
        if self._httpd is not None:
            raise RuntimeError("server already started")
        federation = Federation.from_config(self.config, backend=self.backend)
        handler = _make_handler(self)
        self._httpd = _QuietThreadingHTTPServer(
            (self.host, self._requested_port), handler
        )
        self._http_thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.2},
            name="repro-serve-http",
            daemon=True,
        )
        self._http_thread.start()
        self._phase = "serving"
        self._trainer_thread = threading.Thread(
            target=self._run_trainer,
            args=(federation,),
            name="repro-serve-trainer",
            daemon=True,
        )
        self._trainer_thread.start()
        return self

    def _run_trainer(self, federation: Federation) -> None:
        try:
            self._history = federation.run(callbacks=self._callbacks)
            self._phase = "done"
        except HubClosed:
            self._phase = "stopped"
        except BaseException as exc:  # surfaced through .history / /v1/health
            self._error = exc
            self._phase = "failed"
        finally:
            self.hub.mark_done()

    def wait(self, timeout: Optional[float] = None) -> History:
        """Block until the run finishes; returns (or raises) its outcome."""
        if self._trainer_thread is None:
            raise RuntimeError("server was never started")
        self._trainer_thread.join(timeout)
        if self._trainer_thread.is_alive():
            raise TimeoutError(f"run still in progress after {timeout}s")
        return self.history

    @property
    def history(self) -> History:
        if self._error is not None:
            raise RuntimeError("the served run failed") from self._error
        if self._history is None:
            raise RuntimeError("the run has not finished")
        return self._history

    @property
    def phase(self) -> str:
        return self._phase

    @property
    def port(self) -> int:
        if self._httpd is None:
            raise RuntimeError("server was never started")
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def stop(self) -> None:
        """Tear everything down (idempotent); an unfinished run is aborted."""
        self.hub.close()
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._http_thread is not None:
            self._http_thread.join(timeout=5.0)
            self._http_thread = None
        if self._trainer_thread is not None:
            self._trainer_thread.join(timeout=5.0)
            self._trainer_thread = None

    def __enter__(self) -> "FederationServer":
        return self.start() if self._httpd is None else self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FederationServer(phase={self._phase!r})"


def _make_handler(server: FederationServer):
    """A request-handler class closed over one :class:`FederationServer`."""

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        # ------------------------------------------------------------------
        def log_message(self, *args) -> None:  # quiet by default
            pass

        def _reply(self, payload: Dict[str, Any], status: int = 200) -> None:
            body = json.dumps(payload).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _error(self, status: int, message: str) -> None:
            self._reply(
                {"protocol": PROTOCOL_VERSION, "error": message}, status=status
            )

        def _read_json(self) -> Dict[str, Any]:
            length = int(self.headers.get("Content-Length", 0))
            if length == 0:
                return {}
            return json.loads(self.rfile.read(length).decode("utf-8"))

        # ------------------------------------------------------------------
        def do_GET(self) -> None:  # noqa: N802 - http.server API
            url = urlparse(self.path)
            try:
                if url.path == "/v1/health":
                    self._reply(
                        {
                            "protocol": PROTOCOL_VERSION,
                            "phase": server.phase,
                            "tasks_completed": server.hub.tasks_completed,
                        }
                    )
                elif url.path == "/v1/config":
                    self._reply(
                        {
                            "protocol": PROTOCOL_VERSION,
                            "config": server.config.to_dict(),
                            "codec": server.backend.codec,
                        }
                    )
                elif url.path == "/v1/work":
                    query = parse_qs(url.query)
                    payload = server.hub.take(
                        int(query["session"][0]),
                        wait_seconds=float(query.get("wait", ["0"])[0]),
                        have_batch=int(query.get("have_batch", ["0"])[0]),
                    )
                    payload["protocol"] = PROTOCOL_VERSION
                    self._reply(payload)
                elif url.path == "/v1/history":
                    if server.phase == "serving":
                        self._error(409, "run still in progress")
                    elif server.phase == "failed":
                        self._error(500, "the served run failed")
                    else:
                        self._reply(
                            {
                                "protocol": PROTOCOL_VERSION,
                                "history": history_to_dict(server.history),
                            }
                        )
                else:
                    self._error(404, f"unknown endpoint {url.path}")
            except (KeyError, ValueError) as exc:
                self._error(400, str(exc))
            except HubClosed:
                self._reply({"protocol": PROTOCOL_VERSION, "status": "done"})

        def do_POST(self) -> None:  # noqa: N802 - http.server API
            url = urlparse(self.path)
            try:
                if url.path == "/v1/register":
                    body = self._read_json()
                    check_protocol(body, "register")
                    session = server.hub.register(body.get("clients"))
                    self._reply(
                        {
                            "protocol": PROTOCOL_VERSION,
                            "session": session,
                            "lease_seconds": server.hub.lease_seconds,
                        }
                    )
                elif url.path == "/v1/result":
                    from ..federated.execution import ClientUpdate

                    body = self._read_json()
                    update = ClientUpdate.from_wire(body["update"])
                    accepted = server.hub.complete(
                        int(body["task_id"]), update
                    )
                    self._reply(
                        {"protocol": PROTOCOL_VERSION, "accepted": accepted}
                    )
                elif url.path == "/v1/shutdown":
                    self._reply({"protocol": PROTOCOL_VERSION, "stopping": True})
                    # Shut down from a helper thread: shutdown() blocks until
                    # serve_forever() exits, which cannot happen from inside
                    # a handler of that very server.
                    threading.Thread(target=server.stop, daemon=True).start()
                else:
                    self._error(404, f"unknown endpoint {url.path}")
            except (KeyError, ValueError) as exc:
                self._error(400, str(exc))
            except HubClosed:
                self._reply({"protocol": PROTOCOL_VERSION, "status": "done"})

    return Handler
