"""Load-test harness: thousands of fake wire clients against a real server.

The point is to stress the *serving* path — registration, long-poll
dispatch, upload decode, round close — not local SGD, so the harness
registers a tiny synthetic dataset (``wire-micro``: 1×8×8, two classes,
which resolves to the shape-generic MLP) and attaches fake clients that
echo the round's global weights back as their update instead of training.
Echoing is a *valid* update (aggregating identical states is the
identity), so every server-side code path — codec decode, weighted
averaging, round records, the final evaluation — runs for real.

:func:`run_load_test` returns a :class:`LoadTestReport`; the benchmark
suite dumps it as the ``BENCH_serving`` artifact.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..data.registry import available_datasets, register_dataset
from ..data.synthetic import DatasetSpec, _synthetic_loader
from ..federated.builder import FederationConfig
from ..federated.compression import IdentityCompressor, unpack_state
from ..federated.execution import WIRE_VERSION
from .client import ServerClient
from .protocol import STATUS_DONE, STATUS_TASK, b64_decode, b64_encode
from .server import FederationServer

#: The harness's registered micro dataset (lazily added on first use).
MICRO_DATASET = "wire-micro"


def ensure_micro_dataset() -> str:
    """Register the load test's tiny dataset family (idempotent)."""
    if MICRO_DATASET not in available_datasets():
        register_dataset(
            DatasetSpec(MICRO_DATASET, (1, 8, 8), 2, signal=2.0, noise=1.0,
                        max_shift=0),
            summary="tiny synthetic family for serving load tests",
        )(_synthetic_loader)
    return MICRO_DATASET


def load_test_config(
    num_clients: int, rounds: int, seed: int = 0
) -> FederationConfig:
    """A serving-shaped config: every client sampled every round."""
    ensure_micro_dataset()
    return FederationConfig(
        dataset=MICRO_DATASET,
        algorithm="fedavg",
        num_clients=num_clients,
        rounds=rounds,
        seed=seed,
        sample_fraction=1.0,
        data={
            "partition": "iid",
            "n_train": max(4 * num_clients, 256),
            "n_test": max(2 * num_clients, 128),
        },
    )


class FakeWireClient:
    """One protocol-complete client that echoes instead of training.

    Per batch it decodes the published global weights once, re-encodes
    them once with the identity codec, and answers every train task with
    that cached blob (evaluate tasks get a fixed accuracy) — so the
    server does full wire work while the client does almost none.
    """

    def __init__(
        self, base_url: str, client_index: int, poll_seconds: float = 10.0
    ) -> None:
        self.api = ServerClient(base_url, timeout=poll_seconds + 30.0)
        self.client_index = client_index
        self.poll_seconds = poll_seconds
        self.tasks_completed = 0
        self.error: Optional[BaseException] = None

    def _state_field(self, global_b64: str) -> Dict[str, Any]:
        state = unpack_state(b64_decode(global_b64))
        encoded = IdentityCompressor().encode(state)
        return {
            "codec": encoded.codec,
            "bits": encoded.bits,
            "blob": b64_encode(encoded.payload),
        }

    def _wire_update(self, kind: str, state_field) -> Dict[str, Any]:
        return {
            "schema": WIRE_VERSION,
            "client_index": self.client_index,
            "client_id": self.client_index,
            "num_examples": 1 if kind == "train" else 0,
            "mean_loss": 0.0,
            "val_accuracy": None,
            "pruned_unstructured": False,
            "pruned_structured": False,
            "accuracy": 0.5 if kind == "evaluate" else None,
            "sparsity": None,
            "channel_sparsity": None,
            "state": state_field if kind == "train" else None,
            "mask": None,
        }

    def serve(self) -> None:
        try:
            self.api.register([self.client_index])
            have_batch = 0
            state_field: Optional[Dict[str, Any]] = None
            while True:
                response = self.api.work(
                    wait_seconds=self.poll_seconds, have_batch=have_batch
                )
                status = response["status"]
                if status == STATUS_DONE:
                    return
                if status != STATUS_TASK:
                    continue
                if "global" in response:
                    state_field = self._state_field(response["global"])
                    have_batch = int(response["batch_id"])
                kind = response["task"]["kind"]
                self.api.post_result(
                    int(response["task_id"]),
                    self._wire_update(kind, state_field),
                )
                self.tasks_completed += 1
        except BaseException as exc:
            self.error = exc


@dataclass
class LoadTestReport:
    """What ``BENCH_serving`` publishes."""

    clients: int
    rounds: int
    wall_seconds: float
    tasks_completed: int
    round_latencies: List[float] = field(default_factory=list)
    failed_clients: int = 0
    final_accuracy: Optional[float] = None

    @property
    def tasks_per_second(self) -> float:
        return self.tasks_completed / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def mean_round_latency(self) -> Optional[float]:
        if not self.round_latencies:
            return None
        return sum(self.round_latencies) / len(self.round_latencies)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "clients": self.clients,
            "rounds": self.rounds,
            "wall_seconds": self.wall_seconds,
            "tasks_completed": self.tasks_completed,
            "tasks_per_second": self.tasks_per_second,
            "round_latencies": self.round_latencies,
            "mean_round_latency": self.mean_round_latency,
            "failed_clients": self.failed_clients,
            "final_accuracy": self.final_accuracy,
        }


def run_load_test(
    num_clients: int = 1000,
    rounds: int = 2,
    seed: int = 0,
    poll_seconds: float = 10.0,
    lease_seconds: float = 30.0,
    timeout: float = 600.0,
) -> LoadTestReport:
    """Serve one run to ``num_clients`` concurrent fake clients.

    Starts a real :class:`~repro.serving.server.FederationServer` on an
    ephemeral localhost port, attaches one :class:`FakeWireClient` thread
    per client index, waits for the run, and distills the hub's batch
    stats into a :class:`LoadTestReport`.
    """
    config = load_test_config(num_clients, rounds, seed=seed)
    server = FederationServer(
        config, lease_seconds=lease_seconds
    ).start()
    started = time.monotonic()
    fakes = [
        FakeWireClient(server.url, index, poll_seconds=poll_seconds)
        for index in range(num_clients)
    ]
    threads = [
        threading.Thread(target=fake.serve, daemon=True) for fake in fakes
    ]
    try:
        for thread in threads:
            thread.start()
        history = server.wait(timeout=timeout)
        wall = time.monotonic() - started
        for thread in threads:
            thread.join(timeout=poll_seconds + 30.0)
        stats = server.hub.stats()
        return LoadTestReport(
            clients=num_clients,
            rounds=rounds,
            wall_seconds=wall,
            tasks_completed=server.hub.tasks_completed,
            round_latencies=[
                batch.latency_seconds
                for batch in stats
                if batch.kind == "train" and batch.latency_seconds is not None
            ],
            failed_clients=sum(1 for fake in fakes if fake.error is not None),
            final_accuracy=history.final_accuracy,
        )
    finally:
        server.stop()
