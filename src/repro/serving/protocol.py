"""The serving wire protocol: versioned JSON envelopes over HTTP.

Everything is stdlib: ``http.server`` on the server side, ``urllib`` on
the client side, JSON bodies with base64-wrapped binary blobs (codec
payloads from :mod:`repro.federated.compression`).  Endpoints (all under
``/v1``):

========================  =====================================================
``GET  /v1/health``       liveness + run phase (``serving``/``done``/``failed``)
``GET  /v1/config``       the run's ``FederationConfig`` + uplink codec — a
                          client rebuilds its local client population from this
``POST /v1/register``     ``{"clients": [...]|null}`` → a session serving those
                          client indices (null = any)
``GET  /v1/work``         long-poll for a task: ``{"status": "task"|"wait"|
                          "done", ...}``; a ``task`` response carries the wire
                          ``ClientTask``, its lease, and (unless the session
                          already holds this batch's weights) the global state
``POST /v1/result``       ``{"task_id", "update"}`` — idempotent; late/stale
                          results are acknowledged but dropped
``GET  /v1/history``      the finished run's ``History`` (409 while running)
``POST /v1/shutdown``     stop the server loop
========================  =====================================================

Work dispatch is per-client FIFO (a client's tasks execute in round
order), leases expire so a disconnected client's task is re-dispatched,
and duplicate results are acknowledged-but-ignored — the retry story for
flaky clients.
"""

from __future__ import annotations

import base64
from typing import Any, Dict

#: Protocol version served by /v1 and checked by clients.
PROTOCOL_VERSION = 1

#: ``GET /v1/work`` response statuses.
STATUS_TASK = "task"
STATUS_WAIT = "wait"
STATUS_DONE = "done"


def b64_encode(blob: bytes) -> str:
    """Binary → JSON-safe ASCII (codec payloads, packed states)."""
    return base64.b64encode(blob).decode("ascii")


def b64_decode(text: str) -> bytes:
    """Inverse of :func:`b64_encode`."""
    return base64.b64decode(text.encode("ascii"))


def check_protocol(payload: Dict[str, Any], what: str) -> None:
    """Refuse payloads from a different protocol generation."""
    version = payload.get("protocol")
    if version != PROTOCOL_VERSION:
        raise ValueError(
            f"unsupported {what} protocol version {version!r} "
            f"(this build speaks {PROTOCOL_VERSION})"
        )
