"""Federation-as-a-service: the round loop as a long-lived wire protocol.

The simulator prices million-client rounds; this package *serves* them.
:class:`FederationServer` runs the unchanged trainer loop in a background
thread, but on a :class:`WireBackend` that publishes every
:class:`~repro.federated.execution.ClientTask` to a :class:`WireHub` task
board instead of executing it in-process.  Wire-attached clients
(:class:`WireClientRunner`, or anything speaking the JSON-over-HTTP
protocol in :mod:`~repro.serving.protocol`) register, long-poll for work,
train locally and stream codec-encoded updates back.

Because the trainer loop itself is untouched — same sampler draws, same
fleet-simulator plans, same aggregation order — a synchronous-policy run
served over the wire produces a **bit-identical**
:class:`~repro.federated.metrics.History` to the same config run
in-process.  Under the async-buffer policy the server becomes genuinely
asynchronous: it closes rounds without waiting for stragglers, and their
uploads land in later rounds with the policy's staleness discount.
:func:`run_load_test` drives thousands of fake clients against a real
localhost server and reports round latency / aggregate throughput
(the ``BENCH_serving`` artifact).
"""

from .protocol import PROTOCOL_VERSION, b64_decode, b64_encode
from .hub import HubClosed, TaskEntry, WireBackend, WireHub
from .server import FederationServer
from .client import ServerClient, WireClientRunner, attach_runners
from .loadtest import LoadTestReport, run_load_test

__all__ = [
    "PROTOCOL_VERSION",
    "b64_encode",
    "b64_decode",
    "HubClosed",
    "TaskEntry",
    "WireHub",
    "WireBackend",
    "FederationServer",
    "ServerClient",
    "WireClientRunner",
    "attach_runners",
    "LoadTestReport",
    "run_load_test",
]
