"""The :class:`WireHub` task board and the :class:`WireBackend` that feeds it.

The hub is the server's in-memory meeting point between the trainer loop
(one thread, submitting batches of :class:`ClientTask` work and blocking
on results) and many wire-attached clients (HTTP handler threads leasing
tasks and posting updates).  Dispatch rules:

* **Per-client FIFO** — only the head of a client's queue is leasable, so
  one client's tasks execute in submission (= round) order even when an
  async straggler's training task is still outstanding when its next
  round's work arrives.
* **Leases expire** — a task leased to a client that disconnects is
  re-queued after ``lease_seconds`` and re-dispatched to whoever polls
  next; results are idempotent, so the original client's late upload is
  acknowledged and dropped.
* **Restart cancellation** — submitting a *train* batch cancels any
  incomplete train task for the same clients (the fleet simulator's
  all-busy restart: stale work is discarded, not aggregated).
* **Bounded memory** — a batch's packed global weights are freed once
  every task in it is completed or cancelled, and a completed task's
  entry (carrying a full client-state update) leaves the board when the
  trainer consumes it via ``wait_for`` — so a long-lived server holds
  only the *outstanding* work, not one model copy per round served.

:class:`WireBackend` is a normal
:class:`~repro.federated.execution.ExecutionBackend`, so the trainer loop
is completely unchanged — which is what makes a synchronous-policy wire
run bit-identical to the in-process loop.  Under the async-buffer policy
it only blocks on the round plan's *delivered* set: stragglers stay
outstanding on the wire and their uploads are collected in the later
round whose plan carries them (so per-round ``train_loss`` membership —
and nothing else — differs from the in-process simulation, which trains
stragglers eagerly).
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..federated.execution import (
    ClientTask,
    ClientUpdate,
    ExecutionBackend,
    State,
)
from .protocol import STATUS_DONE, STATUS_TASK, STATUS_WAIT, b64_encode

#: TaskEntry lifecycle states.
PENDING = "pending"
LEASED = "leased"
DONE = "done"
CANCELLED = "cancelled"


class HubClosed(RuntimeError):
    """The hub shut down while a caller was blocked on it."""


@dataclass
class TaskEntry:
    """One task on the board, from submission to completion."""

    task_id: int
    batch_id: int
    round_index: int
    task: ClientTask
    codec: str
    not_before: float = 0.0  # monotonic time before which take() hides it
    status: str = PENDING
    lease_expiry: float = 0.0
    lease_session: Optional[int] = None
    update: Optional[ClientUpdate] = None


@dataclass
class BatchStats:
    """Timing of one submitted batch (the BENCH_serving raw material)."""

    batch_id: int
    round_index: int
    kind: str
    size: int
    submitted: float
    finished: Optional[float] = None
    completed: int = 0
    cancelled: int = 0

    @property
    def settled(self) -> bool:
        """Every task accounted for: no lease will ever need this batch."""
        return self.completed + self.cancelled >= self.size

    @property
    def latency_seconds(self) -> Optional[float]:
        if self.finished is None:
            return None
        return self.finished - self.submitted


@dataclass
class _Session:
    session_id: int
    clients: Optional[frozenset]  # None = serves any client index


class WireHub:
    """Thread-safe task board between the trainer loop and wire clients."""

    def __init__(self, lease_seconds: float = 30.0) -> None:
        if lease_seconds <= 0:
            raise ValueError(f"lease_seconds must be > 0, got {lease_seconds}")
        self.lease_seconds = lease_seconds
        self._cond = threading.Condition()
        self._task_ids = itertools.count(1)
        self._batch_ids = itertools.count(1)
        self._session_ids = itertools.count(1)
        self._entries: Dict[int, TaskEntry] = {}
        self._queues: Dict[int, deque] = {}  # client_index -> deque[task_id]
        self._globals: Dict[int, str] = {}  # batch_id -> b64 packed weights
        self._sessions: Dict[int, _Session] = {}
        self._batches: Dict[int, BatchStats] = {}
        # Dispatch must stay O(log n) per poll at thousands of clients, so
        # two lazy heaps index the entries: queue heads ready to lease, and
        # outstanding leases by expiry.  Stale records are skipped on pop.
        self._ready: List[int] = []  # heap of candidate head task_ids
        self._lease_heap: List[Tuple[float, int]] = []  # (expiry, task_id)
        self._done = False
        self._closed = False
        self.tasks_completed = 0

    # ------------------------------------------------------------------
    # Trainer side
    # ------------------------------------------------------------------
    def submit_batch(
        self,
        tasks: Sequence[ClientTask],
        global_state: State,
        *,
        codec: str = "identity",
        round_index: int = 0,
        not_before: Optional[Dict[int, float]] = None,
    ) -> Tuple[int, List[int]]:
        """Publish one batch; returns ``(batch_id, task_ids)`` in task order.

        The global weights are packed once per batch and shared by every
        task in it; sessions download them at most once per batch (the
        ``have_batch`` etag in the work response).  ``not_before`` maps a
        client index to a monotonic time before which its task stays
        hidden — the fleet-simulated dispatch pacing.
        """
        from ..federated.compression import pack_state

        kind = "train" if all(t.kind == "train" for t in tasks) else "evaluate"
        blob = b64_encode(pack_state(global_state))
        with self._cond:
            if self._closed:
                raise HubClosed("hub is closed")
            batch_id = next(self._batch_ids)
            self._globals[batch_id] = blob
            if kind == "train":
                self._cancel_stale_train(
                    {task.client_index for task in tasks}
                )
            task_ids = []
            for task in tasks:
                entry = TaskEntry(
                    task_id=next(self._task_ids),
                    batch_id=batch_id,
                    round_index=round_index,
                    task=task,
                    codec=codec,
                    not_before=(not_before or {}).get(task.client_index, 0.0),
                )
                self._entries[entry.task_id] = entry
                self._queues.setdefault(task.client_index, deque()).append(
                    entry.task_id
                )
                task_ids.append(entry.task_id)
            for index in {task.client_index for task in tasks}:
                self._push_head(index)
            self._batches[batch_id] = BatchStats(
                batch_id=batch_id,
                round_index=round_index,
                kind=kind,
                size=len(task_ids),
                submitted=time.monotonic(),
            )
            self._cond.notify_all()
            return batch_id, task_ids

    def _cancel_stale_train(self, client_indices: Set[int]) -> None:
        """Discard incomplete train tasks for clients getting fresh ones.

        The all-busy restart: the simulator discarded these clients'
        in-flight work, so their stale tasks must never be aggregated.
        Finished entries stay (a later plan may still carry them); only
        pending/leased ones are cancelled — and dropped from the board
        entirely, so a long-lived server does not accumulate them (a late
        upload for a dropped id is acknowledged and ignored, exactly like
        a duplicate).
        """
        for index in client_indices:
            queue = self._queues.get(index)
            if not queue:
                continue
            for task_id in list(queue):
                entry = self._entries[task_id]
                if entry.task.kind == "train" and entry.status in (
                    PENDING,
                    LEASED,
                ):
                    entry.status = CANCELLED
                    queue.remove(task_id)
                    del self._entries[task_id]
                    stats = self._batches[entry.batch_id]
                    stats.cancelled += 1
                    self._settle_batch(stats)
            self._push_head(index)

    def _settle_batch(self, stats: BatchStats) -> None:
        """Free a fully accounted batch's packed global weights.

        Every task is completed or cancelled, so no future lease can need
        the batch's blob — dropping it caps the server's memory at the
        *outstanding* batches instead of one model copy per round served.
        Only the small :class:`BatchStats` record survives for
        introspection.
        """
        if stats.settled:
            if stats.finished is None:
                stats.finished = time.monotonic()
            self._globals.pop(stats.batch_id, None)

    def wait_for(
        self, task_ids: Sequence[int], timeout: Optional[float] = None
    ) -> Dict[int, ClientUpdate]:
        """Block until every listed task is done; ``{task_id: update}``.

        Consuming is destructive: returned tasks leave the board (their
        entries — holding full client-state updates — would otherwise
        accumulate for the lifetime of a long-lived server).  Raises
        :class:`HubClosed` if the hub shuts down first, and
        ``RuntimeError`` if an awaited task is gone from the board — it
        was cancelled by a restart batch, or already consumed (the
        trainer asked for work it also discarded — a logic error
        upstream).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                if self._closed:
                    raise HubClosed("hub closed while awaiting results")
                pending = []
                for task_id in task_ids:
                    entry = self._entries.get(task_id)
                    if entry is None:
                        raise RuntimeError(
                            f"task {task_id} is gone from the board "
                            "(cancelled by a restart batch, or already "
                            "consumed)"
                        )
                    if entry.status != DONE:
                        pending.append(task_id)
                if not pending:
                    return {
                        task_id: self._entries.pop(task_id).update
                        for task_id in task_ids
                    }
                remaining = 0.5
                if deadline is not None:
                    remaining = min(remaining, deadline - time.monotonic())
                    if remaining <= 0:
                        raise TimeoutError(
                            f"tasks {pending} not completed within {timeout}s"
                        )
                self._cond.wait(remaining)

    def mark_done(self) -> None:
        """The run finished: tell polling clients to exit cleanly."""
        with self._cond:
            self._done = True
            self._cond.notify_all()

    def close(self) -> None:
        """Shut down: wake every waiter with :class:`HubClosed`."""
        with self._cond:
            self._closed = True
            self._done = True
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------
    def register(self, clients: Optional[Sequence[int]] = None) -> int:
        """Open a session serving ``clients`` (None = any client index)."""
        with self._cond:
            if self._closed:
                raise HubClosed("hub is closed")
            session = _Session(
                session_id=next(self._session_ids),
                clients=None if clients is None else frozenset(
                    int(index) for index in clients
                ),
            )
            self._sessions[session.session_id] = session
            return session.session_id

    def _push_head(self, index: int) -> None:
        """Offer a client's queue head to the global ready heap."""
        queue = self._queues.get(index)
        if not queue:
            return
        entry = self._entries[queue[0]]
        if entry.status == PENDING:
            heapq.heappush(self._ready, entry.task_id)

    def _requeue_expired(self, now: float) -> None:
        while self._lease_heap and self._lease_heap[0][0] <= now:
            expiry, task_id = heapq.heappop(self._lease_heap)
            entry = self._entries.get(task_id)
            if (
                entry is None
                or entry.status != LEASED
                or entry.lease_expiry > expiry
            ):
                continue  # stale record: completed, cancelled, or re-leased
            entry.status = PENDING
            entry.lease_session = None
            heapq.heappush(self._ready, task_id)

    def _leasable(self, session: _Session, now: float) -> Optional[TaskEntry]:
        if session.clients is not None:
            # Scoped session: scan its own queue heads (scopes are small —
            # one index per fake client, a slice per runner).
            best: Optional[TaskEntry] = None
            for index in session.clients:
                queue = self._queues.get(index)
                if not queue:
                    continue
                entry = self._entries[queue[0]]  # per-client FIFO: head only
                if entry.status != PENDING or entry.not_before > now:
                    continue
                if best is None or entry.task_id < best.task_id:
                    best = entry
            return best
        # Serve-anything session: pop the lowest ready task id, lazily
        # discarding records that are no longer a pending queue head.
        deferred: List[int] = []
        best = None
        while self._ready:
            task_id = heapq.heappop(self._ready)
            entry = self._entries.get(task_id)
            if entry is None or entry.status != PENDING:
                continue
            queue = self._queues.get(entry.task.client_index)
            if not queue or queue[0] != task_id:
                continue
            if entry.not_before > now:
                deferred.append(task_id)
                continue
            best = entry
            break
        for task_id in deferred:
            heapq.heappush(self._ready, task_id)
        return best

    def take(
        self, session_id: int, wait_seconds: float = 0.0, have_batch: int = 0
    ) -> Dict[str, Any]:
        """Long-poll for one task; the wire's ``GET /v1/work`` semantics.

        Returns a ``{"status": ...}`` payload: a leased task (with the
        batch's global weights unless the session already holds
        ``have_batch``), a ``wait`` hint, or ``done`` when the run is
        over and nothing is left to serve.
        """
        deadline = time.monotonic() + max(0.0, wait_seconds)
        with self._cond:
            session = self._sessions.get(session_id)
            if session is None:
                raise KeyError(f"unknown session {session_id}")
            while True:
                if self._closed:
                    return {"status": STATUS_DONE}
                now = time.monotonic()
                self._requeue_expired(now)
                entry = self._leasable(session, now)
                if entry is not None:
                    entry.status = LEASED
                    entry.lease_expiry = now + self.lease_seconds
                    entry.lease_session = session_id
                    heapq.heappush(
                        self._lease_heap, (entry.lease_expiry, entry.task_id)
                    )
                    payload: Dict[str, Any] = {
                        "status": STATUS_TASK,
                        "task_id": entry.task_id,
                        "batch_id": entry.batch_id,
                        "round_index": entry.round_index,
                        "codec": entry.codec,
                        "lease_seconds": self.lease_seconds,
                        "task": entry.task.to_wire(),
                    }
                    if entry.batch_id != have_batch:
                        payload["global"] = self._globals[entry.batch_id]
                    return payload
                if self._done:
                    return {"status": STATUS_DONE}
                remaining = min(0.5, deadline - now)
                if remaining <= 0:
                    return {"status": STATUS_WAIT}
                self._cond.wait(remaining)

    def complete(self, task_id: int, update: ClientUpdate) -> bool:
        """Record one task's result.  Idempotent: duplicates and results
        for cancelled (or unknown) tasks return ``False`` and are dropped."""
        with self._cond:
            entry = self._entries.get(task_id)
            if entry is None or entry.status in (DONE, CANCELLED):
                return False
            entry.status = DONE
            entry.update = update
            entry.lease_session = None
            queue = self._queues.get(entry.task.client_index)
            if queue and queue[0] == task_id:
                queue.popleft()
            elif queue and task_id in queue:  # pragma: no cover - defensive
                queue.remove(task_id)
            self._push_head(entry.task.client_index)
            self.tasks_completed += 1
            stats = self._batches[entry.batch_id]
            stats.completed += 1
            self._settle_batch(stats)
            self._cond.notify_all()
            return True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> List[BatchStats]:
        """Per-batch submission/completion timing, in submission order."""
        with self._cond:
            return list(self._batches.values())

    def outstanding(self) -> int:
        """Tasks not yet completed or cancelled."""
        with self._cond:
            return sum(
                1
                for entry in self._entries.values()
                if entry.status in (PENDING, LEASED)
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WireHub(entries={len(self._entries)}, "
            f"completed={self.tasks_completed})"
        )


@dataclass
class WireBackend(ExecutionBackend):
    """Execution backend that dispatches tasks over a :class:`WireHub`.

    The trainer loop hands it each round's task batch exactly as it would
    hand the serial backend; the backend publishes the batch, blocks on
    the results the round plan requires, and returns
    :class:`ClientUpdate` objects in task order — so every aggregation
    code path upstream is untouched.

    Round semantics follow the bound trainer's plan:

    * no plan / synchronous / deadline — block until **every** task in
      the batch has a result (the deadline policy zero-weights its
      stragglers at aggregation; execution itself is synchronous);
    * async-buffer (``policy.carries_late``) — block only on the
      delivered-and-started set; stragglers stay outstanding on the
      wire, and a later round whose plan carries their arrival blocks on
      (usually just collects) the already-posted result then.

    ``time_scale`` > 0 paces dispatch: a started client's task stays
    hidden until its fleet-simulated download-done offset (scaled) has
    elapsed, so real dispatch order tracks simulated order.
    """

    hub: WireHub
    codec: str = "identity"
    time_scale: float = 0.0
    name = "wire"

    def __post_init__(self) -> None:
        self._trainer = None
        # Outstanding async straggler tasks: client_index -> task_id.
        self._carried: Dict[int, int] = {}

    def bind_trainer(self, trainer) -> None:
        """Called by ``FederatedTrainer.__init__`` (duck-typed hook)."""
        self._trainer = trainer

    def _plan(self):
        trainer = self._trainer
        return None if trainer is None else trainer.round_plan

    def _carries_late(self) -> bool:
        trainer = self._trainer
        if trainer is None or trainer.fleet_sim is None:
            return False
        return bool(trainer.fleet_sim.policy.carries_late)

    def _dispatch_pacing(self, plan) -> Optional[Dict[int, float]]:
        """Monotonic ``not_before`` per client from the simulated timelines."""
        if self.time_scale <= 0 or plan is None or self._trainer is None:
            return None
        sim = self._trainer.fleet_sim
        if sim is None:
            return None
        timelines = sim.pending_timelines()
        if timelines is None:
            return None
        now = time.monotonic()
        pacing = {}
        for position in range(len(timelines)):
            view = timelines.view(position)
            offset = max(0.0, view.download_done - plan.start)
            pacing[view.client_id] = now + offset * self.time_scale
        return pacing

    def run(
        self, tasks: Sequence[ClientTask], clients, global_state: State
    ) -> List[ClientUpdate]:
        del clients  # remote executors own all client state
        tasks = list(tasks)
        plan = self._plan()
        is_train = all(task.kind == "train" for task in tasks)
        async_round = is_train and plan is not None and self._carries_late()
        round_index = (
            plan.round_index
            if plan is not None
            else (len(self._trainer.history.rounds) + 1 if self._trainer else 0)
        )
        if async_round:
            # These clients are being restarted or re-sampled; their old
            # outstanding tasks are superseded (submit_batch cancels the
            # incomplete ones) so the markers must go first.
            for task in tasks:
                self._carried.pop(task.client_index, None)
        _, task_ids = self.hub.submit_batch(
            tasks,
            global_state,
            codec=self.codec,
            round_index=round_index,
            not_before=self._dispatch_pacing(plan),
        )
        if not async_round:
            results = self.hub.wait_for(task_ids)
            return [results[task_id] for task_id in task_ids]
        # Async-buffer round: block only on deliveries that started now.
        delivered = plan.delivered_ids
        waited: List[int] = []
        for task, task_id in zip(tasks, task_ids):
            if task.client_index in delivered:
                waited.append(task_id)
            else:
                self._carried[task.client_index] = task_id
        results = self.hub.wait_for(waited)
        updates = [results[task_id] for task_id in waited]
        started = {task.client_index for task in tasks}
        for client_id in sorted(delivered - started):
            carried_id = self._carried.pop(client_id, None)
            if carried_id is None:
                continue  # plan carried a client we never dispatched
            arrived = self.hub.wait_for([carried_id])
            updates.append(arrived[carried_id])
        return updates

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"WireBackend(codec={self.codec!r}, time_scale={self.time_scale})"
