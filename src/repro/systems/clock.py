"""The seeded discrete-event clock driving every fleet simulation.

:class:`SimClock` is a priority queue of :class:`~repro.systems.events.Event`
objects plus the current simulated time.  Three properties make it the
deterministic spine of the subsystem:

* **Stable tie-breaking** — events are heap-ordered by ``(time, seq)``
  where ``seq`` increments at schedule time, so two events at the same
  instant always drain in schedule order, independent of dict/hash order
  or platform.
* **Seeded randomness** — the clock owns the simulation's only RNG
  (``numpy`` generator seeded at construction); anything stochastic
  (duration jitter, diurnal phases) draws from it in a fixed call order,
  so one seed reproduces one timeline bit-for-bit.
* **A drained-event trace** — every popped event is appended to
  :attr:`trace`, which the determinism tests compare across runs and
  which makes "what did the fleet do" inspectable after a simulation.
"""

from __future__ import annotations

import heapq
from typing import List, Optional

import numpy as np

from .events import Event


class SimClock:
    """Seeded event queue with stable ordering and a drain trace."""

    def __init__(self, seed: Optional[int] = 0) -> None:
        self.now = 0.0
        self.rng = np.random.default_rng(seed)
        self._heap: List[Event] = []
        self._seq = 0
        self.trace: List[Event] = []

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule_at(
        self, time: float, kind: str, client_id: int = -1, round_index: int = -1
    ) -> Event:
        """Enqueue an event at an absolute simulated time (>= now)."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule into the past: time {time} < now {self.now}"
            )
        event = Event(
            time=time,
            seq=self._seq,
            kind=kind,
            client_id=client_id,
            round_index=round_index,
        )
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def schedule(
        self, delay: float, kind: str, client_id: int = -1, round_index: int = -1
    ) -> Event:
        """Enqueue an event ``delay`` seconds from now."""
        if delay < 0.0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        return self.schedule_at(
            self.now + delay, kind, client_id=client_id, round_index=round_index
        )

    # ------------------------------------------------------------------
    # Draining
    # ------------------------------------------------------------------
    def peek(self) -> Optional[Event]:
        """The next event without popping it (None when the queue is empty)."""
        return self._heap[0] if self._heap else None

    def pop(self) -> Event:
        """Pop the next event and advance ``now`` to its time."""
        if not self._heap:
            raise IndexError("pop from an empty SimClock")
        event = heapq.heappop(self._heap)
        self.now = event.time
        self.trace.append(event)
        return event

    def pop_until(self, time: float) -> List[Event]:
        """Drain every event with ``event.time <= time``; ``now`` ends at ``time``.

        The returned list is in drain order — i.e. ``(time, seq)`` order —
        and is also appended to :attr:`trace`.
        """
        drained: List[Event] = []
        while self._heap and self._heap[0].time <= time:
            drained.append(self.pop())
        self.advance_to(time)
        return drained

    def advance_to(self, time: float) -> None:
        """Move ``now`` forward without draining (no-op if already past)."""
        if time > self.now:
            self.now = time

    def discard(self, client_id: int) -> int:
        """Remove every queued event of one client (a dropped straggler).

        Returns the number of events removed.  The heap is rebuilt, which
        is fine at fleet-simulation scale (a few events per client per
        round).
        """
        kept = [event for event in self._heap if event.client_id != client_id]
        removed = len(self._heap) - len(kept)
        if removed:
            heapq.heapify(kept)
            self._heap = kept
        return removed

    def __len__(self) -> int:
        return len(self._heap)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SimClock(now={self.now:.3f}, pending={len(self._heap)})"
