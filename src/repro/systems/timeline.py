"""Per-client round timelines: download → compute → upload, priced in seconds.

A :class:`ClientTimeline` is the simulator's unit of work: one client's
participation in one round, priced from that client's *actual* bytes (its
Sub-FedAvg mask size, its compressed update — not an even split of the
round total) and its device profile's throughput.  The compute term uses
the paper's conv-FLOP convention scaled by local passes (forward +
backward ≈ 3× the inference FLOPs per example); the callers derive
``flops_per_example`` from the :mod:`repro.federated.accounting` module.

Bit-for-bit parity note: :attr:`ClientTimeline.duration` sums the phases
in the exact order :meth:`WallClockModel.client_round_seconds
<repro.federated.simulation.WallClockModel.client_round_seconds>` uses
(``compute + up + down``), so the synchronous round policy reproduces the
legacy model's totals to the last bit — a property the regression tests
pin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from .fleet import DeviceProfile, Fleet

#: ``client_id -> (uploaded_bytes, downloaded_bytes)`` for one round.
TrafficMap = Dict[int, Tuple[float, float]]


@dataclass(frozen=True)
class ClientTimeline:
    """One client's simulated participation in one round."""

    client_id: int
    round_index: int
    start: float
    download_seconds: float
    compute_seconds: float
    upload_seconds: float

    @property
    def duration(self) -> float:
        """Total local seconds, summed in the legacy model's order."""
        return self.compute_seconds + self.upload_seconds + self.download_seconds

    @property
    def finish(self) -> float:
        """Absolute simulated time the client's upload arrives."""
        return self.start + self.duration

    @property
    def download_done(self) -> float:
        return self.start + self.download_seconds

    @property
    def compute_done(self) -> float:
        return self.start + self.download_seconds + self.compute_seconds


def phase_seconds(
    profile: DeviceProfile,
    upload_bytes: float,
    download_bytes: float,
    flops_per_example: float,
    examples_per_round: float,
    jitter_factor: float = 1.0,
) -> Tuple[float, float, float]:
    """(download, compute, upload) seconds for one client's round.

    A backward pass costs about twice the forward pass, so each training
    example is priced at 3× the inference FLOPs.  ``jitter_factor``
    scales every phase (1.0 = the deterministic baseline; the simulator
    draws per-(round, client) factors from its seeded clock RNG).
    """
    compute = (
        3.0 * flops_per_example * examples_per_round
    ) / profile.flops_per_second
    up = upload_bytes / profile.upload_bytes_per_second
    down = download_bytes / profile.download_bytes_per_second
    if jitter_factor != 1.0:
        compute *= jitter_factor
        up *= jitter_factor
        down *= jitter_factor
    return down, compute, up


def build_timelines(
    fleet: Fleet,
    round_index: int,
    start: float,
    client_ids: Sequence[int],
    traffic: TrafficMap,
    flops_per_example: float,
    examples_per_round: float,
    jitter_factors: Dict[int, float] | None = None,
) -> Tuple[ClientTimeline, ...]:
    """Timelines for every starting client, in the given (sampled) order.

    Clients missing from ``traffic`` are priced at zero bytes — they still
    pay their compute time, which is what a metering gap should look like
    rather than a crash.
    """
    factors = jitter_factors or {}
    timelines = []
    for client_id in client_ids:
        upload_bytes, download_bytes = traffic.get(client_id, (0.0, 0.0))
        down, compute, up = phase_seconds(
            fleet.profile_for(client_id),
            upload_bytes,
            download_bytes,
            flops_per_example,
            examples_per_round,
            jitter_factor=factors.get(client_id, 1.0),
        )
        timelines.append(
            ClientTimeline(
                client_id=client_id,
                round_index=round_index,
                start=start,
                download_seconds=down,
                compute_seconds=compute,
                upload_seconds=up,
            )
        )
    return tuple(timelines)
