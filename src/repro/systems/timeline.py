"""Per-client round timelines: download → compute → upload, priced in seconds.

A :class:`ClientTimeline` is the simulator's unit of work: one client's
participation in one round, priced from that client's *actual* bytes (its
Sub-FedAvg mask size, its compressed update — not an even split of the
round total) and its device profile's throughput.  The compute term uses
the paper's conv-FLOP convention scaled by local passes (forward +
backward ≈ 3× the inference FLOPs per example); the callers derive
``flops_per_example`` from the :mod:`repro.federated.accounting` module.

Bit-for-bit parity note: :attr:`ClientTimeline.duration` sums the phases
in the exact order :meth:`WallClockModel.client_round_seconds
<repro.federated.simulation.WallClockModel.client_round_seconds>` uses
(``compute + up + down``), so the synchronous round policy reproduces the
legacy model's totals to the last bit — a property the regression tests
pin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Sequence, Tuple, Union

import numpy as np

from .fleet import DeviceProfile, Fleet

#: ``client_id -> (uploaded_bytes, downloaded_bytes)`` for one round.
TrafficMap = Dict[int, Tuple[float, float]]

#: What the pricing functions accept as per-round traffic: the classic
#: per-client map, one ``(upload_bytes, download_bytes)`` pair applied to
#: every client (the million-client fast path — no dict in sight), or a
#: pair of per-client arrays aligned with ``client_ids``.
TrafficLike = Union[TrafficMap, Tuple[float, float], Tuple[np.ndarray, np.ndarray]]


@dataclass(frozen=True)
class ClientTimeline:
    """One client's simulated participation in one round."""

    client_id: int
    round_index: int
    start: float
    download_seconds: float
    compute_seconds: float
    upload_seconds: float

    @property
    def duration(self) -> float:
        """Total local seconds, summed in the legacy model's order."""
        return self.compute_seconds + self.upload_seconds + self.download_seconds

    @property
    def finish(self) -> float:
        """Absolute simulated time the client's upload arrives."""
        return self.start + self.duration

    @property
    def download_done(self) -> float:
        return self.start + self.download_seconds

    @property
    def compute_done(self) -> float:
        return self.start + self.download_seconds + self.compute_seconds


def phase_seconds(
    profile: DeviceProfile,
    upload_bytes: float,
    download_bytes: float,
    flops_per_example: float,
    examples_per_round: float,
    jitter_factor: float = 1.0,
    *,
    upload_bytes_per_second: Optional[float] = None,
) -> Tuple[float, float, float]:
    """(download, compute, upload) seconds for one client's round.

    A backward pass costs about twice the forward pass, so each training
    example is priced at 3× the inference FLOPs.  ``jitter_factor``
    scales every phase (1.0 = the deterministic baseline; the simulator
    draws per-(round, client) factors from its seeded clock RNG).
    ``upload_bytes_per_second`` overrides the profile's device uplink —
    hierarchical fleets pass the contended regional share here.
    """
    compute = (
        3.0 * flops_per_example * examples_per_round
    ) / profile.flops_per_second
    upload_rate = (
        profile.upload_bytes_per_second
        if upload_bytes_per_second is None
        else upload_bytes_per_second
    )
    up = upload_bytes / upload_rate
    down = download_bytes / profile.download_bytes_per_second
    if jitter_factor != 1.0:
        compute *= jitter_factor
        up *= jitter_factor
        down *= jitter_factor
    return down, compute, up


def build_timelines(
    fleet: Fleet,
    round_index: int,
    start: float,
    client_ids: Sequence[int],
    traffic: TrafficMap,
    flops_per_example: float,
    examples_per_round: float,
    jitter_factors: Dict[int, float] | None = None,
) -> Tuple[ClientTimeline, ...]:
    """Timelines for every starting client, in the given (sampled) order.

    Clients missing from ``traffic`` are priced at zero bytes — they still
    pay their compute time, which is what a metering gap should look like
    rather than a crash.
    """
    factors = jitter_factors or {}
    client_ids = tuple(client_ids)
    # Effective uplinks come from the fleet so shared-link contention
    # (HierarchicalFleet) prices identically in scalar and vector modes;
    # for plain fleets these are exactly the profiles' device rates.
    upload_rates = fleet.upload_rates(client_ids) if client_ids else ()
    timelines = []
    for position, client_id in enumerate(client_ids):
        upload_bytes, download_bytes = traffic.get(client_id, (0.0, 0.0))
        down, compute, up = phase_seconds(
            fleet.profile_for(client_id),
            upload_bytes,
            download_bytes,
            flops_per_example,
            examples_per_round,
            jitter_factor=factors.get(client_id, 1.0),
            upload_bytes_per_second=float(upload_rates[position]),
        )
        timelines.append(
            ClientTimeline(
                client_id=client_id,
                round_index=round_index,
                start=start,
                download_seconds=down,
                compute_seconds=compute,
                upload_seconds=up,
            )
        )
    return tuple(timelines)


class RoundTimelines:
    """Struct-of-arrays timelines for one round's whole cohort.

    The vectorized twin of a ``tuple`` of :class:`ClientTimeline`: the
    simulator's hot path reads the arrays directly (three vector
    expressions price a million clients), while :meth:`view` materializes
    a single :class:`ClientTimeline` on demand for the per-event machinery
    that survives only on the cross-round async-carry path.
    """

    __slots__ = (
        "round_index",
        "start",
        "client_ids",
        "download_seconds",
        "compute_seconds",
        "upload_seconds",
        "durations",
        "finishes",
    )

    def __init__(
        self,
        round_index: int,
        start: float,
        client_ids: np.ndarray,
        download_seconds: np.ndarray,
        compute_seconds: np.ndarray,
        upload_seconds: np.ndarray,
    ) -> None:
        self.round_index = round_index
        self.start = start
        self.client_ids = client_ids
        self.download_seconds = download_seconds
        self.compute_seconds = compute_seconds
        self.upload_seconds = upload_seconds
        # Same summation order as ClientTimeline.duration / the legacy
        # WallClockModel (compute + up + down) — bit-for-bit parity.
        self.durations = compute_seconds + upload_seconds + download_seconds
        self.finishes = start + self.durations

    def __len__(self) -> int:
        return int(self.client_ids.size)

    def max_duration(self) -> float:
        return float(self.durations.max()) if self.client_ids.size else 0.0

    def view(self, position: int) -> ClientTimeline:
        """The classic per-client view of one cohort entry."""
        return ClientTimeline(
            client_id=int(self.client_ids[position]),
            round_index=self.round_index,
            start=self.start,
            download_seconds=float(self.download_seconds[position]),
            compute_seconds=float(self.compute_seconds[position]),
            upload_seconds=float(self.upload_seconds[position]),
        )

    def __iter__(self) -> Iterator[ClientTimeline]:
        return (self.view(position) for position in range(len(self)))


def _traffic_arrays(
    traffic: TrafficLike, client_ids: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-client (upload_bytes, download_bytes) aligned with ``client_ids``."""
    if isinstance(traffic, dict):
        if not traffic:
            zeros = np.zeros(client_ids.size, dtype=np.float64)
            return zeros, zeros
        pairs = np.array(
            [traffic.get(cid, (0.0, 0.0)) for cid in client_ids.tolist()],
            dtype=np.float64,
        ).reshape(client_ids.size, 2)
        return pairs[:, 0], pairs[:, 1]
    upload, download = traffic
    up = np.asarray(upload, dtype=np.float64)
    down = np.asarray(download, dtype=np.float64)
    if up.ndim == 0:
        up = np.full(client_ids.size, float(up), dtype=np.float64)
    if down.ndim == 0:
        down = np.full(client_ids.size, float(down), dtype=np.float64)
    return up, down


def build_round_timelines(
    fleet: Fleet,
    round_index: int,
    start: float,
    client_ids: Sequence[int],
    traffic: TrafficLike,
    flops_per_example: float,
    examples_per_round: float,
    jitter_factors: Optional[Union[np.ndarray, Dict[int, float]]] = None,
) -> RoundTimelines:
    """Vectorized :func:`build_timelines`: one cohort, three array expressions.

    Produces bit-identical phase durations to the scalar path — same
    division operands in the same order, elementwise — for any fleet,
    including hierarchical uplink contention.  ``jitter_factors`` may be an
    array aligned with ``client_ids`` (the simulator's draw order) or the
    scalar path's ``{client_id: factor}`` dict.
    """
    ids = np.asarray(client_ids, dtype=np.int64)
    upload_bytes, download_bytes = _traffic_arrays(traffic, ids)
    flops_rates, _, download_rates = fleet.profile_arrays(ids)
    upload_rates = fleet.upload_rates(ids)
    compute = (3.0 * flops_per_example * examples_per_round) / flops_rates
    up = upload_bytes / upload_rates
    down = download_bytes / download_rates
    if jitter_factors is not None:
        if isinstance(jitter_factors, dict):
            factors = np.array(
                [jitter_factors.get(cid, 1.0) for cid in ids.tolist()],
                dtype=np.float64,
            )
        else:
            factors = np.asarray(jitter_factors, dtype=np.float64)
        # x * 1.0 is exact for finite floats, so unconditional multiply
        # matches the scalar path's `if factor != 1.0` guard bit-for-bit.
        compute = compute * factors
        up = up * factors
        down = down * factors
    return RoundTimelines(
        round_index=round_index,
        start=start,
        client_ids=ids,
        download_seconds=down,
        compute_seconds=compute,
        upload_seconds=up,
    )
