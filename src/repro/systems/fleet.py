"""Device profiles and the fleet registry: *which hardware is each client?*

Historically the client→device assignment lived in two places with the
same hard-coded rule (``client_id % len(profiles)``):
:meth:`~repro.federated.simulation.WallClockModel.profile_for` and the
profile map inside
:class:`~repro.federated.sampler.AvailabilitySampler`.  A :class:`Fleet`
is now the single owner of that assignment, and fleet *shapes* are a
registry (:func:`register_fleet`) selected through the ``scenario``
section of a run config:

* ``tiers`` — heterogeneous device classes assigned round-robin (the
  historical rule, byte-compatible with the old modulo map),
* ``uniform`` — every client is the same device class,
* ``profile-list`` — an explicit per-client list of device-class names.

:class:`DeviceProfile` (and the built-in ``edge-phone`` /
``raspberry-pi`` / ``workstation`` profiles) are defined here — the
simulation subsystem must stay importable without the federated package —
and re-exported from :mod:`repro.federated.simulation` for backward
compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Sequence, Tuple


@dataclass(frozen=True)
class DeviceProfile:
    """Compute and network capabilities of one client device.

    Defaults approximate a mid-range phone with the paper's constrained
    uplink: 1 GFLOP/s effective conv throughput, 1 MB/s up, 8 MB/s down.
    """

    name: str = "edge-phone"
    flops_per_second: float = 1e9
    upload_bytes_per_second: float = 1e6
    download_bytes_per_second: float = 8e6

    def __post_init__(self) -> None:
        for field_name in (
            "flops_per_second",
            "upload_bytes_per_second",
            "download_bytes_per_second",
        ):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be positive")


EDGE_PHONE = DeviceProfile()
RASPBERRY_PI = DeviceProfile(
    name="raspberry-pi",
    flops_per_second=3e8,
    upload_bytes_per_second=2e6,
    download_bytes_per_second=2e6,
)
WORKSTATION = DeviceProfile(
    name="workstation",
    flops_per_second=5e10,
    upload_bytes_per_second=1.25e7,
    download_bytes_per_second=1.25e7,
)

#: Built-in profiles by name — how serialized configs reference a device
#: class (``ScenarioConfig(profiles=("edge-phone", "raspberry-pi"))``).
DEVICE_PROFILES: Dict[str, DeviceProfile] = {
    profile.name: profile for profile in (EDGE_PHONE, RASPBERRY_PI, WORKSTATION)
}


def resolve_profiles(names: Sequence[str]) -> Tuple[DeviceProfile, ...]:
    """Turn device-class names into profiles; unknown names raise ``KeyError``."""
    unknown = [name for name in names if name not in DEVICE_PROFILES]
    if unknown:
        raise KeyError(
            f"unknown device profile(s) {unknown}; "
            f"choose from {sorted(DEVICE_PROFILES)}"
        )
    return tuple(DEVICE_PROFILES[name] for name in names)


class Fleet:
    """A deterministic client → :class:`DeviceProfile` assignment.

    ``cycle`` holds the device classes assigned round-robin for client ids
    beyond any explicit assignment, so a :class:`Fleet` built from a
    profile cycle reproduces the historical ``client_id % len(profiles)``
    rule for *every* client id, not just the first ``num_clients``.
    ``assignments`` (optional) pins the first ``len(assignments)`` clients
    explicitly (the ``profile-list`` shape).
    """

    def __init__(
        self,
        cycle: Sequence[DeviceProfile] = (EDGE_PHONE,),
        assignments: Sequence[DeviceProfile] = (),
    ) -> None:
        if not cycle and not assignments:
            raise ValueError("a Fleet needs at least one device profile")
        self.cycle: Tuple[DeviceProfile, ...] = tuple(cycle) or (assignments[-1],)
        self.assignments: Tuple[DeviceProfile, ...] = tuple(assignments)

    def profile_for(self, client_id: int) -> DeviceProfile:
        """The device profile of one client (round-robin past assignments)."""
        if client_id < 0:
            raise ValueError(f"client_id must be >= 0, got {client_id}")
        if client_id < len(self.assignments):
            return self.assignments[client_id]
        return self.cycle[client_id % len(self.cycle)]

    def profiles_for(self, client_ids: Sequence[int]) -> Tuple[DeviceProfile, ...]:
        return tuple(self.profile_for(client_id) for client_id in client_ids)

    def device_classes(self) -> Tuple[str, ...]:
        """Distinct device-class names in this fleet, in first-seen order."""
        seen: Dict[str, None] = {}
        for profile in (*self.assignments, *self.cycle):
            seen.setdefault(profile.name, None)
        return tuple(seen)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Fleet(classes={self.device_classes()})"


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FleetSpec:
    """One registry entry: the factory plus its description.

    ``factory(num_clients, scenario)`` must return a :class:`Fleet`;
    ``scenario`` is a :class:`~repro.federated.scenario.ScenarioConfig`
    (duck-typed here — the factory reads ``profiles`` and
    ``client_profiles``).
    """

    name: str
    factory: Callable[..., Fleet]
    summary: str = ""


_REGISTRY: Dict[str, FleetSpec] = {}


def register_fleet(name: str, *, summary: str = "") -> Callable:
    """Decorator adding a fleet factory to the registry under ``name``."""

    def decorator(factory: Callable) -> Callable:
        if name in _REGISTRY:
            raise ValueError(f"fleet {name!r} is already registered")
        doc = summary or (factory.__doc__ or "").strip().splitlines()[0].strip()
        _REGISTRY[name] = FleetSpec(name=name, factory=factory, summary=doc)
        return factory

    return decorator


def get_fleet(name: str) -> FleetSpec:
    """Look up one registered fleet shape; unknown names raise ``KeyError``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown fleet {name!r}; choose from {available_fleets()}"
        ) from None


def available_fleets() -> Tuple[str, ...]:
    """Registered fleet names, in registration order."""
    return tuple(_REGISTRY)


def fleet_specs() -> Tuple[FleetSpec, ...]:
    """All fleet registry entries, in registration order."""
    return tuple(_REGISTRY.values())


def unregister_fleet(name: str) -> FleetSpec:
    """Remove one entry (plugin teardown / test isolation); returns it."""
    try:
        return _REGISTRY.pop(name)
    except KeyError:
        raise KeyError(f"fleet {name!r} is not registered") from None


def build_fleet(scenario, num_clients: int) -> Fleet:
    """Instantiate the scenario's configured fleet shape via the registry."""
    return get_fleet(scenario.fleet).factory(num_clients, scenario)


@register_fleet(
    "tiers",
    summary="heterogeneous device classes assigned round-robin "
    "(client_id mod classes, the historical rule)",
)
def _tiers_fleet(num_clients: int, scenario) -> Fleet:
    profiles = resolve_profiles(scenario.profiles) or (EDGE_PHONE,)
    return Fleet(cycle=profiles)


@register_fleet("uniform", summary="every client is the same device class")
def _uniform_fleet(num_clients: int, scenario) -> Fleet:
    profiles = resolve_profiles(scenario.profiles) or (EDGE_PHONE,)
    return Fleet(cycle=profiles[:1])


@register_fleet(
    "profile-list", summary="explicit per-client device-class names"
)
def _profile_list_fleet(num_clients: int, scenario) -> Fleet:
    names = scenario.client_profiles
    if not names:
        raise ValueError(
            "the 'profile-list' fleet requires scenario.client_profiles "
            "(one device-class name per client)"
        )
    if len(names) < num_clients:
        raise ValueError(
            f"scenario.client_profiles lists {len(names)} device classes "
            f"for {num_clients} clients"
        )
    assignments = resolve_profiles(names)
    return Fleet(cycle=assignments[-1:], assignments=assignments)
