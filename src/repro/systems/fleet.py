"""Device profiles and the fleet registry: *which hardware is each client?*

Historically the client→device assignment lived in two places with the
same hard-coded rule (``client_id % len(profiles)``):
:meth:`~repro.federated.simulation.WallClockModel.profile_for` and the
profile map inside
:class:`~repro.federated.sampler.AvailabilitySampler`.  A :class:`Fleet`
is now the single owner of that assignment, and fleet *shapes* are a
registry (:func:`register_fleet`) selected through the ``scenario``
section of a run config:

* ``tiers`` — heterogeneous device classes assigned round-robin (the
  historical rule, byte-compatible with the old modulo map),
* ``uniform`` — every client is the same device class,
* ``profile-list`` — an explicit per-client list of device-class names.

:class:`DeviceProfile` (and the built-in ``edge-phone`` /
``raspberry-pi`` / ``workstation`` profiles) are defined here — the
simulation subsystem must stay importable without the federated package —
and re-exported from :mod:`repro.federated.simulation` for backward
compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class DeviceProfile:
    """Compute and network capabilities of one client device.

    Defaults approximate a mid-range phone with the paper's constrained
    uplink: 1 GFLOP/s effective conv throughput, 1 MB/s up, 8 MB/s down.
    """

    name: str = "edge-phone"
    flops_per_second: float = 1e9
    upload_bytes_per_second: float = 1e6
    download_bytes_per_second: float = 8e6

    def __post_init__(self) -> None:
        for field_name in (
            "flops_per_second",
            "upload_bytes_per_second",
            "download_bytes_per_second",
        ):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be positive")


EDGE_PHONE = DeviceProfile()
RASPBERRY_PI = DeviceProfile(
    name="raspberry-pi",
    flops_per_second=3e8,
    upload_bytes_per_second=2e6,
    download_bytes_per_second=2e6,
)
WORKSTATION = DeviceProfile(
    name="workstation",
    flops_per_second=5e10,
    upload_bytes_per_second=1.25e7,
    download_bytes_per_second=1.25e7,
)

#: Built-in profiles by name — how serialized configs reference a device
#: class (``ScenarioConfig(profiles=("edge-phone", "raspberry-pi"))``).
DEVICE_PROFILES: Dict[str, DeviceProfile] = {
    profile.name: profile for profile in (EDGE_PHONE, RASPBERRY_PI, WORKSTATION)
}


def resolve_profiles(names: Sequence[str]) -> Tuple[DeviceProfile, ...]:
    """Turn device-class names into profiles; unknown names raise ``KeyError``."""
    unknown = [name for name in names if name not in DEVICE_PROFILES]
    if unknown:
        raise KeyError(
            f"unknown device profile(s) {unknown}; "
            f"choose from {sorted(DEVICE_PROFILES)}"
        )
    return tuple(DEVICE_PROFILES[name] for name in names)


class Fleet:
    """A deterministic client → :class:`DeviceProfile` assignment.

    ``cycle`` holds the device classes assigned round-robin for client ids
    beyond any explicit assignment, so a :class:`Fleet` built from a
    profile cycle reproduces the historical ``client_id % len(profiles)``
    rule for *every* client id, not just the first ``num_clients``.
    ``assignments`` (optional) pins the first ``len(assignments)`` clients
    explicitly (the ``profile-list`` shape).
    """

    def __init__(
        self,
        cycle: Sequence[DeviceProfile] = (EDGE_PHONE,),
        assignments: Sequence[DeviceProfile] = (),
    ) -> None:
        if not cycle and not assignments:
            raise ValueError("a Fleet needs at least one device profile")
        self.cycle: Tuple[DeviceProfile, ...] = tuple(cycle) or (assignments[-1],)
        self.assignments: Tuple[DeviceProfile, ...] = tuple(assignments)
        self._rate_table: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None

    def profile_for(self, client_id: int) -> DeviceProfile:
        """The device profile of one client (round-robin past assignments)."""
        if client_id < 0:
            raise ValueError(f"client_id must be >= 0, got {client_id}")
        if client_id < len(self.assignments):
            return self.assignments[client_id]
        return self.cycle[client_id % len(self.cycle)]

    def profiles_for(self, client_ids: Sequence[int]) -> Tuple[DeviceProfile, ...]:
        return tuple(self.profile_for(client_id) for client_id in client_ids)

    # ------------------------------------------------------------------
    # Vectorized access (the million-client hot path)
    # ------------------------------------------------------------------
    def profile_table(self) -> Tuple[DeviceProfile, ...]:
        """All distinct profile *slots* — assignments first, then the cycle.

        :meth:`profile_indices` indexes into this tuple, so any per-profile
        quantity (rates, participation probabilities, …) can be gathered for
        a whole cohort with one fancy-index instead of an O(n) Python loop.
        """
        return (*self.assignments, *self.cycle)

    def profile_indices(self, client_ids) -> np.ndarray:
        """Index of each client's profile in :meth:`profile_table`."""
        ids = np.asarray(client_ids, dtype=np.int64)
        if ids.size and int(ids.min()) < 0:
            raise ValueError("client ids must be >= 0")
        pinned = len(self.assignments)
        indices = pinned + (ids % len(self.cycle))
        if pinned:
            indices = np.where(ids < pinned, ids, indices)
        return indices

    def _rates(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        if self._rate_table is None:
            table = self.profile_table()
            self._rate_table = (
                np.array([p.flops_per_second for p in table], dtype=np.float64),
                np.array([p.upload_bytes_per_second for p in table], dtype=np.float64),
                np.array([p.download_bytes_per_second for p in table], dtype=np.float64),
            )
        return self._rate_table

    def profile_arrays(
        self, client_ids
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-client ``(flops/s, upload B/s, download B/s)`` float64 arrays.

        The values are the *same float objects* the scalar
        :meth:`profile_for` path reads, so pricing a round from these
        arrays is bit-identical to the per-client loop.
        """
        indices = self.profile_indices(client_ids)
        flops, up, down = self._rates()
        return flops[indices], up[indices], down[indices]

    def upload_rates(self, client_ids) -> np.ndarray:
        """Effective per-client upload rate for one round's cohort.

        The base fleet has no shared links, so this is just the device
        uplink; :class:`HierarchicalFleet` overrides it to price regional
        uplink contention across the cohort.
        """
        return self._rates()[1][self.profile_indices(client_ids)]

    def device_classes(self) -> Tuple[str, ...]:
        """Distinct device-class names in this fleet, in first-seen order."""
        seen: Dict[str, None] = {}
        for profile in (*self.assignments, *self.cycle):
            seen.setdefault(profile.name, None)
        return tuple(seen)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Fleet(classes={self.device_classes()})"


class HierarchicalFleet(Fleet):
    """Two-tier fleet: clients upload through shared region cells.

    Clients are spread over ``regions`` edge aggregators (cell towers /
    regional gateways) by ``client_id % regions``.  Each region shares one
    backhaul uplink of ``region_uplink_bytes_per_second``: when a round's
    cohort puts ``k`` clients in the same cell, each gets an equal
    ``uplink / k`` share, and a client's effective upload rate is the
    minimum of its device uplink and that share — so bandwidth contention
    falls out of the pricing with no extra event machinery.  Compute and
    download are unaffected (the download path is server → broadcast).
    """

    def __init__(
        self,
        cycle: Sequence[DeviceProfile] = (EDGE_PHONE,),
        assignments: Sequence[DeviceProfile] = (),
        *,
        regions: int = 1,
        region_uplink_bytes_per_second: float = float("inf"),
    ) -> None:
        super().__init__(cycle, assignments)
        if regions < 1:
            raise ValueError(f"regions must be >= 1, got {regions}")
        if region_uplink_bytes_per_second <= 0:
            raise ValueError("region_uplink_bytes_per_second must be positive")
        self.regions = int(regions)
        self.region_uplink_bytes_per_second = float(region_uplink_bytes_per_second)

    def cells_for(self, client_ids) -> np.ndarray:
        """Region-cell index of each client (``client_id % regions``)."""
        return np.asarray(client_ids, dtype=np.int64) % self.regions

    def upload_rates(self, client_ids) -> np.ndarray:
        device_up = super().upload_rates(client_ids)
        cells = self.cells_for(client_ids)
        occupancy = np.bincount(cells, minlength=self.regions)
        fair_share = self.region_uplink_bytes_per_second / occupancy[cells]
        return np.minimum(device_up, fair_share)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HierarchicalFleet(classes={self.device_classes()}, "
            f"regions={self.regions})"
        )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FleetSpec:
    """One registry entry: the factory plus its description.

    ``factory(num_clients, scenario)`` must return a :class:`Fleet`;
    ``scenario`` is a :class:`~repro.federated.scenario.ScenarioConfig`
    (duck-typed here — the factory reads ``profiles`` and
    ``client_profiles``).
    """

    name: str
    factory: Callable[..., Fleet]
    summary: str = ""
    tiers: str = "clients → server"


_REGISTRY: Dict[str, FleetSpec] = {}


def register_fleet(
    name: str, *, summary: str = "", tiers: str = "clients → server"
) -> Callable:
    """Decorator adding a fleet factory to the registry under ``name``."""

    def decorator(factory: Callable) -> Callable:
        if name in _REGISTRY:
            raise ValueError(f"fleet {name!r} is already registered")
        doc = summary or (factory.__doc__ or "").strip().splitlines()[0].strip()
        _REGISTRY[name] = FleetSpec(
            name=name, factory=factory, summary=doc, tiers=tiers
        )
        return factory

    return decorator


def get_fleet(name: str) -> FleetSpec:
    """Look up one registered fleet shape; unknown names raise ``KeyError``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown fleet {name!r}; choose from {available_fleets()}"
        ) from None


def available_fleets() -> Tuple[str, ...]:
    """Registered fleet names, in registration order."""
    return tuple(_REGISTRY)


def fleet_specs() -> Tuple[FleetSpec, ...]:
    """All fleet registry entries, in registration order."""
    return tuple(_REGISTRY.values())


def unregister_fleet(name: str) -> FleetSpec:
    """Remove one entry (plugin teardown / test isolation); returns it."""
    try:
        return _REGISTRY.pop(name)
    except KeyError:
        raise KeyError(f"fleet {name!r} is not registered") from None


def build_fleet(scenario, num_clients: int) -> Fleet:
    """Instantiate the scenario's configured fleet shape via the registry."""
    return get_fleet(scenario.fleet).factory(num_clients, scenario)


@register_fleet(
    "tiers",
    summary="heterogeneous device classes assigned round-robin "
    "(client_id mod classes, the historical rule)",
)
def _tiers_fleet(num_clients: int, scenario) -> Fleet:
    profiles = resolve_profiles(scenario.profiles) or (EDGE_PHONE,)
    return Fleet(cycle=profiles)


@register_fleet("uniform", summary="every client is the same device class")
def _uniform_fleet(num_clients: int, scenario) -> Fleet:
    profiles = resolve_profiles(scenario.profiles) or (EDGE_PHONE,)
    return Fleet(cycle=profiles[:1])


@register_fleet(
    "profile-list", summary="explicit per-client device-class names"
)
def _profile_list_fleet(num_clients: int, scenario) -> Fleet:
    names = scenario.client_profiles
    if not names:
        raise ValueError(
            "the 'profile-list' fleet requires scenario.client_profiles "
            "(one device-class name per client)"
        )
    if len(names) < num_clients:
        raise ValueError(
            f"scenario.client_profiles lists {len(names)} device classes "
            f"for {num_clients} clients"
        )
    assignments = resolve_profiles(names)
    return Fleet(cycle=assignments[-1:], assignments=assignments)


@register_fleet(
    "hierarchical",
    summary="two-tier fleet: device classes round-robin, uploads share "
    "per-region backhaul uplinks (client_id mod regions)",
    tiers="clients → region cells → server",
)
def _hierarchical_fleet(num_clients: int, scenario) -> HierarchicalFleet:
    profiles = resolve_profiles(scenario.profiles) or (EDGE_PHONE,)
    regions = getattr(scenario, "regions", 0)
    uplink = getattr(scenario, "region_uplink_bytes_per_second", 0.0)
    if regions < 1:
        raise ValueError(
            "the 'hierarchical' fleet requires scenario.regions >= 1 "
            "(number of edge-aggregator cells)"
        )
    if uplink <= 0:
        raise ValueError(
            "the 'hierarchical' fleet requires "
            "scenario.region_uplink_bytes_per_second > 0 "
            "(shared backhaul capacity per cell)"
        )
    return HierarchicalFleet(
        cycle=profiles, regions=regions, region_uplink_bytes_per_second=uplink
    )
