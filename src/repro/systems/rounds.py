"""Round-completion policies and the :class:`FleetSimulator` engine.

The server's *round-completion policy* decides when a communication round
closes and which client uploads it aggregates:

* ``synchronous`` — wait for every participant (the paper's protocol and
  the legacy :class:`~repro.federated.simulation.WallClockModel`
  semantics; reproduces its totals bit-for-bit),
* ``deadline`` — close the round after a fixed budget of seconds; late
  clients become zero-weight stragglers (their wasted upload is still
  metered, their update is dropped),
* ``async-buffer`` — FedBuff-style: close as soon as the first ``K``
  uploads arrive, from *any* in-flight client — stragglers keep running
  across round boundaries and deliver later with staleness-discounted
  weights.

Policies are a registry (:func:`register_round_policy`) selected through
the ``systems`` section of a
:class:`~repro.federated.builder.FederationConfig`.

:class:`FleetSimulator` drives one simulation: it owns the
:class:`~repro.systems.clock.SimClock`, the in-flight client set, and the
two-phase round protocol —

1. :meth:`~FleetSimulator.plan_round` (round start): build estimated
   timelines for the sampled clients, ask the policy who will deliver,
   and hand the trainer a :class:`RoundPlan` (busy clients to skip,
   deliveries with staleness weights, predicted stragglers);
2. :meth:`~FleetSimulator.complete_round` (round end): re-price the
   timelines from the *actual* per-client bytes the round recorded,
   schedule the download/compute/upload events, drain the clock to the
   close, and advance simulated time.

:meth:`~FleetSimulator.observe` collapses the two phases for post-hoc use
(the estimate *is* the record), and :meth:`~FleetSimulator.simulate`
replays a whole finished :class:`~repro.federated.metrics.History` on a
fresh engine.
"""

from __future__ import annotations

from collections.abc import Sequence as SequenceABC
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .clock import SimClock
from .events import COMPUTE_DONE, DOWNLOAD_DONE, UPLOAD_DONE, Event
from .fleet import Fleet
from .timeline import (
    ClientTimeline,
    RoundTimelines,
    TrafficLike,
    TrafficMap,
    build_round_timelines,
    build_timelines,
)


# ----------------------------------------------------------------------
# Policy decisions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Delivery:
    """One upload the server aggregates this round.

    ``staleness`` counts the rounds since the client started the work
    (0 = started this round); ``weight`` is the policy's aggregation
    discount for that staleness (1.0 under synchronous semantics).
    """

    client_id: int
    round_started: int
    staleness: int
    weight: float


class LazyDeliveries(SequenceABC):
    """A delivery list stored as four aligned arrays.

    Constructing a million :class:`Delivery` objects would eat the whole
    vectorized-pricing win, so the vector path keeps the arrays and
    materializes a :class:`Delivery` only when someone indexes in.  It
    compares equal to the scalar path's ``tuple`` of deliveries (same
    ids/staleness/weights in the same order), which is what the parity
    tests assert.
    """

    __slots__ = (
        "client_ids",
        "rounds_started",
        "staleness",
        "weights",
        "_id_set",
        "_weight_map",
    )

    def __init__(self, client_ids, rounds_started, staleness, weights) -> None:
        self.client_ids = np.asarray(client_ids, dtype=np.int64)
        self.rounds_started = np.asarray(rounds_started, dtype=np.int64)
        self.staleness = np.asarray(staleness, dtype=np.int64)
        self.weights = np.asarray(weights, dtype=np.float64)
        self._id_set: Optional[frozenset] = None
        self._weight_map: Optional[Dict[int, float]] = None

    @classmethod
    def uniform(cls, client_ids: np.ndarray, round_index: int) -> "LazyDeliveries":
        """Fresh on-time deliveries: staleness 0, weight 1.0 for everyone."""
        count = int(client_ids.size)
        return cls(
            client_ids,
            np.full(count, round_index, dtype=np.int64),
            np.zeros(count, dtype=np.int64),
            np.ones(count, dtype=np.float64),
        )

    def __len__(self) -> int:
        return int(self.client_ids.size)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return tuple(
                self[position] for position in range(*index.indices(len(self)))
            )
        return Delivery(
            client_id=int(self.client_ids[index]),
            round_started=int(self.rounds_started[index]),
            staleness=int(self.staleness[index]),
            weight=float(self.weights[index]),
        )

    @property
    def id_set(self) -> frozenset:
        if self._id_set is None:
            self._id_set = frozenset(self.client_ids.tolist())
        return self._id_set

    def weight_for(self, client_id: int) -> float:
        if self._weight_map is None:
            self._weight_map = dict(
                zip(self.client_ids.tolist(), self.weights.tolist())
            )
        return self._weight_map.get(int(client_id), 0.0)

    def __eq__(self, other) -> bool:
        if isinstance(other, LazyDeliveries):
            return (
                np.array_equal(self.client_ids, other.client_ids)
                and np.array_equal(self.rounds_started, other.rounds_started)
                and np.array_equal(self.staleness, other.staleness)
                and np.array_equal(self.weights, other.weights)
            )
        if isinstance(other, (tuple, list)):
            return len(other) == len(self) and all(
                mine == theirs for mine, theirs in zip(self, other)
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash(tuple(self))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LazyDeliveries(n={len(self)})"


@dataclass(frozen=True)
class PolicyDecision:
    """A policy's verdict on one round's timelines."""

    delivered: Tuple[ClientTimeline, ...]
    late: Tuple[ClientTimeline, ...]
    close_seconds: float  # seconds from round start to close (excl. overhead)


@dataclass(frozen=True)
class VectorDecision:
    """The vector path's verdict: deliveries already weighted, arrays kept."""

    deliveries: LazyDeliveries
    stragglers: Tuple[int, ...]  # fresh clients whose upload misses the close
    close_seconds: float


class RoundPolicy:
    """Strategy interface: when does a round close, who gets aggregated."""

    name = "abstract"
    #: Do late clients keep running into later rounds (async) or is their
    #: work dropped when the round closes (deadline)?
    carries_late = False

    def decide(
        self,
        round_index: int,
        start: float,
        fresh: Sequence[ClientTimeline],
        carried: Sequence[ClientTimeline],
    ) -> PolicyDecision:
        raise NotImplementedError

    def close_seconds_for(
        self,
        plan: "RoundPlan",
        fresh: Sequence[ClientTimeline],
        carried: Sequence[ClientTimeline],
    ) -> float:
        """Close time for *re-priced* timelines, keeping the plan's verdict.

        The trainer has already acted on the plan (who trains, whose
        update is aggregated), so the completion pass never changes the
        delivered set — it only re-prices when the close happens from the
        actual bytes.
        """
        raise NotImplementedError

    def decide_vector(
        self,
        round_index: int,
        start: float,
        fresh: RoundTimelines,
        carried: Sequence[ClientTimeline],
    ) -> VectorDecision:
        """Array-shaped :meth:`decide`.  Policies that implement it must
        produce the same deliveries/stragglers/close as the scalar path to
        the last bit; policies that don't are silently priced on the
        scalar path (the simulator checks for an override)."""
        raise NotImplementedError(
            f"{type(self).__name__} has no vectorized decision path"
        )

    def close_vector(
        self,
        plan: "RoundPlan",
        fresh: RoundTimelines,
        carried: Sequence[ClientTimeline],
    ) -> float:
        """Array-shaped :meth:`close_seconds_for`."""
        raise NotImplementedError(
            f"{type(self).__name__} has no vectorized completion path"
        )

    def weight(self, staleness: int) -> float:
        return 1.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class SynchronousPolicy(RoundPolicy):
    """Wait for every participant — the paper's (and the legacy) semantics."""

    name = "synchronous"

    def decide(self, round_index, start, fresh, carried) -> PolicyDecision:
        return PolicyDecision(
            delivered=tuple(fresh),
            late=(),
            close_seconds=max((t.duration for t in fresh), default=0.0),
        )

    def close_seconds_for(self, plan, fresh, carried) -> float:
        return max((t.duration for t in fresh), default=0.0)

    def decide_vector(self, round_index, start, fresh, carried) -> VectorDecision:
        return VectorDecision(
            deliveries=LazyDeliveries.uniform(fresh.client_ids, round_index),
            stragglers=(),
            close_seconds=fresh.max_duration(),
        )

    def close_vector(self, plan, fresh, carried) -> float:
        return fresh.max_duration()


class DeadlinePolicy(RoundPolicy):
    """Close the round after ``deadline_seconds``; late uploads are dropped."""

    name = "deadline"

    def __init__(self, deadline_seconds: float) -> None:
        if deadline_seconds <= 0:
            raise ValueError(
                "the deadline policy requires systems.deadline_seconds > 0, "
                f"got {deadline_seconds}"
            )
        self.deadline_seconds = deadline_seconds

    def decide(self, round_index, start, fresh, carried) -> PolicyDecision:
        delivered = tuple(t for t in fresh if t.duration <= self.deadline_seconds)
        late = tuple(t for t in fresh if t.duration > self.deadline_seconds)
        close = (
            self.deadline_seconds
            if late
            else max((t.duration for t in fresh), default=0.0)
        )
        return PolicyDecision(delivered=delivered, late=late, close_seconds=close)

    def close_seconds_for(self, plan, fresh, carried) -> float:
        if plan.stragglers:
            return self.deadline_seconds
        return min(
            self.deadline_seconds,
            max((t.duration for t in fresh), default=0.0),
        )

    def decide_vector(self, round_index, start, fresh, carried) -> VectorDecision:
        on_time = fresh.durations <= self.deadline_seconds
        late_ids = fresh.client_ids[~on_time]
        close = (
            self.deadline_seconds if late_ids.size else fresh.max_duration()
        )
        return VectorDecision(
            deliveries=LazyDeliveries.uniform(
                fresh.client_ids[on_time], round_index
            ),
            stragglers=tuple(late_ids.tolist()),
            close_seconds=close,
        )

    def close_vector(self, plan, fresh, carried) -> float:
        if plan.stragglers:
            return self.deadline_seconds
        return min(self.deadline_seconds, fresh.max_duration())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DeadlinePolicy(deadline_seconds={self.deadline_seconds})"


class AsyncBufferPolicy(RoundPolicy):
    """FedBuff-style: aggregate the first ``K`` arrivals, discount staleness.

    Arrivals are ordered by ``(finish time, client id)`` over both the
    clients starting this round and the in-flight stragglers carried from
    earlier rounds.  A carried arrival's weight is
    ``(1 + staleness) ** -staleness_exponent`` with staleness counted in
    rounds — the FedBuff ``1/sqrt(1+τ)`` discount at the default 0.5.
    ``buffer_size=0`` auto-sizes ``K`` to half the pending arrivals
    (minimum 1).
    """

    name = "async-buffer"
    carries_late = True

    def __init__(self, buffer_size: int = 0, staleness_exponent: float = 0.5) -> None:
        if buffer_size < 0:
            raise ValueError(f"buffer_size must be >= 0, got {buffer_size}")
        if staleness_exponent < 0:
            raise ValueError(
                f"staleness_exponent must be >= 0, got {staleness_exponent}"
            )
        self.buffer_size = buffer_size
        self.staleness_exponent = staleness_exponent

    def _buffer(self, pending: int) -> int:
        if self.buffer_size > 0:
            return min(self.buffer_size, pending)
        return max(1, pending // 2)

    def decide(self, round_index, start, fresh, carried) -> PolicyDecision:
        arrivals = sorted(
            (*fresh, *carried), key=lambda t: (t.finish, t.client_id)
        )
        if not arrivals:
            return PolicyDecision(delivered=(), late=(), close_seconds=0.0)
        k = self._buffer(len(arrivals))
        delivered = tuple(arrivals[:k])
        late = tuple(arrivals[k:])
        close = max(0.0, delivered[-1].finish - start)
        return PolicyDecision(delivered=delivered, late=late, close_seconds=close)

    def close_seconds_for(self, plan, fresh, carried) -> float:
        by_id = {t.client_id: t for t in (*carried, *fresh)}
        finishes = [
            by_id[d.client_id].finish
            for d in plan.deliveries
            if d.client_id in by_id
        ]
        if not finishes:
            return 0.0
        return max(0.0, max(finishes) - plan.start)

    def weight(self, staleness: int) -> float:
        return float((1 + staleness) ** -self.staleness_exponent)

    def _weights(self, staleness: np.ndarray) -> np.ndarray:
        # Per-unique scalar pow: a cohort has at most a handful of distinct
        # staleness values, and routing each through `weight()` keeps the
        # vector path bit-identical to CPython's float pow.
        unique, inverse = np.unique(staleness, return_inverse=True)
        table = np.array(
            [self.weight(int(value)) for value in unique.tolist()],
            dtype=np.float64,
        )
        return table[inverse]

    def decide_vector(self, round_index, start, fresh, carried) -> VectorDecision:
        carried = tuple(carried)
        ids = fresh.client_ids
        finishes = fresh.finishes
        rounds_started = np.full(len(fresh), round_index, dtype=np.int64)
        if carried:
            ids = np.concatenate(
                [ids, np.array([t.client_id for t in carried], dtype=np.int64)]
            )
            finishes = np.concatenate(
                [finishes, np.array([t.finish for t in carried], dtype=np.float64)]
            )
            rounds_started = np.concatenate(
                [
                    rounds_started,
                    np.array([t.round_index for t in carried], dtype=np.int64),
                ]
            )
        if ids.size == 0:
            empty = np.array([], dtype=np.int64)
            return VectorDecision(
                deliveries=LazyDeliveries.uniform(empty, round_index),
                stragglers=(),
                close_seconds=0.0,
            )
        # Matches sorted(key=(finish, client_id)): lexsort's last key is
        # primary, and client ids are unique so the order is total.
        order = np.lexsort((ids, finishes))
        k = self._buffer(int(ids.size))
        take = order[:k]
        staleness = round_index - rounds_started[take]
        late = order[k:]
        fresh_late = late[rounds_started[late] == round_index]
        return VectorDecision(
            deliveries=LazyDeliveries(
                ids[take], rounds_started[take], staleness, self._weights(staleness)
            ),
            stragglers=tuple(ids[fresh_late].tolist()),
            close_seconds=max(0.0, float(finishes[take[-1]]) - start),
        )

    def close_vector(self, plan, fresh, carried) -> float:
        finish_by_id = {t.client_id: t.finish for t in carried}
        finish_by_id.update(
            zip(fresh.client_ids.tolist(), fresh.finishes.tolist())
        )
        delivered = plan.deliveries
        delivered_ids = (
            delivered.client_ids.tolist()
            if isinstance(delivered, LazyDeliveries)
            else [d.client_id for d in delivered]
        )
        finishes = [
            finish_by_id[cid] for cid in delivered_ids if cid in finish_by_id
        ]
        if not finishes:
            return 0.0
        return max(0.0, max(finishes) - plan.start)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AsyncBufferPolicy(buffer_size={self.buffer_size}, "
            f"staleness_exponent={self.staleness_exponent})"
        )


# ----------------------------------------------------------------------
# Policy registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RoundPolicySpec:
    """One registry entry: ``factory(systems_config) -> RoundPolicy``."""

    name: str
    factory: Callable[..., RoundPolicy]
    summary: str = ""


_REGISTRY: Dict[str, RoundPolicySpec] = {}


def register_round_policy(name: str, *, summary: str = "") -> Callable:
    """Decorator adding a round-policy factory to the registry."""

    def decorator(factory: Callable) -> Callable:
        if name in _REGISTRY:
            raise ValueError(f"round policy {name!r} is already registered")
        doc = summary or (factory.__doc__ or "").strip().splitlines()[0].strip()
        _REGISTRY[name] = RoundPolicySpec(name=name, factory=factory, summary=doc)
        return factory

    return decorator


def get_round_policy(name: str) -> RoundPolicySpec:
    """Look up one registered policy; unknown names raise ``KeyError``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown round policy {name!r}; choose from {available_round_policies()}"
        ) from None


def available_round_policies() -> Tuple[str, ...]:
    """Registered round-policy names, in registration order."""
    return tuple(_REGISTRY)


def round_policy_specs() -> Tuple[RoundPolicySpec, ...]:
    """All round-policy registry entries, in registration order."""
    return tuple(_REGISTRY.values())


def build_round_policy(systems) -> RoundPolicy:
    """Instantiate the configured policy from a ``SystemsConfig``."""
    return get_round_policy(systems.round_policy).factory(systems)


@register_round_policy(
    "synchronous", summary="wait for every participant (paper protocol)"
)
def _synchronous_policy(systems) -> SynchronousPolicy:
    return SynchronousPolicy()


@register_round_policy(
    "deadline", summary="close after T seconds; late uploads become 0-weight"
)
def _deadline_policy(systems) -> DeadlinePolicy:
    return DeadlinePolicy(systems.deadline_seconds)


@register_round_policy(
    "async-buffer",
    summary="FedBuff-style: first K arrivals, staleness-discounted weights",
)
def _async_buffer_policy(systems) -> AsyncBufferPolicy:
    return AsyncBufferPolicy(systems.buffer_size, systems.staleness_exponent)


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RoundPlan:
    """The server's schedule for one round, issued at round start.

    Trainers consume it before local work runs: ``busy`` clients (still
    in flight from an earlier round under async semantics) are skipped,
    ``deliveries`` is the aggregation list (this round's on-time clients
    plus carried arrivals, each with its staleness weight), and
    ``stragglers`` are the clients starting this round whose upload will
    miss the close.
    """

    round_index: int
    start: float
    sampled: Tuple[int, ...]
    started: Tuple[int, ...]
    busy: Tuple[int, ...]
    deliveries: Union[Tuple[Delivery, ...], LazyDeliveries]
    stragglers: Tuple[int, ...]
    close_seconds: float
    round_seconds: float

    @property
    def delivered_ids(self) -> frozenset:
        if isinstance(self.deliveries, LazyDeliveries):
            return self.deliveries.id_set
        return frozenset(d.client_id for d in self.deliveries)

    def delivery_weight(self, client_id: int) -> float:
        """Aggregation weight for one client (0.0 when not delivered)."""
        if isinstance(self.deliveries, LazyDeliveries):
            return self.deliveries.weight_for(client_id)
        for delivery in self.deliveries:
            if delivery.client_id == client_id:
                return delivery.weight
        return 0.0


@dataclass(frozen=True)
class RoundOutcome:
    """What actually happened, priced from the round's recorded bytes."""

    round_index: int
    start: float
    close_seconds: float
    round_seconds: float
    deliveries: Union[Tuple[Delivery, ...], LazyDeliveries]
    stragglers: Tuple[int, ...]
    busy: Tuple[int, ...]
    events: Tuple[Event, ...]


@dataclass
class FleetSimReport:
    """A whole history replayed through the engine (post-hoc mode)."""

    outcomes: List[RoundOutcome] = field(default_factory=list)
    trace: Tuple[Event, ...] = ()

    @property
    def round_seconds(self) -> List[float]:
        return [outcome.round_seconds for outcome in self.outcomes]

    @property
    def total_seconds(self) -> float:
        return float(sum(outcome.round_seconds for outcome in self.outcomes))

    @property
    def total_stragglers(self) -> int:
        return sum(len(outcome.stragglers) for outcome in self.outcomes)

    def time_to_accuracy(self, history, target: float) -> Optional[float]:
        """Simulated seconds until ``history`` reaches ``target`` accuracy."""
        elapsed = 0.0
        for record, outcome in zip(history.rounds, self.outcomes):
            elapsed += outcome.round_seconds
            if record.mean_accuracy is not None and record.mean_accuracy >= target:
                return elapsed
        return None


class FleetSimulator:
    """Deterministic discrete-event simulation of one federated deployment."""

    def __init__(
        self,
        fleet: Fleet,
        policy: RoundPolicy,
        flops_per_example: float,
        examples_per_round: float,
        server_overhead_seconds: float = 0.5,
        jitter: float = 0.0,
        seed: int = 0,
        pricing: str = "vector",
    ) -> None:
        if flops_per_example <= 0 or examples_per_round <= 0:
            raise ValueError(
                "flops_per_example and examples_per_round must be positive"
            )
        if not 0.0 <= jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {jitter}")
        if pricing not in ("vector", "scalar"):
            raise ValueError(
                f"pricing must be 'vector' or 'scalar', got {pricing!r}"
            )
        if (
            pricing == "vector"
            and type(policy).decide_vector is RoundPolicy.decide_vector
        ):
            # A policy (e.g. third-party) without a batch path is priced on
            # the legacy per-client loop rather than crashing mid-round.
            pricing = "scalar"
        self.fleet = fleet
        self.policy = policy
        self.flops_per_example = flops_per_example
        self.examples_per_round = examples_per_round
        self.server_overhead_seconds = server_overhead_seconds
        self.jitter = jitter
        self.seed = seed
        self.pricing = pricing
        self.clock = SimClock(seed=seed)
        self.in_flight: Dict[int, ClientTimeline] = {}
        self.pending: Optional[RoundPlan] = None
        self.total_seconds = 0.0
        self.outcomes: List[RoundOutcome] = []
        self._plan_traffic: TrafficLike = {}
        self._plan_factors: Dict[int, float] = {}
        self._plan_draws: Optional[np.ndarray] = None

    def fresh(self) -> "FleetSimulator":
        """A new engine with the same parameters and seed, at time zero."""
        return FleetSimulator(
            fleet=self.fleet,
            policy=self.policy,
            flops_per_example=self.flops_per_example,
            examples_per_round=self.examples_per_round,
            server_overhead_seconds=self.server_overhead_seconds,
            jitter=self.jitter,
            seed=self.seed,
            pricing=self.pricing,
        )

    # ------------------------------------------------------------------
    # Two-phase live protocol
    # ------------------------------------------------------------------
    def _jitter_draws(self, count: int) -> Optional[np.ndarray]:
        """One batched RNG draw per plan — both pricing modes consume the
        same stream positions, so switching modes never shifts the seed."""
        if self.jitter <= 0.0 or count == 0:
            return None
        return self.clock.rng.uniform(
            1.0 - self.jitter, 1.0 + self.jitter, size=count
        )

    def _jitter_factors(self, client_ids: Sequence[int]) -> Dict[int, float]:
        draws = self._jitter_draws(len(client_ids))
        if draws is None:
            return {}
        return {cid: float(factor) for cid, factor in zip(client_ids, draws)}

    def _timelines(
        self, round_index: int, client_ids: Sequence[int], traffic: TrafficMap
    ) -> Tuple[ClientTimeline, ...]:
        return build_timelines(
            self.fleet,
            round_index,
            self.clock.now,
            client_ids,
            traffic,
            self.flops_per_example,
            self.examples_per_round,
            jitter_factors=self._plan_factors,
        )

    @staticmethod
    def _as_traffic_map(traffic: TrafficLike, client_ids: Sequence[int]) -> TrafficMap:
        """The scalar path needs a per-client dict; expand uniform pairs."""
        if isinstance(traffic, dict):
            return traffic
        upload, download = traffic
        count = len(client_ids)
        up = np.broadcast_to(np.asarray(upload, dtype=np.float64), (count,))
        down = np.broadcast_to(np.asarray(download, dtype=np.float64), (count,))
        return {
            cid: (up_bytes, down_bytes)
            for cid, up_bytes, down_bytes in zip(
                client_ids, up.tolist(), down.tolist()
            )
        }

    def plan_round(
        self, round_index: int, sampled: Sequence[int], traffic: TrafficMap
    ) -> RoundPlan:
        """Phase 1 (round start): estimated timelines → the server's schedule.

        ``traffic`` holds the *estimated* per-client bytes (dense model
        size; the committed mask's size for Sub-FedAvg); the completion
        phase re-prices from the recorded actuals.  A dangling previous
        plan (a caller that never completed) is finalized from its own
        estimates first, so the clock can never silently stall.
        """
        if self.pending is not None:
            self.complete_round(None)
        start = self.clock.now
        if isinstance(sampled, np.ndarray):
            sampled = tuple(sampled.tolist())
        else:
            sampled = tuple(int(cid) for cid in sampled)
        busy = tuple(cid for cid in sampled if cid in self.in_flight)
        if busy and len(busy) == len(sampled):
            # Every sampled client is mid-flight: restart them all (their
            # stale work is discarded) rather than running an empty round.
            for cid in busy:
                self.in_flight.pop(cid)
                self.clock.discard(cid)
            busy = ()
        started = tuple(cid for cid in sampled if cid not in set(busy))
        self._plan_draws = self._jitter_draws(len(started))
        self._plan_traffic = dict(traffic) if isinstance(traffic, dict) else traffic
        if self.pricing == "vector":
            fresh_vec = build_round_timelines(
                self.fleet,
                round_index,
                start,
                started,
                traffic,
                self.flops_per_example,
                self.examples_per_round,
                jitter_factors=self._plan_draws,
            )
            carried = (
                tuple(self.in_flight.values()) if self.policy.carries_late else ()
            )
            vector = self.policy.decide_vector(round_index, start, fresh_vec, carried)
            deliveries: Union[Tuple[Delivery, ...], LazyDeliveries] = (
                vector.deliveries
            )
            stragglers = vector.stragglers
            close_seconds = vector.close_seconds
        else:
            self._plan_factors = (
                {}
                if self._plan_draws is None
                else {
                    cid: float(factor)
                    for cid, factor in zip(started, self._plan_draws)
                }
            )
            fresh = self._timelines(
                round_index, started, self._as_traffic_map(traffic, started)
            )
            carried = (
                tuple(self.in_flight.values()) if self.policy.carries_late else ()
            )
            decision = self.policy.decide(round_index, start, fresh, carried)
            deliveries = tuple(
                Delivery(
                    client_id=t.client_id,
                    round_started=t.round_index,
                    staleness=round_index - t.round_index,
                    weight=self.policy.weight(round_index - t.round_index),
                )
                for t in decision.delivered
            )
            stragglers = tuple(
                t.client_id for t in decision.late if t.round_index == round_index
            )
            close_seconds = decision.close_seconds
        plan = RoundPlan(
            round_index=round_index,
            start=start,
            sampled=sampled,
            started=started,
            busy=busy,
            deliveries=deliveries,
            stragglers=stragglers,
            close_seconds=close_seconds,
            round_seconds=close_seconds + self.server_overhead_seconds,
        )
        self.pending = plan
        return plan

    def pending_timelines(self):
        """Per-client timelines of the pending plan's started cohort.

        The serving layer paces real dispatch with these: a client's
        simulated download+compute offset (scaled by the server's
        ``time_scale``) delays when its task becomes visible on the
        wire, so real arrival order tracks simulated arrival order.
        Reuses the plan's stored traffic and jitter draws, so reading
        the timelines never advances the RNG stream.  ``None`` when no
        plan is pending or nothing started this round.
        """
        plan = self.pending
        if plan is None or not plan.started:
            return None
        return build_round_timelines(
            self.fleet,
            plan.round_index,
            plan.start,
            plan.started,
            self._plan_traffic,
            self.flops_per_example,
            self.examples_per_round,
            jitter_factors=self._plan_draws,
        )

    def complete_round(self, record=None) -> RoundOutcome:
        """Phase 2 (round end): re-price from actuals, drain events, advance.

        ``record`` is the finished
        :class:`~repro.federated.metrics.RoundRecord` (its
        ``per_client_traffic()`` supplies actual bytes); ``None`` falls
        back to the plan's estimates.  The plan's delivered/straggler
        verdict is kept — the trainer already acted on it — only the
        close time is re-priced.
        """
        plan = self.pending
        if plan is None:
            raise RuntimeError("complete_round called without a pending plan")
        self.pending = None
        traffic: TrafficLike = (
            dict(record.per_client_traffic()) if record is not None
            else self._plan_traffic
        )
        if self.pricing == "vector":
            close, drained = self._complete_vector(plan, traffic)
        else:
            close, drained = self._complete_scalar(plan, traffic)
        round_seconds = close + self.server_overhead_seconds
        self.clock.advance_to(plan.start + round_seconds)
        self.total_seconds += round_seconds
        outcome = RoundOutcome(
            round_index=plan.round_index,
            start=plan.start,
            close_seconds=close,
            round_seconds=round_seconds,
            deliveries=plan.deliveries,
            stragglers=plan.stragglers,
            busy=plan.busy,
            events=drained,
        )
        self.outcomes.append(outcome)
        return outcome

    def _complete_scalar(
        self, plan: RoundPlan, traffic: TrafficLike
    ) -> Tuple[float, Tuple[Event, ...]]:
        """Legacy per-client completion: every phase becomes a clock event."""
        fresh = self._timelines(
            plan.round_index, plan.started, self._as_traffic_map(traffic, plan.started)
        )
        carried = tuple(self.in_flight.values())
        close = self.policy.close_seconds_for(plan, fresh, carried)
        for timeline in fresh:
            self.clock.schedule_at(
                timeline.download_done,
                DOWNLOAD_DONE,
                client_id=timeline.client_id,
                round_index=plan.round_index,
            )
            self.clock.schedule_at(
                timeline.compute_done,
                COMPUTE_DONE,
                client_id=timeline.client_id,
                round_index=plan.round_index,
            )
            self.clock.schedule_at(
                timeline.finish,
                UPLOAD_DONE,
                client_id=timeline.client_id,
                round_index=plan.round_index,
            )
        drained = tuple(self.clock.pop_until(plan.start + close))
        delivered_ids = plan.delivered_ids
        if self.policy.carries_late:
            for cid in delivered_ids:
                self.in_flight.pop(cid, None)
                # Re-pricing can push a *planned-delivered* finish past the
                # close; its leftover events belong to this round, not the
                # next one's trace.
                self.clock.discard(cid)
            for timeline in fresh:
                if timeline.client_id not in delivered_ids:
                    self.in_flight[timeline.client_id] = timeline
        else:
            # The server closed the round: every event still queued for a
            # participant is stale — a straggler's work never lands
            # anywhere, and a planned-delivered client whose re-priced
            # finish slipped past the close already counted this round.
            for timeline in fresh:
                self.clock.discard(timeline.client_id)
        return close, drained

    def _complete_vector(
        self, plan: RoundPlan, traffic: TrafficLike
    ) -> Tuple[float, Tuple[Event, ...]]:
        """Array-shaped completion: the heap holds only cross-round carries.

        Per-phase events for this round's cohort are *not* scheduled — at a
        million clients the heap would dominate the round — so the drained
        trace contains only carried-upload events.  The close time, the
        in-flight set and the simulated clock advance exactly as the scalar
        path computes them.
        """
        fresh = build_round_timelines(
            self.fleet,
            plan.round_index,
            plan.start,
            plan.started,
            traffic,
            self.flops_per_example,
            self.examples_per_round,
            jitter_factors=self._plan_draws,
        )
        carried = tuple(self.in_flight.values())
        close = self.policy.close_vector(plan, fresh, carried)
        if not self.policy.carries_late:
            return close, tuple(self.clock.pop_until(plan.start + close))
        delivered_ids = plan.delivered_ids
        undelivered = [
            position
            for position, cid in enumerate(fresh.client_ids.tolist())
            if cid not in delivered_ids
        ]
        views = [fresh.view(position) for position in undelivered]
        for timeline in views:
            self.clock.schedule_at(
                timeline.finish,
                UPLOAD_DONE,
                client_id=timeline.client_id,
                round_index=plan.round_index,
            )
        drained = tuple(self.clock.pop_until(plan.start + close))
        for cid in delivered_ids:
            self.in_flight.pop(cid, None)
            self.clock.discard(cid)
        for timeline in views:
            self.in_flight[timeline.client_id] = timeline
        return close, drained

    # ------------------------------------------------------------------
    # Post-hoc mode
    # ------------------------------------------------------------------
    def observe(self, record) -> RoundOutcome:
        """Plan + complete one finished round from its record alone."""
        traffic = dict(record.per_client_traffic())
        self.plan_round(record.round_index, tuple(record.sampled_clients), traffic)
        return self.complete_round(record)

    def simulate(self, history) -> FleetSimReport:
        """Replay a finished history on a fresh engine (this one untouched)."""
        engine = self.fresh()
        outcomes = [engine.observe(record) for record in history.rounds]
        return FleetSimReport(outcomes=outcomes, trace=tuple(engine.clock.trace))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FleetSimulator(policy={self.policy.name!r}, "
            f"fleet={self.fleet!r}, t={self.clock.now:.1f}s)"
        )
