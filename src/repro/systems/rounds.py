"""Round-completion policies and the :class:`FleetSimulator` engine.

The server's *round-completion policy* decides when a communication round
closes and which client uploads it aggregates:

* ``synchronous`` — wait for every participant (the paper's protocol and
  the legacy :class:`~repro.federated.simulation.WallClockModel`
  semantics; reproduces its totals bit-for-bit),
* ``deadline`` — close the round after a fixed budget of seconds; late
  clients become zero-weight stragglers (their wasted upload is still
  metered, their update is dropped),
* ``async-buffer`` — FedBuff-style: close as soon as the first ``K``
  uploads arrive, from *any* in-flight client — stragglers keep running
  across round boundaries and deliver later with staleness-discounted
  weights.

Policies are a registry (:func:`register_round_policy`) selected through
the ``systems`` section of a
:class:`~repro.federated.builder.FederationConfig`.

:class:`FleetSimulator` drives one simulation: it owns the
:class:`~repro.systems.clock.SimClock`, the in-flight client set, and the
two-phase round protocol —

1. :meth:`~FleetSimulator.plan_round` (round start): build estimated
   timelines for the sampled clients, ask the policy who will deliver,
   and hand the trainer a :class:`RoundPlan` (busy clients to skip,
   deliveries with staleness weights, predicted stragglers);
2. :meth:`~FleetSimulator.complete_round` (round end): re-price the
   timelines from the *actual* per-client bytes the round recorded,
   schedule the download/compute/upload events, drain the clock to the
   close, and advance simulated time.

:meth:`~FleetSimulator.observe` collapses the two phases for post-hoc use
(the estimate *is* the record), and :meth:`~FleetSimulator.simulate`
replays a whole finished :class:`~repro.federated.metrics.History` on a
fresh engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .clock import SimClock
from .events import COMPUTE_DONE, DOWNLOAD_DONE, UPLOAD_DONE, Event
from .fleet import Fleet
from .timeline import ClientTimeline, TrafficMap, build_timelines


# ----------------------------------------------------------------------
# Policy decisions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Delivery:
    """One upload the server aggregates this round.

    ``staleness`` counts the rounds since the client started the work
    (0 = started this round); ``weight`` is the policy's aggregation
    discount for that staleness (1.0 under synchronous semantics).
    """

    client_id: int
    round_started: int
    staleness: int
    weight: float


@dataclass(frozen=True)
class PolicyDecision:
    """A policy's verdict on one round's timelines."""

    delivered: Tuple[ClientTimeline, ...]
    late: Tuple[ClientTimeline, ...]
    close_seconds: float  # seconds from round start to close (excl. overhead)


class RoundPolicy:
    """Strategy interface: when does a round close, who gets aggregated."""

    name = "abstract"
    #: Do late clients keep running into later rounds (async) or is their
    #: work dropped when the round closes (deadline)?
    carries_late = False

    def decide(
        self,
        round_index: int,
        start: float,
        fresh: Sequence[ClientTimeline],
        carried: Sequence[ClientTimeline],
    ) -> PolicyDecision:
        raise NotImplementedError

    def close_seconds_for(
        self,
        plan: "RoundPlan",
        fresh: Sequence[ClientTimeline],
        carried: Sequence[ClientTimeline],
    ) -> float:
        """Close time for *re-priced* timelines, keeping the plan's verdict.

        The trainer has already acted on the plan (who trains, whose
        update is aggregated), so the completion pass never changes the
        delivered set — it only re-prices when the close happens from the
        actual bytes.
        """
        raise NotImplementedError

    def weight(self, staleness: int) -> float:
        return 1.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class SynchronousPolicy(RoundPolicy):
    """Wait for every participant — the paper's (and the legacy) semantics."""

    name = "synchronous"

    def decide(self, round_index, start, fresh, carried) -> PolicyDecision:
        return PolicyDecision(
            delivered=tuple(fresh),
            late=(),
            close_seconds=max((t.duration for t in fresh), default=0.0),
        )

    def close_seconds_for(self, plan, fresh, carried) -> float:
        return max((t.duration for t in fresh), default=0.0)


class DeadlinePolicy(RoundPolicy):
    """Close the round after ``deadline_seconds``; late uploads are dropped."""

    name = "deadline"

    def __init__(self, deadline_seconds: float) -> None:
        if deadline_seconds <= 0:
            raise ValueError(
                "the deadline policy requires systems.deadline_seconds > 0, "
                f"got {deadline_seconds}"
            )
        self.deadline_seconds = deadline_seconds

    def decide(self, round_index, start, fresh, carried) -> PolicyDecision:
        delivered = tuple(t for t in fresh if t.duration <= self.deadline_seconds)
        late = tuple(t for t in fresh if t.duration > self.deadline_seconds)
        close = (
            self.deadline_seconds
            if late
            else max((t.duration for t in fresh), default=0.0)
        )
        return PolicyDecision(delivered=delivered, late=late, close_seconds=close)

    def close_seconds_for(self, plan, fresh, carried) -> float:
        if plan.stragglers:
            return self.deadline_seconds
        return min(
            self.deadline_seconds,
            max((t.duration for t in fresh), default=0.0),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DeadlinePolicy(deadline_seconds={self.deadline_seconds})"


class AsyncBufferPolicy(RoundPolicy):
    """FedBuff-style: aggregate the first ``K`` arrivals, discount staleness.

    Arrivals are ordered by ``(finish time, client id)`` over both the
    clients starting this round and the in-flight stragglers carried from
    earlier rounds.  A carried arrival's weight is
    ``(1 + staleness) ** -staleness_exponent`` with staleness counted in
    rounds — the FedBuff ``1/sqrt(1+τ)`` discount at the default 0.5.
    ``buffer_size=0`` auto-sizes ``K`` to half the pending arrivals
    (minimum 1).
    """

    name = "async-buffer"
    carries_late = True

    def __init__(self, buffer_size: int = 0, staleness_exponent: float = 0.5) -> None:
        if buffer_size < 0:
            raise ValueError(f"buffer_size must be >= 0, got {buffer_size}")
        if staleness_exponent < 0:
            raise ValueError(
                f"staleness_exponent must be >= 0, got {staleness_exponent}"
            )
        self.buffer_size = buffer_size
        self.staleness_exponent = staleness_exponent

    def _buffer(self, pending: int) -> int:
        if self.buffer_size > 0:
            return min(self.buffer_size, pending)
        return max(1, pending // 2)

    def decide(self, round_index, start, fresh, carried) -> PolicyDecision:
        arrivals = sorted(
            (*fresh, *carried), key=lambda t: (t.finish, t.client_id)
        )
        if not arrivals:
            return PolicyDecision(delivered=(), late=(), close_seconds=0.0)
        k = self._buffer(len(arrivals))
        delivered = tuple(arrivals[:k])
        late = tuple(arrivals[k:])
        close = max(0.0, delivered[-1].finish - start)
        return PolicyDecision(delivered=delivered, late=late, close_seconds=close)

    def close_seconds_for(self, plan, fresh, carried) -> float:
        by_id = {t.client_id: t for t in (*carried, *fresh)}
        finishes = [
            by_id[d.client_id].finish
            for d in plan.deliveries
            if d.client_id in by_id
        ]
        if not finishes:
            return 0.0
        return max(0.0, max(finishes) - plan.start)

    def weight(self, staleness: int) -> float:
        return float((1 + staleness) ** -self.staleness_exponent)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AsyncBufferPolicy(buffer_size={self.buffer_size}, "
            f"staleness_exponent={self.staleness_exponent})"
        )


# ----------------------------------------------------------------------
# Policy registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RoundPolicySpec:
    """One registry entry: ``factory(systems_config) -> RoundPolicy``."""

    name: str
    factory: Callable[..., RoundPolicy]
    summary: str = ""


_REGISTRY: Dict[str, RoundPolicySpec] = {}


def register_round_policy(name: str, *, summary: str = "") -> Callable:
    """Decorator adding a round-policy factory to the registry."""

    def decorator(factory: Callable) -> Callable:
        if name in _REGISTRY:
            raise ValueError(f"round policy {name!r} is already registered")
        doc = summary or (factory.__doc__ or "").strip().splitlines()[0].strip()
        _REGISTRY[name] = RoundPolicySpec(name=name, factory=factory, summary=doc)
        return factory

    return decorator


def get_round_policy(name: str) -> RoundPolicySpec:
    """Look up one registered policy; unknown names raise ``KeyError``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown round policy {name!r}; choose from {available_round_policies()}"
        ) from None


def available_round_policies() -> Tuple[str, ...]:
    """Registered round-policy names, in registration order."""
    return tuple(_REGISTRY)


def round_policy_specs() -> Tuple[RoundPolicySpec, ...]:
    """All round-policy registry entries, in registration order."""
    return tuple(_REGISTRY.values())


def build_round_policy(systems) -> RoundPolicy:
    """Instantiate the configured policy from a ``SystemsConfig``."""
    return get_round_policy(systems.round_policy).factory(systems)


@register_round_policy(
    "synchronous", summary="wait for every participant (paper protocol)"
)
def _synchronous_policy(systems) -> SynchronousPolicy:
    return SynchronousPolicy()


@register_round_policy(
    "deadline", summary="close after T seconds; late uploads become 0-weight"
)
def _deadline_policy(systems) -> DeadlinePolicy:
    return DeadlinePolicy(systems.deadline_seconds)


@register_round_policy(
    "async-buffer",
    summary="FedBuff-style: first K arrivals, staleness-discounted weights",
)
def _async_buffer_policy(systems) -> AsyncBufferPolicy:
    return AsyncBufferPolicy(systems.buffer_size, systems.staleness_exponent)


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RoundPlan:
    """The server's schedule for one round, issued at round start.

    Trainers consume it before local work runs: ``busy`` clients (still
    in flight from an earlier round under async semantics) are skipped,
    ``deliveries`` is the aggregation list (this round's on-time clients
    plus carried arrivals, each with its staleness weight), and
    ``stragglers`` are the clients starting this round whose upload will
    miss the close.
    """

    round_index: int
    start: float
    sampled: Tuple[int, ...]
    started: Tuple[int, ...]
    busy: Tuple[int, ...]
    deliveries: Tuple[Delivery, ...]
    stragglers: Tuple[int, ...]
    close_seconds: float
    round_seconds: float

    @property
    def delivered_ids(self) -> frozenset:
        return frozenset(d.client_id for d in self.deliveries)

    def delivery_weight(self, client_id: int) -> float:
        """Aggregation weight for one client (0.0 when not delivered)."""
        for delivery in self.deliveries:
            if delivery.client_id == client_id:
                return delivery.weight
        return 0.0


@dataclass(frozen=True)
class RoundOutcome:
    """What actually happened, priced from the round's recorded bytes."""

    round_index: int
    start: float
    close_seconds: float
    round_seconds: float
    deliveries: Tuple[Delivery, ...]
    stragglers: Tuple[int, ...]
    busy: Tuple[int, ...]
    events: Tuple[Event, ...]


@dataclass
class FleetSimReport:
    """A whole history replayed through the engine (post-hoc mode)."""

    outcomes: List[RoundOutcome] = field(default_factory=list)
    trace: Tuple[Event, ...] = ()

    @property
    def round_seconds(self) -> List[float]:
        return [outcome.round_seconds for outcome in self.outcomes]

    @property
    def total_seconds(self) -> float:
        return float(sum(outcome.round_seconds for outcome in self.outcomes))

    @property
    def total_stragglers(self) -> int:
        return sum(len(outcome.stragglers) for outcome in self.outcomes)

    def time_to_accuracy(self, history, target: float) -> Optional[float]:
        """Simulated seconds until ``history`` reaches ``target`` accuracy."""
        elapsed = 0.0
        for record, outcome in zip(history.rounds, self.outcomes):
            elapsed += outcome.round_seconds
            if record.mean_accuracy is not None and record.mean_accuracy >= target:
                return elapsed
        return None


class FleetSimulator:
    """Deterministic discrete-event simulation of one federated deployment."""

    def __init__(
        self,
        fleet: Fleet,
        policy: RoundPolicy,
        flops_per_example: float,
        examples_per_round: float,
        server_overhead_seconds: float = 0.5,
        jitter: float = 0.0,
        seed: int = 0,
    ) -> None:
        if flops_per_example <= 0 or examples_per_round <= 0:
            raise ValueError(
                "flops_per_example and examples_per_round must be positive"
            )
        if not 0.0 <= jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {jitter}")
        self.fleet = fleet
        self.policy = policy
        self.flops_per_example = flops_per_example
        self.examples_per_round = examples_per_round
        self.server_overhead_seconds = server_overhead_seconds
        self.jitter = jitter
        self.seed = seed
        self.clock = SimClock(seed=seed)
        self.in_flight: Dict[int, ClientTimeline] = {}
        self.pending: Optional[RoundPlan] = None
        self.total_seconds = 0.0
        self.outcomes: List[RoundOutcome] = []
        self._plan_traffic: TrafficMap = {}
        self._plan_factors: Dict[int, float] = {}

    def fresh(self) -> "FleetSimulator":
        """A new engine with the same parameters and seed, at time zero."""
        return FleetSimulator(
            fleet=self.fleet,
            policy=self.policy,
            flops_per_example=self.flops_per_example,
            examples_per_round=self.examples_per_round,
            server_overhead_seconds=self.server_overhead_seconds,
            jitter=self.jitter,
            seed=self.seed,
        )

    # ------------------------------------------------------------------
    # Two-phase live protocol
    # ------------------------------------------------------------------
    def _jitter_factors(self, client_ids: Sequence[int]) -> Dict[int, float]:
        if self.jitter <= 0.0 or not client_ids:
            return {}
        draws = self.clock.rng.uniform(
            1.0 - self.jitter, 1.0 + self.jitter, size=len(client_ids)
        )
        return {cid: float(factor) for cid, factor in zip(client_ids, draws)}

    def _timelines(
        self, round_index: int, client_ids: Sequence[int], traffic: TrafficMap
    ) -> Tuple[ClientTimeline, ...]:
        return build_timelines(
            self.fleet,
            round_index,
            self.clock.now,
            client_ids,
            traffic,
            self.flops_per_example,
            self.examples_per_round,
            jitter_factors=self._plan_factors,
        )

    def plan_round(
        self, round_index: int, sampled: Sequence[int], traffic: TrafficMap
    ) -> RoundPlan:
        """Phase 1 (round start): estimated timelines → the server's schedule.

        ``traffic`` holds the *estimated* per-client bytes (dense model
        size; the committed mask's size for Sub-FedAvg); the completion
        phase re-prices from the recorded actuals.  A dangling previous
        plan (a caller that never completed) is finalized from its own
        estimates first, so the clock can never silently stall.
        """
        if self.pending is not None:
            self.complete_round(None)
        start = self.clock.now
        sampled = tuple(int(cid) for cid in sampled)
        busy = tuple(cid for cid in sampled if cid in self.in_flight)
        if busy and len(busy) == len(sampled):
            # Every sampled client is mid-flight: restart them all (their
            # stale work is discarded) rather than running an empty round.
            for cid in busy:
                self.in_flight.pop(cid)
                self.clock.discard(cid)
            busy = ()
        started = tuple(cid for cid in sampled if cid not in set(busy))
        self._plan_factors = self._jitter_factors(started)
        self._plan_traffic = dict(traffic)
        fresh = self._timelines(round_index, started, traffic)
        carried = (
            tuple(self.in_flight.values()) if self.policy.carries_late else ()
        )
        decision = self.policy.decide(round_index, start, fresh, carried)
        deliveries = tuple(
            Delivery(
                client_id=t.client_id,
                round_started=t.round_index,
                staleness=round_index - t.round_index,
                weight=self.policy.weight(round_index - t.round_index),
            )
            for t in decision.delivered
        )
        stragglers = tuple(
            t.client_id for t in decision.late if t.round_index == round_index
        )
        plan = RoundPlan(
            round_index=round_index,
            start=start,
            sampled=sampled,
            started=started,
            busy=busy,
            deliveries=deliveries,
            stragglers=stragglers,
            close_seconds=decision.close_seconds,
            round_seconds=decision.close_seconds + self.server_overhead_seconds,
        )
        self.pending = plan
        return plan

    def complete_round(self, record=None) -> RoundOutcome:
        """Phase 2 (round end): re-price from actuals, drain events, advance.

        ``record`` is the finished
        :class:`~repro.federated.metrics.RoundRecord` (its
        ``per_client_traffic()`` supplies actual bytes); ``None`` falls
        back to the plan's estimates.  The plan's delivered/straggler
        verdict is kept — the trainer already acted on it — only the
        close time is re-priced.
        """
        plan = self.pending
        if plan is None:
            raise RuntimeError("complete_round called without a pending plan")
        self.pending = None
        traffic = (
            dict(record.per_client_traffic()) if record is not None
            else self._plan_traffic
        )
        fresh = self._timelines(plan.round_index, plan.started, traffic)
        carried = tuple(self.in_flight.values())
        close = self.policy.close_seconds_for(plan, fresh, carried)
        round_seconds = close + self.server_overhead_seconds
        for timeline in fresh:
            self.clock.schedule_at(
                timeline.download_done,
                DOWNLOAD_DONE,
                client_id=timeline.client_id,
                round_index=plan.round_index,
            )
            self.clock.schedule_at(
                timeline.compute_done,
                COMPUTE_DONE,
                client_id=timeline.client_id,
                round_index=plan.round_index,
            )
            self.clock.schedule_at(
                timeline.finish,
                UPLOAD_DONE,
                client_id=timeline.client_id,
                round_index=plan.round_index,
            )
        drained = tuple(self.clock.pop_until(plan.start + close))
        delivered_ids = plan.delivered_ids
        if self.policy.carries_late:
            for cid in delivered_ids:
                self.in_flight.pop(cid, None)
                # Re-pricing can push a *planned-delivered* finish past the
                # close; its leftover events belong to this round, not the
                # next one's trace.
                self.clock.discard(cid)
            for timeline in fresh:
                if timeline.client_id not in delivered_ids:
                    self.in_flight[timeline.client_id] = timeline
        else:
            # The server closed the round: every event still queued for a
            # participant is stale — a straggler's work never lands
            # anywhere, and a planned-delivered client whose re-priced
            # finish slipped past the close already counted this round.
            for timeline in fresh:
                self.clock.discard(timeline.client_id)
        self.clock.advance_to(plan.start + round_seconds)
        self.total_seconds += round_seconds
        outcome = RoundOutcome(
            round_index=plan.round_index,
            start=plan.start,
            close_seconds=close,
            round_seconds=round_seconds,
            deliveries=plan.deliveries,
            stragglers=plan.stragglers,
            busy=plan.busy,
            events=drained,
        )
        self.outcomes.append(outcome)
        return outcome

    # ------------------------------------------------------------------
    # Post-hoc mode
    # ------------------------------------------------------------------
    def observe(self, record) -> RoundOutcome:
        """Plan + complete one finished round from its record alone."""
        traffic = dict(record.per_client_traffic())
        self.plan_round(record.round_index, tuple(record.sampled_clients), traffic)
        return self.complete_round(record)

    def simulate(self, history) -> FleetSimReport:
        """Replay a finished history on a fresh engine (this one untouched)."""
        engine = self.fresh()
        outcomes = [engine.observe(record) for record in history.rounds]
        return FleetSimReport(outcomes=outcomes, trace=tuple(engine.clock.trace))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FleetSimulator(policy={self.policy.name!r}, "
            f"fleet={self.fleet!r}, t={self.clock.now:.1f}s)"
        )
