"""Event records for the fleet simulator.

An :class:`Event` is one timestamped state change popped off the
:class:`~repro.systems.clock.SimClock` queue: a client finishing a
download, a local-compute pass, or an upload (the *arrival* the server
reacts to), or the server closing a round.  Events are immutable and
totally ordered by ``(time, seq)`` — ``seq`` is the monotonically
increasing schedule counter the clock assigns, so simultaneous events
drain in the deterministic order they were scheduled, never in dict or
hash order.  Two simulations of the same inputs therefore produce
byte-identical event traces (the property the determinism tests pin).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Per-client phase completions, in the order a client passes through them.
DOWNLOAD_DONE = "download-done"
COMPUTE_DONE = "compute-done"
UPLOAD_DONE = "upload-done"

#: Server-side bookkeeping: the round-completion policy closed the round.
ROUND_CLOSED = "round-closed"

#: Every kind a :class:`SimClock` will schedule, in lifecycle order.
EVENT_KINDS = (DOWNLOAD_DONE, COMPUTE_DONE, UPLOAD_DONE, ROUND_CLOSED)


@dataclass(frozen=True, order=True)
class Event:
    """One timestamped simulator state change.

    Ordering is ``(time, seq)`` — the dataclass field order — so a heap
    of events is stable under ties without ever comparing the payload
    fields.
    """

    time: float
    seq: int
    kind: str
    client_id: int = -1
    round_index: int = -1

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(f"kind must be one of {EVENT_KINDS}, got {self.kind!r}")
        if self.time < 0.0:
            raise ValueError(f"event time must be >= 0, got {self.time}")
