"""Lifecycle callback wiring the fleet simulator into a federated run.

:class:`FleetSimCallback` annotates every
:class:`~repro.federated.metrics.RoundRecord` with the engine's verdict
as the round completes: ``simulated_seconds`` (how long the round took on
the configured fleet under the configured round policy) and
``stragglers`` (clients whose upload missed the close).

Two ways to use it:

* **Configured runs** — a run whose ``FederationConfig`` carries a
  ``systems`` section gets this callback automatically from
  :meth:`Federation.run <repro.federated.federation.Federation.run>`;
  the trainer's attached simulator already planned the round (skipping
  busy clients, zero-weighting stragglers), and the callback completes
  it from the recorded actual bytes.
* **Post-hoc annotation** — wrap any :class:`FleetSimulator` and pass the
  callback to ``run(callbacks=[...])`` on a run *without* a ``systems``
  section: each round is observed from its record alone (no training
  effect), like :class:`~repro.federated.callbacks.WallClockCallback`
  but with per-client bytes, device fleets and round policies.

The class deliberately has no ``repro.federated`` imports (callbacks are
duck-typed), keeping :mod:`repro.systems` a leaf package.
"""

from __future__ import annotations

from typing import List, Optional

from .rounds import FleetSimulator, RoundOutcome


class FleetSimCallback:
    """Records ``simulated_seconds``/``stragglers`` on each round record."""

    def __init__(self, simulator: Optional[FleetSimulator] = None) -> None:
        self.simulator = simulator
        self.round_seconds: List[float] = []
        self.total_seconds = 0.0
        self.outcomes: List[RoundOutcome] = []

    def _resolve(self, trainer) -> Optional[FleetSimulator]:
        if self.simulator is not None:
            return self.simulator
        return getattr(trainer, "fleet_sim", None)

    def on_round_end(self, trainer, round_index: int, record) -> None:
        simulator = self._resolve(trainer)
        if simulator is None:
            return
        pending = simulator.pending
        if pending is not None and pending.round_index == round_index:
            outcome = simulator.complete_round(record)
        else:
            outcome = simulator.observe(record)
        record.simulated_seconds = outcome.round_seconds
        record.stragglers = sorted(outcome.stragglers)
        self.outcomes.append(outcome)
        self.round_seconds.append(outcome.round_seconds)
        self.total_seconds += outcome.round_seconds
