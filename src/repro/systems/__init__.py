"""Fleet simulation: deterministic discrete-event systems modelling.

The paper's argument is deployment cost on constrained edge fleets
(~1 MB/s uplinks, compute-limited devices).  This subsystem turns that
into a first-class, *simulated-time* axis for every experiment:

* :mod:`~repro.systems.clock` / :mod:`~repro.systems.events` — a seeded
  event queue (:class:`SimClock`) with stable ``(time, seq)``
  tie-breaking and a drained-event trace, so one seed reproduces one
  timeline bit-for-bit;
* :mod:`~repro.systems.fleet` — :class:`DeviceProfile` hardware classes
  and the :func:`register_fleet` registry (``tiers``/``uniform``/
  ``profile-list``): the single owner of the client→device assignment
  that used to be duplicated across the wall-clock model and the
  availability sampler;
* :mod:`~repro.systems.timeline` — per-client download→compute→upload
  timelines priced from each client's *actual* bytes (Sub-FedAvg mask
  sizes, compressed updates) and conv FLOPs;
* :mod:`~repro.systems.rounds` — the :func:`register_round_policy`
  registry (``synchronous``/``deadline``/``async-buffer``) and the
  :class:`FleetSimulator` engine: plan a round at its start (busy
  clients, deliveries with staleness weights, predicted stragglers),
  complete it at its end from recorded bytes, or replay a finished
  history post hoc;
* :mod:`~repro.systems.config` — the serializable ``systems`` section of
  a :class:`~repro.federated.builder.FederationConfig`;
* :mod:`~repro.systems.callback` / :mod:`~repro.systems.report` — the
  :class:`FleetSimCallback` run integration and time-to-accuracy
  reporting over simulated seconds.

Quick taste — synchronous vs deadline semantics on the same history::

    from repro.systems import (
        AsyncBufferPolicy, DeadlinePolicy, Fleet, FleetSimulator,
        SynchronousPolicy, DEVICE_PROFILES,
    )
    fleet = Fleet(cycle=(DEVICE_PROFILES["edge-phone"],
                         DEVICE_PROFILES["raspberry-pi"]))
    sync = FleetSimulator(fleet, SynchronousPolicy(),
                          flops_per_example=1e6, examples_per_round=100)
    print(sync.simulate(history).total_seconds)          # wait for stragglers
    rushed = FleetSimulator(fleet, DeadlinePolicy(1.0),
                            flops_per_example=1e6, examples_per_round=100)
    print(rushed.simulate(history).total_seconds)        # close at 1 s

The package is a leaf: it imports nothing from :mod:`repro.federated`, so
the federated layer (builder, trainers, callbacks) can build on it
without cycles.
"""

from .clock import SimClock
from .events import (
    COMPUTE_DONE,
    DOWNLOAD_DONE,
    EVENT_KINDS,
    ROUND_CLOSED,
    UPLOAD_DONE,
    Event,
)
from .fleet import (
    DEVICE_PROFILES,
    EDGE_PHONE,
    RASPBERRY_PI,
    WORKSTATION,
    DeviceProfile,
    Fleet,
    FleetSpec,
    HierarchicalFleet,
    available_fleets,
    build_fleet,
    fleet_specs,
    get_fleet,
    register_fleet,
    resolve_profiles,
    unregister_fleet,
)
from .timeline import (
    ClientTimeline,
    RoundTimelines,
    TrafficMap,
    build_round_timelines,
    build_timelines,
    phase_seconds,
)
from .rounds import (
    AsyncBufferPolicy,
    DeadlinePolicy,
    Delivery,
    FleetSimReport,
    FleetSimulator,
    LazyDeliveries,
    PolicyDecision,
    RoundOutcome,
    RoundPlan,
    RoundPolicy,
    RoundPolicySpec,
    SynchronousPolicy,
    VectorDecision,
    available_round_policies,
    build_round_policy,
    get_round_policy,
    register_round_policy,
    round_policy_specs,
)
from .config import SystemsConfig
from .callback import FleetSimCallback
from .report import (
    compare_simulated_time_to_accuracy,
    record_seconds,
    simulated_time_curve,
    simulated_time_to_accuracy,
    total_simulated_seconds,
    total_stragglers,
)

__all__ = [
    "SimClock",
    "Event",
    "EVENT_KINDS",
    "DOWNLOAD_DONE",
    "COMPUTE_DONE",
    "UPLOAD_DONE",
    "ROUND_CLOSED",
    "DeviceProfile",
    "DEVICE_PROFILES",
    "EDGE_PHONE",
    "RASPBERRY_PI",
    "WORKSTATION",
    "Fleet",
    "HierarchicalFleet",
    "FleetSpec",
    "register_fleet",
    "unregister_fleet",
    "get_fleet",
    "available_fleets",
    "fleet_specs",
    "build_fleet",
    "resolve_profiles",
    "ClientTimeline",
    "RoundTimelines",
    "TrafficMap",
    "phase_seconds",
    "build_timelines",
    "build_round_timelines",
    "RoundPolicy",
    "RoundPolicySpec",
    "SynchronousPolicy",
    "DeadlinePolicy",
    "AsyncBufferPolicy",
    "PolicyDecision",
    "VectorDecision",
    "Delivery",
    "LazyDeliveries",
    "RoundPlan",
    "RoundOutcome",
    "FleetSimReport",
    "FleetSimulator",
    "register_round_policy",
    "get_round_policy",
    "available_round_policies",
    "round_policy_specs",
    "build_round_policy",
    "SystemsConfig",
    "FleetSimCallback",
    "record_seconds",
    "simulated_time_curve",
    "simulated_time_to_accuracy",
    "compare_simulated_time_to_accuracy",
    "total_simulated_seconds",
    "total_stragglers",
]
