"""Time-to-accuracy reporting over simulated fleet time.

The deployment-relevant question is not "how many rounds to X% accuracy"
but "how many *seconds* on the target fleet".  These helpers read the
``simulated_seconds`` the fleet simulator stamped on each round record
(falling back to the legacy ``wall_clock_seconds`` annotation when a run
used :class:`~repro.federated.callbacks.WallClockCallback` instead), so
every existing figure/table driver can report a time axis without caring
which engine priced the rounds.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


def record_seconds(record) -> Optional[float]:
    """The simulated duration of one round record (None when unpriced)."""
    if record.simulated_seconds is not None:
        return record.simulated_seconds
    return record.wall_clock_seconds


def simulated_time_curve(history) -> List[Tuple[float, float]]:
    """(cumulative simulated seconds, mean accuracy) pairs of one history.

    Rounds without a duration advance the accuracy axis but not the time
    axis; rounds without an accuracy measurement are skipped, matching
    :meth:`History.accuracy_curve <repro.federated.metrics.History.accuracy_curve>`.
    """
    curve: List[Tuple[float, float]] = []
    elapsed = 0.0
    for record in history.rounds:
        seconds = record_seconds(record)
        if seconds is not None:
            elapsed += seconds
        if record.mean_accuracy is not None:
            curve.append((elapsed, record.mean_accuracy))
    return curve


def simulated_time_to_accuracy(history, target: float) -> Optional[float]:
    """Simulated seconds until mean accuracy reaches ``target`` (or None)."""
    for elapsed, accuracy in simulated_time_curve(history):
        if accuracy >= target:
            return elapsed
    return None


def compare_simulated_time_to_accuracy(
    histories: Dict[str, "object"], target: float
) -> Dict[str, Optional[float]]:
    """Per-algorithm simulated seconds-to-target (the Fig-3 time axis)."""
    return {
        name: simulated_time_to_accuracy(history, target)
        for name, history in histories.items()
    }


def total_simulated_seconds(history) -> Optional[float]:
    """Sum of per-round simulated seconds (None when no round is priced)."""
    seconds = [record_seconds(record) for record in history.rounds]
    priced = [value for value in seconds if value is not None]
    if not priced:
        return None
    return float(sum(priced))


def total_stragglers(history) -> int:
    """How many client-rounds missed their close across the whole run."""
    return sum(len(record.stragglers or ()) for record in history.rounds)
