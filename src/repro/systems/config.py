"""The ``systems`` section of a run config: how the fleet behaves in time.

:class:`SystemsConfig` is the serializable knob set of the fleet
simulator, attached to a
:class:`~repro.federated.builder.FederationConfig` as its optional
``systems`` section.  A config without one (every pre-systems payload)
runs exactly as before — no simulator is built, histories and
``stable_hash`` values are unchanged.

The pricing fields default to 0.0 = *derive from the run*: the builder
fills ``flops_per_example`` from the model's conv FLOPs (the paper's
§4.2.3 convention, via :mod:`repro.federated.accounting`) and
``examples_per_round`` from the local epoch budget times the per-client
shard size.  Pin them explicitly to compare policies on a fixed cost
model across datasets (the ``fleet`` sweep grid does).
"""

from __future__ import annotations

from dataclasses import dataclass

from .rounds import build_round_policy


@dataclass(frozen=True)
class SystemsConfig:
    """Declarative description of the systems model of one run."""

    round_policy: str = "synchronous"
    deadline_seconds: float = 0.0  # deadline policy: the round budget T (> 0)
    buffer_size: int = 0  # async-buffer K (0 = half the pending arrivals)
    staleness_exponent: float = 0.5  # async weight = (1+staleness)^-exponent
    server_overhead_seconds: float = 0.5
    flops_per_example: float = 0.0  # 0 = derive from the model (conv FLOPs)
    examples_per_round: float = 0.0  # 0 = derive from epochs × shard size
    jitter: float = 0.0  # per-(round, client) duration jitter, in [0, 1)
    pricing: str = "vector"  # timeline pricing: "vector" (batch) | "scalar"

    def __post_init__(self) -> None:
        if self.pricing not in ("vector", "scalar"):
            raise ValueError(
                f"pricing must be 'vector' or 'scalar', got {self.pricing!r}"
            )
        if self.deadline_seconds < 0:
            raise ValueError(
                f"deadline_seconds must be >= 0, got {self.deadline_seconds}"
            )
        if self.server_overhead_seconds < 0:
            raise ValueError(
                "server_overhead_seconds must be >= 0, "
                f"got {self.server_overhead_seconds}"
            )
        if self.flops_per_example < 0 or self.examples_per_round < 0:
            raise ValueError(
                "flops_per_example and examples_per_round must be >= 0 "
                "(0 means derive from the run)"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")
        # Validate the policy name and its parameters where the config is
        # written, not three cells into a sweep: constructing the policy
        # runs the same checks the builder will.
        build_round_policy(self)
