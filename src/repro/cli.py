"""Command-line interface for running reproductions.

Usage::

    python -m repro run    --dataset mnist --algorithm sub-fedavg-un --preset smoke
    python -m repro table1 --dataset mnist --preset smoke
    python -m repro table2 --dataset cifar10
    python -m repro fig2   --dataset mnist --preset smoke
    python -m repro fig3   --dataset mnist --preset smoke
    python -m repro ablate --which aggregation --dataset mnist
    python -m repro report --dataset mnist --out report.md

Each subcommand prints the corresponding paper artifact to stdout and
optionally saves the raw run history (``--save history.json``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .experiments import (
    ascii_plot,
    fig2_series,
    fig3_series,
    format_table1,
    format_table2,
    rounds_to_target,
    run_algorithm,
    run_convergence,
    run_sparsity_sweep,
    run_table1,
    run_table2,
)
from .federated import ALGORITHMS
from .utils.serialization import save_history

DATASETS = ("mnist", "emnist", "cifar10", "cifar100")
PRESETS = ("smoke", "small", "paper")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Sub-FedAvg reproduction driver"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser, preset: bool = True) -> None:
        p.add_argument("--dataset", choices=DATASETS, default="mnist")
        p.add_argument("--seed", type=int, default=0)
        if preset:
            p.add_argument("--preset", choices=PRESETS, default="smoke")

    run_cmd = sub.add_parser("run", help="run one algorithm end to end")
    common(run_cmd)
    run_cmd.add_argument("--algorithm", choices=ALGORITHMS, default="sub-fedavg-un")
    run_cmd.add_argument("--save", help="write the run history JSON here")

    table1 = sub.add_parser("table1", help="regenerate Table 1")
    common(table1)

    table2 = sub.add_parser("table2", help="regenerate Table 2 (analytic)")
    common(table2, preset=False)

    fig2 = sub.add_parser("fig2", help="accuracy vs pruning-percentage sweep")
    common(fig2)

    fig3 = sub.add_parser("fig3", help="accuracy vs communication rounds")
    common(fig3)
    fig3.add_argument("--target", type=float, default=0.8, help="accuracy target")

    ablate = sub.add_parser("ablate", help="run a DESIGN.md §7 ablation")
    common(ablate)
    ablate.add_argument(
        "--which",
        choices=("aggregation", "gate", "heterogeneity", "step"),
        default="aggregation",
    )

    report = sub.add_parser("report", help="full reproduction report to markdown")
    common(report)
    report.add_argument("--out", default="report.md", help="output markdown path")

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "run":
        history = run_algorithm(
            args.dataset, args.algorithm, preset=args.preset, seed=args.seed
        )
        print(f"{args.algorithm} on {args.dataset} ({args.preset}):")
        print(f"  final personalized accuracy: {history.final_accuracy:.4f}")
        print(f"  total communication: {history.total_communication_gb:.4f} GB")
        if args.save:
            save_history(args.save, history)
            print(f"  history saved to {args.save}")
        return 0

    if args.command == "table1":
        rows = run_table1(args.dataset, preset=args.preset, seed=args.seed)
        print(format_table1(f"{args.dataset} ({args.preset})", rows))
        return 0

    if args.command == "table2":
        print(format_table2(args.dataset, run_table2(args.dataset, seed=args.seed)))
        return 0

    if args.command == "fig2":
        points = run_sparsity_sweep(args.dataset, preset=args.preset, seed=args.seed)
        curve = fig2_series(points)
        print(f"Figure 2 — {args.dataset}: mean accuracy vs mean pruning %")
        for sparsity, accuracy in curve:
            print(f"  sparsity {sparsity:.2f} -> accuracy {accuracy:.3f}")
        print(ascii_plot(curve))
        return 0

    if args.command == "fig3":
        histories = run_convergence(args.dataset, preset=args.preset, seed=args.seed)
        print(f"Figure 3 — {args.dataset}: accuracy per round")
        for name, curve in fig3_series(histories).items():
            formatted = ", ".join(f"{accuracy:.3f}" for _, accuracy in curve)
            print(f"  {name:14s}: {formatted}")
        print(f"rounds to {args.target:.0%}: {rounds_to_target(histories, args.target)}")
        return 0

    if args.command == "ablate":
        return _run_ablation(args)

    if args.command == "report":
        from .experiments.report import write_report

        write_report(args.out, datasets=(args.dataset,), preset=args.preset, seed=args.seed)
        print(f"report written to {args.out}")
        return 0

    return 1  # unreachable: argparse enforces the choices


def _run_ablation(args) -> int:
    from .experiments.ablations import (
        ablate_aggregation,
        ablate_heterogeneity,
        ablate_mask_distance_gate,
        ablate_pruning_step,
    )

    if args.which == "heterogeneity":
        table = ablate_heterogeneity(args.dataset, preset=args.preset, seed=args.seed)
        print("alpha | sub-fedavg-un | fedavg")
        for alpha, cell in table.items():
            print(
                f"{alpha:>5} | {cell['sub-fedavg-un']:>13.3f} | {cell['fedavg']:.3f}"
            )
        return 0

    runner = {
        "aggregation": ablate_aggregation,
        "gate": ablate_mask_distance_gate,
        "step": ablate_pruning_step,
    }[args.which]
    results = runner(args.dataset, preset=args.preset, seed=args.seed)
    print("variant | accuracy | sparsity | comm (GB)")
    for result in results:
        print(
            f"{result.variant} | {result.accuracy:.3f} | "
            f"{result.sparsity:.2f} | {result.communication_gb:.4f}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
