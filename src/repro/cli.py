"""Command-line interface for running reproductions.

Usage::

    python -m repro list
    python -m repro run    --dataset mnist --algorithm sub-fedavg-un --preset smoke
    python -m repro run    --config run.json
    python -m repro run    --backend thread --workers 4
    python -m repro run    --partition dirichlet --set data.dirichlet_alpha=0.1
    python -m repro run    --sampler availability --set scenario.dropout=0.2
    python -m repro run    --runtime numpy --set compute.fusion=false
    python -m repro run    --round-policy async-buffer --set systems.jitter=0.1
    python -m repro run    --set scenario.fleet=hierarchical --set scenario.regions=16 \\
                           --set scenario.region_uplink_bytes_per_second=5e6
    python -m repro sweep  --grid smoke --jobs 2 --out sweep-results
    python -m repro sweep  --grid ablate-partition --dataset mnist
    python -m repro sweep  --grid table1 --dataset mnist --resume --export-json sweep.json
    python -m repro table1 --dataset mnist --preset smoke
    python -m repro table2 --dataset cifar10
    python -m repro fig2   --dataset mnist --preset smoke
    python -m repro fig3   --dataset mnist --preset smoke
    python -m repro ablate --which aggregation --dataset mnist
    python -m repro report --dataset mnist --out report.md
    python -m repro serve  --dataset mnist --algorithm fedavg --port 8731
    python -m repro client --url http://127.0.0.1:8731 --clients 0,1,2
    python -m repro loadtest --clients 1000 --rounds 2 --out BENCH_serving.json

Algorithm, dataset, partitioner, sampler and preset choices are resolved
from the registries (``repro.federated.registry``, ``repro.data.registry``,
``repro.federated.scenario``, ``repro.experiments.presets``), so a newly
registered plugin appears here without CLI edits.  ``run`` accepts either
flags or a serialized :class:`~repro.federated.builder.FederationConfig`
(``--config run.json``; write one with ``--export-config``), plus scenario
flags (``--partition dirichlet``, ``--sampler availability``) and generic
nested-section overrides (``--set data.dirichlet_alpha=0.1 --set
scenario.dropout=0.2``).  Each subcommand prints the corresponding paper
artifact to stdout and optionally saves the raw run history
(``--save history.json``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import replace
from pathlib import Path
from typing import List, Optional

from .data.registry import (
    available_partitioners,
    dataset_entries,
    partitioner_specs,
)
from .data.synthetic import SPECS
from .experiments import (
    PRESETS,
    ResultStore,
    SweepRunner,
    aggregation_spec,
    ascii_plot,
    export_results,
    federation_config,
    fig2_spec,
    fig3_spec,
    fleet_spec,
    gate_spec,
    get_preset,
    fig2_series,
    fig3_series,
    format_table1,
    format_table2,
    heterogeneity_spec,
    partition_override,
    partition_spec,
    pruning_step_spec,
    sampler_override,
    rounds_to_target,
    run_convergence,
    run_sparsity_sweep,
    run_table1,
    run_table2,
    seconds_to_target,
    smoke_spec,
    table1_spec,
)
from .engine import available_runtimes, runtime_specs
from .experiments.sweep import SWEEP_EXECUTORS
from .federated import (
    ComputeConfig,
    Federation,
    FederationConfig,
    ProgressLogger,
    ScenarioConfig,
    SystemsConfig,
    available_algorithms,
    available_backends,
    available_fleets,
    available_round_policies,
    available_samplers,
    fleet_specs,
    round_policy_specs,
    sampler_specs,
    trainer_specs,
)
from .utils.serialization import save_history


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Sub-FedAvg reproduction driver"
    )
    sub = parser.add_subparsers(dest="command", required=True)
    datasets = tuple(SPECS)
    presets = tuple(PRESETS)

    def common(p: argparse.ArgumentParser, preset: bool = True) -> None:
        p.add_argument("--dataset", choices=datasets, default="mnist")
        p.add_argument("--seed", type=int, default=0)
        if preset:
            p.add_argument("--preset", choices=presets, default="smoke")

    def scenario_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--partition",
            choices=available_partitioners(),
            default=None,
            help="partition strategy (default: the config's, i.e. shard)",
        )
        p.add_argument(
            "--sampler",
            choices=available_samplers(),
            default=None,
            help="client-participation model (default: the config's, i.e. uniform)",
        )
        p.add_argument(
            "--fleet",
            choices=available_fleets(),
            default=None,
            help="client-device fleet shape (default: the config's, i.e. tiers)",
        )
        p.add_argument(
            "--round-policy",
            choices=available_round_policies(),
            default=None,
            help="enable fleet simulation under this round-completion policy",
        )
        p.add_argument(
            "--deadline",
            type=float,
            default=None,
            help="round budget in simulated seconds (implies "
            "--round-policy deadline)",
        )
        p.add_argument(
            "--runtime",
            choices=("eager",) + available_runtimes(),
            default=None,
            help="tensor compute engine: 'eager' (the default historical "
            "engine) or a lazy-engine runtime from the registry",
        )

    list_cmd = sub.add_parser(
        "list",
        help="show registered algorithms, datasets, partitioners, "
        "samplers, runtimes and presets",
    )
    list_cmd.set_defaults(func=_cmd_list)

    run_cmd = sub.add_parser("run", help="run one algorithm end to end")
    common(run_cmd)
    run_cmd.add_argument(
        "--algorithm", choices=available_algorithms(), default="sub-fedavg-un"
    )
    run_cmd.add_argument(
        "--config", help="run a serialized FederationConfig JSON file "
        "(overrides --dataset/--algorithm/--preset/--seed)"
    )
    run_cmd.add_argument(
        "--export-config",
        help="write the resolved FederationConfig JSON here and exit "
        "without training (replay it later with --config)",
    )
    run_cmd.add_argument("--save", help="write the run history JSON here")
    run_cmd.add_argument(
        "--progress", action="store_true", help="print a per-round progress line"
    )
    run_cmd.add_argument(
        "--backend",
        choices=available_backends(),
        default=None,
        help="client-execution backend (default: the config's, i.e. serial)",
    )
    run_cmd.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker count for thread/process backends (default: cpu count)",
    )
    scenario_flags(run_cmd)
    run_cmd.add_argument(
        "--set",
        dest="set_overrides",
        action="append",
        default=[],
        metavar="SECTION.FIELD=VALUE",
        help="override any config field, including the nested data.*, "
        "scenario.*, systems.* and compute.* sections "
        "(e.g. --set data.dirichlet_alpha=0.1 --set scenario.dropout=0.2 "
        "--set scenario.fleet=hierarchical --set scenario.regions=16 "
        "--set systems.round_policy=async-buffer --set systems.jitter=0.1 "
        "--set rounds=10); values are parsed as JSON, falling back to "
        "strings",
    )
    run_cmd.set_defaults(func=_cmd_run)

    sweep = sub.add_parser(
        "sweep", help="run a grid of experiment cells in parallel, resumably"
    )
    common(sweep)
    scenario_flags(sweep)
    sweep.add_argument(
        "--grid",
        choices=tuple(SWEEP_GRIDS),
        default="smoke",
        help="which declarative grid to expand and run",
    )
    sweep.add_argument(
        "--jobs",
        type=int,
        default=0,
        help="concurrent cells (0 = one per CPU core)",
    )
    sweep.add_argument(
        "--executor",
        choices=SWEEP_EXECUTORS,
        default=None,
        help="how cells run (default: process where fork exists, else thread)",
    )
    sweep.add_argument(
        "--out",
        default="sweep-results",
        help="result-store directory (one JSON per cell, keyed by config hash)",
    )
    sweep.add_argument(
        "--resume",
        action="store_true",
        help="reuse cells already in the store instead of recomputing them",
    )
    sweep.add_argument(
        "--export-json",
        help="also write one merged JSON document of every cell result here",
    )
    sweep.set_defaults(func=_cmd_sweep)

    table1 = sub.add_parser("table1", help="regenerate Table 1")
    common(table1)
    table1.set_defaults(func=_cmd_table1)

    table2 = sub.add_parser("table2", help="regenerate Table 2 (analytic)")
    common(table2, preset=False)
    table2.set_defaults(func=_cmd_table2)

    fig2 = sub.add_parser("fig2", help="accuracy vs pruning-percentage sweep")
    common(fig2)
    fig2.set_defaults(func=_cmd_fig2)

    fig3 = sub.add_parser("fig3", help="accuracy vs communication rounds")
    common(fig3)
    fig3.add_argument("--target", type=float, default=0.8, help="accuracy target")
    fig3.set_defaults(func=_cmd_fig3)

    ablate = sub.add_parser("ablate", help="run a DESIGN.md §7 ablation")
    common(ablate)
    ablate.add_argument(
        "--which",
        choices=("aggregation", "gate", "heterogeneity", "partition", "step"),
        default="aggregation",
    )
    ablate.set_defaults(func=_run_ablation)

    report = sub.add_parser("report", help="full reproduction report to markdown")
    common(report)
    report.add_argument("--out", default="report.md", help="output markdown path")
    report.set_defaults(func=_cmd_report)

    serve = sub.add_parser(
        "serve", help="serve one run to wire-attached clients over HTTP"
    )
    common(serve)
    serve.add_argument(
        "--algorithm", choices=available_algorithms(), default="fedavg"
    )
    serve.add_argument(
        "--config", help="serve a serialized FederationConfig JSON file"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8731, help="0 binds an ephemeral port"
    )
    serve.add_argument(
        "--lease-seconds",
        type=float,
        default=60.0,
        help="task lease before a disconnected client's work is re-queued",
    )
    serve.add_argument(
        "--time-scale",
        type=float,
        default=0.0,
        help="simulated seconds per real second of dispatch pacing "
        "(0 = dispatch immediately; needs a systems section)",
    )
    serve.add_argument("--save", help="write the run history JSON here")
    serve.add_argument(
        "--set",
        dest="set_overrides",
        action="append",
        default=[],
        metavar="SECTION.FIELD=VALUE",
        help="override any config field (same syntax as `repro run --set`)",
    )
    serve.set_defaults(func=_cmd_serve)

    client = sub.add_parser(
        "client", help="attach local training clients to a federation server"
    )
    client.add_argument("--url", default="http://127.0.0.1:8731")
    client.add_argument(
        "--clients",
        default=None,
        help="comma-separated client indices to serve (default: any)",
    )
    client.add_argument(
        "--poll-seconds", type=float, default=5.0, help="long-poll duration"
    )
    client.set_defaults(func=_cmd_client)

    loadtest = sub.add_parser(
        "loadtest",
        help="stress the serving path with many concurrent fake clients",
    )
    loadtest.add_argument("--clients", type=int, default=1000)
    loadtest.add_argument("--rounds", type=int, default=2)
    loadtest.add_argument("--seed", type=int, default=0)
    loadtest.add_argument(
        "--poll-seconds", type=float, default=10.0, help="long-poll duration"
    )
    loadtest.add_argument(
        "--timeout", type=float, default=600.0, help="abort after this many seconds"
    )
    loadtest.add_argument("--out", help="write the JSON report here")
    loadtest.set_defaults(func=_cmd_loadtest)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


def _cmd_list(args) -> int:
    print("algorithms:")
    for spec in trainer_specs():
        sections = f" (config: {', '.join(spec.config_sections)})" if spec.config_sections else ""
        print(f"  {spec.name:18s} {spec.summary}{sections}")
    print("datasets:")
    for entry in dataset_entries():
        shape = "x".join(str(dim) for dim in entry.spec.shape)
        print(
            f"  {entry.name:18s} {shape}, {entry.spec.num_classes} classes"
            f" — {entry.summary}"
        )
    print("partitioners:")
    for spec in partitioner_specs():
        fields = f" (config: {', '.join(sorted(set(spec.params.values())))})" if spec.params else ""
        print(f"  {spec.name:18s} {spec.summary}{fields}")
    print("samplers:")
    for spec in sampler_specs():
        print(f"  {spec.name:18s} {spec.summary}")
    print("fleets:")
    for spec in fleet_specs():
        print(f"  {spec.name:18s} [{spec.tiers}] {spec.summary}")
    print("round-policies:")
    for spec in round_policy_specs():
        print(f"  {spec.name:18s} {spec.summary}")
    print("runtimes:")
    for spec in runtime_specs():
        print(f"  {spec.name:18s} {spec.summary}")
    print("presets:")
    for preset in PRESETS.values():
        print(
            f"  {preset.name:18s} {preset.num_clients} clients, "
            f"{preset.rounds} rounds, C={preset.sample_fraction}, "
            f"{preset.n_train}/{preset.n_test} train/test examples"
        )
    return 0


def _resolve_run_config(args) -> FederationConfig:
    if args.config:
        config = FederationConfig.from_json(Path(args.config).read_text())
    else:
        config = federation_config(
            args.dataset, args.algorithm, get_preset(args.preset), seed=args.seed
        )
    overrides = {}
    if getattr(args, "backend", None) is not None:
        overrides["backend"] = args.backend
    if getattr(args, "workers", None) is not None:
        overrides["workers"] = args.workers
    if getattr(args, "partition", None) is not None:
        overrides["data"] = replace(config.data, partition=args.partition)
    scenario_changes = {}
    if getattr(args, "sampler", None) is not None:
        scenario_changes["sampler"] = args.sampler
    if getattr(args, "fleet", None) is not None:
        scenario_changes["fleet"] = args.fleet
    if scenario_changes:
        overrides["scenario"] = replace(config.scenario, **scenario_changes)
    systems = _systems_from_flags(args, config.systems)
    if systems is not None:
        overrides["systems"] = systems
    compute = _compute_from_flags(args, config.compute)
    if compute is not None:
        overrides["compute"] = compute
    if overrides:
        config = replace(config, **overrides)
    for assignment in getattr(args, "set_overrides", []):
        config = _apply_set_override(config, assignment)
    return config


def _systems_from_flags(args, current: SystemsConfig | None) -> SystemsConfig | None:
    """Fold ``--round-policy``/``--deadline`` into a ``systems`` section.

    ``--deadline`` alone implies the deadline policy; either flag enables
    fleet simulation on a config that had none.  Returns None when the
    flags leave the config's systems section untouched.
    """
    policy = getattr(args, "round_policy", None)
    deadline = getattr(args, "deadline", None)
    if policy is None and deadline is None:
        return None
    base = current if current is not None else SystemsConfig()
    changes = {}
    if deadline is not None:
        changes["deadline_seconds"] = deadline
        policy = policy or "deadline"
    if policy is not None:
        changes["round_policy"] = policy
    try:
        return replace(base, **changes)
    except (KeyError, ValueError) as error:
        # e.g. --round-policy deadline without --deadline: surface the
        # config validation message as a clean CLI error.
        raise SystemExit(f"--round-policy/--deadline: {error}") from None


def _compute_from_flags(args, current: ComputeConfig) -> ComputeConfig | None:
    """Fold ``--runtime`` into a ``compute`` section.

    ``--runtime eager`` forces the historical eager engine (even on a
    config whose ``compute`` section selects lazy); any other runtime name
    selects the lazy engine realizing through that backend.  Returns None
    when the flag was not given.
    """
    runtime = getattr(args, "runtime", None)
    if runtime is None:
        return None
    if runtime == "eager":
        return replace(current, engine="eager")
    return replace(current, engine="lazy", runtime=runtime)


def _apply_set_override(config: FederationConfig, assignment: str) -> FederationConfig:
    """Apply one ``--set section.field=value`` (or ``field=value``) override.

    Values are parsed as JSON (``0.1``, ``true``, ``[1, 2]``) with a
    plain-string fallback, so ``--set data.partition=dirichlet`` needs no
    quoting.
    """
    path, sep, raw = assignment.partition("=")
    if not sep:
        raise SystemExit(f"--set expects SECTION.FIELD=VALUE, got {assignment!r}")
    try:
        value = json.loads(raw)
    except ValueError:
        value = raw
    parts = path.split(".")
    try:
        if len(parts) == 1:
            return replace(config, **{parts[0]: value})
        if len(parts) == 2:
            section, fld = parts
            nested = getattr(config, section, None)
            if nested is None:
                raise SystemExit(
                    f"--set cannot reach {path!r}: section {section!r} is unset"
                )
            return replace(config, **{section: replace(nested, **{fld: value})})
    except (TypeError, ValueError, KeyError) as error:
        # Bad field names (TypeError) and rejected values (ValueError /
        # KeyError from config validation) both get the clean CLI error.
        raise SystemExit(f"--set {assignment!r}: {error}") from None
    raise SystemExit(f"--set path {path!r} nests too deep (one dot maximum)")


def _cmd_run(args) -> int:
    config = _resolve_run_config(args)
    if args.export_config:
        Path(args.export_config).write_text(config.to_json())
        print(f"config written to {args.export_config}")
        return 0  # export is a preparation step, not a run
    callbacks = [ProgressLogger()] if args.progress else None
    history = Federation.from_config(config).run(callbacks=callbacks)
    print(f"{config.algorithm} on {config.dataset} ({config.num_clients} clients):")
    if config.compute.engine != "eager":
        fusion = "on" if config.compute.fusion else "off"
        print(
            f"  compute engine: {config.compute.engine} "
            f"(runtime={config.compute.runtime}, fusion={fusion})"
        )
    print(f"  final personalized accuracy: {history.final_accuracy:.4f}")
    print(f"  total communication: {history.total_communication_gb:.4f} GB")
    if history.total_simulated_seconds is not None:
        from .systems.report import total_stragglers

        print(
            f"  simulated fleet time: {history.total_simulated_seconds:.1f} s "
            f"({config.systems.round_policy if config.systems else 'wall-clock'} "
            f"policy, {total_stragglers(history)} straggler uploads)"
        )
    if args.save:
        save_history(args.save, history)
        print(f"  history saved to {args.save}")
    return 0


#: Named sweep grids: CLI name -> SweepSpec builder over the parsed args.
SWEEP_GRIDS = {
    "smoke": lambda args: smoke_spec(seed=args.seed),
    "table1": lambda args: table1_spec(args.dataset, preset=args.preset, seed=args.seed),
    "fig2": lambda args: fig2_spec(args.dataset, preset=args.preset, seed=args.seed),
    "fig3": lambda args: fig3_spec(args.dataset, preset=args.preset, seed=args.seed),
    "ablate-aggregation": lambda args: aggregation_spec(
        args.dataset, preset=args.preset, seed=args.seed
    ),
    "ablate-gate": lambda args: gate_spec(
        args.dataset, preset=args.preset, seed=args.seed
    ),
    "ablate-heterogeneity": lambda args: heterogeneity_spec(
        args.dataset, preset=args.preset, seed=args.seed
    ),
    "ablate-partition": lambda args: partition_spec(
        args.dataset, preset=args.preset, seed=args.seed
    ),
    "ablate-step": lambda args: pruning_step_spec(
        args.dataset, preset=args.preset, seed=args.seed
    ),
    "fleet": lambda args: fleet_spec(args.dataset, preset=args.preset, seed=args.seed),
}


def _default_sweep_executor() -> str:
    import multiprocessing

    methods = multiprocessing.get_all_start_methods()
    return "process" if "fork" in methods else "thread"


def _cmd_sweep(args) -> int:
    if args.grid == "smoke" and (args.dataset != "mnist" or args.preset != "smoke"):
        print(
            "note: the smoke grid is fixed (mnist+emnist at the smoke preset); "
            "--dataset/--preset are ignored",
            file=sys.stderr,
        )
    spec = SWEEP_GRIDS[args.grid](args)
    # --partition/--sampler/--fleet/--round-policy re-base every cell of
    # the grid on a different scenario (cells that pin their own override
    # still win).
    base = dict(spec.base)
    if args.partition is not None:
        base.update(partition_override(args.partition))
    if args.sampler is not None:
        base.update(sampler_override(args.sampler))
    if args.fleet is not None:
        scenario = base.get("scenario") or ScenarioConfig()
        base["scenario"] = replace(scenario, fleet=args.fleet)
    systems = _systems_from_flags(args, base.get("systems"))
    if systems is not None:
        base["systems"] = systems
    compute = _compute_from_flags(args, base.get("compute") or ComputeConfig())
    if compute is not None:
        base["compute"] = compute
    spec.base = base
    if args.partition is not None:
        pinned = [
            cell.key
            for cell in spec.expand()
            if cell.config.data.partition != args.partition
        ]
        if pinned:
            print(
                f"note: --partition {args.partition} has no effect on "
                f"{len(pinned)} cell(s) of grid {args.grid!r} that pin "
                f"their own partition (e.g. {pinned[0]})",
                file=sys.stderr,
            )
    if args.sampler is not None:
        pinned = [
            cell.key
            for cell in spec.expand()
            if cell.config.scenario.sampler != args.sampler
        ]
        if pinned:
            print(
                f"note: --sampler {args.sampler} has no effect on "
                f"{len(pinned)} cell(s) of grid {args.grid!r} that pin "
                f"their own scenario (e.g. {pinned[0]})",
                file=sys.stderr,
            )
    executor = args.executor or _default_sweep_executor()
    runner = SweepRunner(
        spec,
        store=ResultStore(args.out),
        jobs=args.jobs,
        executor=executor,
        resume=args.resume,
    )
    result = runner.run()
    for cell_result in result.ordered():
        if cell_result.error is not None:
            status = "FAILED"
        elif cell_result.cached:
            status = "cached"
        else:
            status = f"{cell_result.elapsed_seconds:6.1f}s"
        accuracy = (
            f"acc={cell_result.history.final_accuracy:.4f}"
            if cell_result.ok and cell_result.history.final_accuracy is not None
            else ""
        )
        simulated = ""
        if cell_result.ok:
            seconds = cell_result.history.total_simulated_seconds
            if seconds is not None:
                simulated = f" t={seconds:.1f}s"
        print(f"  [{status:>7s}] {cell_result.key} {accuracy}{simulated}")
    print(
        f"sweep {spec.name!r}: executed {len(result.executed)} cells, "
        f"reused {len(result.reused)} cached, {len(result.failed)} failed "
        f"(jobs={runner.jobs}, executor={executor}, store={args.out})"
    )
    if args.export_json:
        Path(args.export_json).write_text(export_results(result.ordered()))
        print(f"merged results exported to {args.export_json}")
    if result.failed:
        for key, error in result.failed.items():
            print(f"--- {key} ---\n{error}", file=sys.stderr)
        return 1
    return 0


def _cmd_table1(args) -> int:
    rows = run_table1(args.dataset, preset=args.preset, seed=args.seed)
    print(format_table1(f"{args.dataset} ({args.preset})", rows))
    return 0


def _cmd_table2(args) -> int:
    print(format_table2(args.dataset, run_table2(args.dataset, seed=args.seed)))
    return 0


def _cmd_fig2(args) -> int:
    points = run_sparsity_sweep(args.dataset, preset=args.preset, seed=args.seed)
    curve = fig2_series(points)
    print(f"Figure 2 — {args.dataset}: mean accuracy vs mean pruning %")
    for sparsity, accuracy in curve:
        print(f"  sparsity {sparsity:.2f} -> accuracy {accuracy:.3f}")
    print(ascii_plot(curve))
    return 0


def _cmd_fig3(args) -> int:
    histories = run_convergence(args.dataset, preset=args.preset, seed=args.seed)
    print(f"Figure 3 — {args.dataset}: accuracy per round")
    for name, curve in fig3_series(histories).items():
        formatted = ", ".join(f"{accuracy:.3f}" for _, accuracy in curve)
        print(f"  {name:14s}: {formatted}")
    print(f"rounds to {args.target:.0%}: {rounds_to_target(histories, args.target)}")
    times = seconds_to_target(histories, args.target)
    if any(seconds is not None for seconds in times.values()):
        # Only meaningful when rounds carry simulated/wall-clock pricing
        # (a systems-configured run or a FleetSimCallback/WallClockCallback).
        print(f"simulated seconds to {args.target:.0%}: {times}")
    return 0


def _cmd_report(args) -> int:
    from .experiments.report import write_report

    write_report(args.out, datasets=(args.dataset,), preset=args.preset, seed=args.seed)
    print(f"report written to {args.out}")
    return 0


def _run_ablation(args) -> int:
    from .experiments.ablations import (
        ablate_aggregation,
        ablate_heterogeneity,
        ablate_mask_distance_gate,
        ablate_partition,
        ablate_pruning_step,
    )

    if args.which == "heterogeneity":
        table = ablate_heterogeneity(args.dataset, preset=args.preset, seed=args.seed)
        print("alpha | sub-fedavg-un | fedavg")
        for alpha, cell in table.items():
            print(
                f"{alpha:>5} | {cell['sub-fedavg-un']:>13.3f} | {cell['fedavg']:.3f}"
            )
        return 0

    if args.which == "partition":
        table = ablate_partition(args.dataset, preset=args.preset, seed=args.seed)
        print("partition | sub-fedavg-un | fedavg")
        for partition, cell in table.items():
            print(
                f"{partition:>13} | {cell['sub-fedavg-un']:>13.3f} | "
                f"{cell['fedavg']:.3f}"
            )
        return 0

    runner = {
        "aggregation": ablate_aggregation,
        "gate": ablate_mask_distance_gate,
        "step": ablate_pruning_step,
    }[args.which]
    results = runner(args.dataset, preset=args.preset, seed=args.seed)
    print("variant | accuracy | sparsity | comm (GB)")
    for result in results:
        print(
            f"{result.variant} | {result.accuracy:.3f} | "
            f"{result.sparsity:.2f} | {result.communication_gb:.4f}"
        )
    return 0


def _cmd_serve(args) -> int:
    from .serving import FederationServer

    config = _resolve_run_config(args)
    server = FederationServer(
        config,
        host=args.host,
        port=args.port,
        lease_seconds=args.lease_seconds,
        time_scale=args.time_scale,
    ).start()
    print(f"serving {config.algorithm} on {config.dataset} at {server.url}")
    print(
        f"attach clients with: repro client --url {server.url}"
        f" --clients 0,1,...  ({config.num_clients} client indices)"
    )
    try:
        history = server.wait()
        # Give attached clients one long-poll cycle to observe the
        # run-done status before the endpoint disappears.
        time.sleep(2.0)
    except KeyboardInterrupt:
        print("interrupted; stopping server")
        return 130
    finally:
        server.stop()
    print(f"run complete: final accuracy {history.final_accuracy:.4f}")
    if args.save:
        save_history(args.save, history)
        print(f"history written to {args.save}")
    return 0


def _cmd_client(args) -> int:
    from .serving import WireClientRunner

    indices = None
    if args.clients:
        indices = [int(part) for part in args.clients.split(",") if part.strip()]
    runner = WireClientRunner(
        args.url, client_indices=indices, poll_seconds=args.poll_seconds
    )
    served = "any client" if indices is None else f"clients {indices}"
    print(f"attaching to {args.url}, serving {served}")
    completed = runner.run()
    print(f"run complete: {completed} tasks executed")
    return 0


def _cmd_loadtest(args) -> int:
    from .serving.loadtest import run_load_test

    report = run_load_test(
        num_clients=args.clients,
        rounds=args.rounds,
        seed=args.seed,
        poll_seconds=args.poll_seconds,
        timeout=args.timeout,
    )
    payload = report.to_dict()
    print(json.dumps(payload, indent=2))
    if report.failed_clients:
        print(f"WARNING: {report.failed_clients} clients failed", file=sys.stderr)
    if args.out:
        Path(args.out).write_text(json.dumps(payload, indent=2))
        print(f"report written to {args.out}", file=sys.stderr)
    return 1 if report.failed_clients else 0


if __name__ == "__main__":
    sys.exit(main())
