"""Figure reproductions: accuracy-vs-sparsity (Figs 1-2) and convergence (Fig 3).

Figure 1 — per-client test accuracy against the client's achieved pruning
percentage under Sub-FedAvg (Un), iterating 5-10% per pruning event.

Figure 2 — the same sweep averaged over all clients, for CIFAR-10, MNIST
and EMNIST: accuracy rises with moderate sparsity (common parameters
removed) and degrades past ~50% (personal parameters start to go).

Figure 3 — mean personalized accuracy against communication round for
Sub-FedAvg (Un) vs FedAvg / LG-FedAvg / MTL.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..federated import History
from ..pruning import UnstructuredConfig
from .runner import run_algorithm


@dataclass
class SparsitySweepPoint:
    """One sweep cell: a target pruning rate and the resulting accuracies."""

    target_rate: float
    achieved_sparsity: float
    mean_accuracy: float
    per_client_accuracy: Dict[int, float] = field(default_factory=dict)


def run_sparsity_sweep(
    dataset: str,
    targets: Sequence[float] = (0.0, 0.1, 0.3, 0.5, 0.7, 0.9),
    preset: str = "smoke",
    seed: int = 0,
    step: float = 0.1,
) -> List[SparsitySweepPoint]:
    """Figures 1-2 backbone: Sub-FedAvg (Un) across target pruning rates."""
    points: List[SparsitySweepPoint] = []
    for target in targets:
        if target == 0.0:
            # Dense reference = Sub-FedAvg with a never-passing gate.
            config = UnstructuredConfig(target_rate=0.0, step=step, epsilon=float("inf"))
        else:
            config = UnstructuredConfig(target_rate=target, step=step)
        history = run_algorithm(
            dataset, "sub-fedavg-un", preset, seed=seed, unstructured=config
        )
        achieved = history.rounds[-1].mean_sparsity if history.rounds else 0.0
        points.append(
            SparsitySweepPoint(
                target_rate=target,
                achieved_sparsity=achieved,
                mean_accuracy=history.final_accuracy or 0.0,
                per_client_accuracy=dict(history.final_per_client_accuracy),
            )
        )
    return points


def fig1_series(
    points: List[SparsitySweepPoint], client_ids: Sequence[int]
) -> Dict[int, List[Tuple[float, float]]]:
    """Per-client (sparsity, accuracy) curves for the sampled clients."""
    series: Dict[int, List[Tuple[float, float]]] = {cid: [] for cid in client_ids}
    for point in points:
        for cid in client_ids:
            if cid in point.per_client_accuracy:
                series[cid].append(
                    (point.achieved_sparsity, point.per_client_accuracy[cid])
                )
    return series


def fig2_series(points: List[SparsitySweepPoint]) -> List[Tuple[float, float]]:
    """(mean sparsity, mean accuracy) — the Figure 2 curve for one dataset."""
    return [(point.achieved_sparsity, point.mean_accuracy) for point in points]


def run_fig1_trajectory(
    dataset: str = "cifar10",
    preset: str = "smoke",
    seed: int = 0,
    target_rate: float = 0.7,
    step: float = 0.08,
) -> Dict[int, List[Tuple[float, float]]]:
    """Figure 1 in its literal form: per-client in-run pruning trajectories.

    One Sub-FedAvg (Un) run with trajectory tracking: every participating
    client logs (achieved sparsity, test accuracy) after each local update,
    with the paper's 5-10%-per-iteration schedule (``step`` defaults to 8%).
    Returns client id → chronological (sparsity, accuracy) curve.
    """
    from ..federated import Federation
    from .runner import federation_config
    from .presets import get_preset

    config = federation_config(
        dataset,
        "sub-fedavg-un",
        get_preset(preset),
        seed=seed,
        unstructured=UnstructuredConfig(target_rate=target_rate, step=step),
    )
    federation = Federation.from_config(config, track_trajectory=True)
    federation.run()

    curves: Dict[int, List[Tuple[float, float]]] = {}
    for point in federation.trainer.trajectory:
        curves.setdefault(point.client_id, []).append(
            (point.sparsity, point.test_accuracy)
        )
    return curves


def run_convergence(
    dataset: str,
    algorithms: Sequence[str] = ("sub-fedavg-un", "fedavg", "lg-fedavg", "mtl"),
    preset: str = "smoke",
    seed: int = 0,
) -> Dict[str, History]:
    """Figure 3 backbone: per-round accuracy curves for each algorithm."""
    histories: Dict[str, History] = {}
    for algorithm in algorithms:
        histories[algorithm] = run_algorithm(
            dataset, algorithm, preset, seed=seed, eval_every=1
        )
    return histories


def fig3_series(histories: Dict[str, History]) -> Dict[str, List[Tuple[int, float]]]:
    """Algorithm → (round, mean accuracy) series."""
    return {name: history.accuracy_curve() for name, history in histories.items()}


def rounds_to_target(
    histories: Dict[str, History], target_accuracy: float
) -> Dict[str, object]:
    """Rounds each algorithm needed to reach ``target_accuracy`` (None = never).

    Quantifies the paper's §4.2.2 claim of 2-10× fewer rounds.
    """
    return {
        name: history.rounds_to_accuracy(target_accuracy)
        for name, history in histories.items()
    }


def ascii_plot(series: List[Tuple[float, float]], width: int = 50, height: int = 12) -> str:
    """Tiny ASCII line plot for terminal-only environments."""
    if not series:
        return "(empty series)"
    xs = np.array([point[0] for point in series], dtype=float)
    ys = np.array([point[1] for point in series], dtype=float)
    x_min, x_max = xs.min(), xs.max()
    y_min, y_max = ys.min(), ys.max()
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        col = int((x - x_min) / x_span * (width - 1))
        row = height - 1 - int((y - y_min) / y_span * (height - 1))
        grid[row][col] = "*"
    lines = ["".join(row) for row in grid]
    lines.append(f"x: [{x_min:.2f}, {x_max:.2f}]  y: [{y_min:.3f}, {y_max:.3f}]")
    return "\n".join(lines)
