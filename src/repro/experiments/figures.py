"""Figure reproductions: accuracy-vs-sparsity (Figs 1-2) and convergence (Fig 3).

Figure 1 — per-client test accuracy against the client's achieved pruning
percentage under Sub-FedAvg (Un), iterating 5-10% per pruning event.

Figure 2 — the same sweep averaged over all clients, for CIFAR-10, MNIST
and EMNIST: accuracy rises with moderate sparsity (common parameters
removed) and degrades past ~50% (personal parameters start to go).

Figure 3 — mean personalized accuracy against communication round for
Sub-FedAvg (Un) vs FedAvg / LG-FedAvg / MTL.

Each figure's grid is declared as a
:class:`~repro.experiments.sweep.SweepSpec` (:func:`fig2_spec`,
:func:`fig3_spec`) and rendered from sweep results, so the sweeps run in
parallel (``jobs=``/``executor=``) and resume from a result store.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..federated import History
from ..pruning import UnstructuredConfig
from ..systems.report import (
    compare_simulated_time_to_accuracy,
    simulated_time_curve,
)
from .sweep import ResultStore, SweepSpec, Variant, run_sweep


#: Mask distances are normalized to [0, 1], so a gate of 2.0 can never
#: pass — the dense-reference "never prune" config in a finite form that
#: stays strict-JSON portable (``Infinity`` is not valid RFC 8259 JSON,
#: and the result store / CI artifact must parse outside Python).
DENSE_GATE_EPSILON = 2.0


@dataclass
class SparsitySweepPoint:
    """One sweep cell: a target pruning rate and the resulting accuracies."""

    target_rate: float
    achieved_sparsity: float
    mean_accuracy: float
    per_client_accuracy: Dict[int, float] = field(default_factory=dict)


def fig2_spec(
    dataset: str,
    targets: Sequence[float] = (0.0, 0.1, 0.3, 0.5, 0.7, 0.9),
    preset: str = "smoke",
    seed: int = 0,
    step: float = 0.1,
) -> SweepSpec:
    """Declare the Figures 1-2 target-rate grid as a sweep."""
    variants = []
    for target in targets:
        if target == 0.0:
            # Dense reference = Sub-FedAvg with a never-passing gate.
            config = UnstructuredConfig(
                target_rate=0.0, step=step, epsilon=DENSE_GATE_EPSILON
            )
        else:
            config = UnstructuredConfig(target_rate=target, step=step)
        variants.append(
            Variant(
                label=f"sub-fedavg-un@{int(target * 100)}",
                algorithm="sub-fedavg-un",
                unstructured=config,
                tags={"target_rate": target},
            )
        )
    return SweepSpec(
        name="fig2",
        datasets=(dataset,),
        algorithms=variants,
        seeds=(seed,),
        preset=preset,
    )


def run_sparsity_sweep(
    dataset: str,
    targets: Sequence[float] = (0.0, 0.1, 0.3, 0.5, 0.7, 0.9),
    preset: str = "smoke",
    seed: int = 0,
    step: float = 0.1,
    jobs: int = 1,
    executor: str = "serial",
    store: Optional[ResultStore] = None,
) -> List[SparsitySweepPoint]:
    """Figures 1-2 backbone: Sub-FedAvg (Un) across target pruning rates."""
    spec = fig2_spec(dataset, targets=targets, preset=preset, seed=seed, step=step)
    sweep = run_sweep(spec, store=store, jobs=jobs, executor=executor)
    sweep.raise_failures()
    points: List[SparsitySweepPoint] = []
    for result in sweep.ordered():
        history = result.history
        achieved = history.rounds[-1].mean_sparsity if history.rounds else 0.0
        points.append(
            SparsitySweepPoint(
                target_rate=result.tags["target_rate"],
                achieved_sparsity=achieved,
                mean_accuracy=history.final_accuracy or 0.0,
                per_client_accuracy=dict(history.final_per_client_accuracy),
            )
        )
    return points


def fig1_series(
    points: List[SparsitySweepPoint], client_ids: Sequence[int]
) -> Dict[int, List[Tuple[float, float]]]:
    """Per-client (sparsity, accuracy) curves for the sampled clients."""
    series: Dict[int, List[Tuple[float, float]]] = {cid: [] for cid in client_ids}
    for point in points:
        for cid in client_ids:
            if cid in point.per_client_accuracy:
                series[cid].append(
                    (point.achieved_sparsity, point.per_client_accuracy[cid])
                )
    return series


def fig2_series(points: List[SparsitySweepPoint]) -> List[Tuple[float, float]]:
    """(mean sparsity, mean accuracy) — the Figure 2 curve for one dataset."""
    return [(point.achieved_sparsity, point.mean_accuracy) for point in points]


def fig1_spec(
    dataset: str = "cifar10",
    preset: str = "smoke",
    seed: int = 0,
    target_rate: float = 0.7,
    step: float = 0.08,
) -> SweepSpec:
    """Declare the Figure 1 trajectory run (a single tracked cell)."""
    return SweepSpec(
        name="fig1",
        datasets=(dataset,),
        algorithms=(
            Variant(
                label=f"sub-fedavg-un@{int(target_rate * 100)}",
                algorithm="sub-fedavg-un",
                unstructured=UnstructuredConfig(target_rate=target_rate, step=step),
                trainer_overrides={"track_trajectory": True},
            ),
        ),
        seeds=(seed,),
        preset=preset,
    )


def run_fig1_trajectory(
    dataset: str = "cifar10",
    preset: str = "smoke",
    seed: int = 0,
    target_rate: float = 0.7,
    step: float = 0.08,
    store: Optional[ResultStore] = None,
) -> Dict[int, List[Tuple[float, float]]]:
    """Figure 1 in its literal form: per-client in-run pruning trajectories.

    One Sub-FedAvg (Un) run with trajectory tracking: every participating
    client logs (achieved sparsity, test accuracy) after each local update,
    with the paper's 5-10%-per-iteration schedule (``step`` defaults to 8%).
    Returns client id → chronological (sparsity, accuracy) curve.
    """
    spec = fig1_spec(
        dataset, preset=preset, seed=seed, target_rate=target_rate, step=step
    )
    sweep = run_sweep(spec, store=store)
    sweep.raise_failures()
    (result,) = sweep.ordered()

    curves: Dict[int, List[Tuple[float, float]]] = {}
    for point in result.extras.get("trajectory", []):
        curves.setdefault(point["client_id"], []).append(
            (point["sparsity"], point["test_accuracy"])
        )
    return curves


def fig3_spec(
    dataset: str,
    algorithms: Sequence[str] = ("sub-fedavg-un", "fedavg", "lg-fedavg", "mtl"),
    preset: str = "smoke",
    seed: int = 0,
) -> SweepSpec:
    """Declare the Figure 3 convergence grid (per-round evaluation)."""
    return SweepSpec(
        name="fig3",
        datasets=(dataset,),
        algorithms=tuple(algorithms),
        seeds=(seed,),
        preset=preset,
        base={"eval_every": 1},
    )


def run_convergence(
    dataset: str,
    algorithms: Sequence[str] = ("sub-fedavg-un", "fedavg", "lg-fedavg", "mtl"),
    preset: str = "smoke",
    seed: int = 0,
    jobs: int = 1,
    executor: str = "serial",
    store: Optional[ResultStore] = None,
) -> Dict[str, History]:
    """Figure 3 backbone: per-round accuracy curves for each algorithm."""
    spec = fig3_spec(dataset, algorithms=algorithms, preset=preset, seed=seed)
    sweep = run_sweep(spec, store=store, jobs=jobs, executor=executor)
    sweep.raise_failures()
    return {
        result.tags["variant"]: result.history for result in sweep.ordered()
    }


def fig3_series(histories: Dict[str, History]) -> Dict[str, List[Tuple[int, float]]]:
    """Algorithm → (round, mean accuracy) series."""
    return {name: history.accuracy_curve() for name, history in histories.items()}


def rounds_to_target(
    histories: Dict[str, History], target_accuracy: float
) -> Dict[str, object]:
    """Rounds each algorithm needed to reach ``target_accuracy`` (None = never).

    Quantifies the paper's §4.2.2 claim of 2-10× fewer rounds.
    """
    return {
        name: history.rounds_to_accuracy(target_accuracy)
        for name, history in histories.items()
    }


def fig3_time_series(
    histories: Dict[str, History],
) -> Dict[str, List[Tuple[float, float]]]:
    """Algorithm → (cumulative simulated seconds, mean accuracy) series.

    The Figure-3 curves re-based onto the deployment-relevant time axis:
    rounds priced by the fleet simulator (``simulated_seconds``, stamped
    by a ``systems``-configured run or a
    :class:`~repro.systems.callback.FleetSimCallback`), falling back to
    legacy ``wall_clock_seconds`` annotations.
    """
    return {
        name: simulated_time_curve(history) for name, history in histories.items()
    }


def seconds_to_target(
    histories: Dict[str, History], target_accuracy: float
) -> Dict[str, object]:
    """Simulated seconds each algorithm needed to reach the target.

    The time-axis twin of :func:`rounds_to_target` (a thin alias for
    :func:`repro.systems.report.compare_simulated_time_to_accuracy`):
    under a deadline or async round policy an algorithm can win on
    seconds while losing on rounds (more rounds, but each one far
    cheaper).
    """
    return compare_simulated_time_to_accuracy(histories, target_accuracy)


def ascii_plot(series: List[Tuple[float, float]], width: int = 50, height: int = 12) -> str:
    """Tiny ASCII line plot for terminal-only environments."""
    if not series:
        return "(empty series)"
    xs = np.array([point[0] for point in series], dtype=float)
    ys = np.array([point[1] for point in series], dtype=float)
    x_min, x_max = xs.min(), xs.max()
    y_min, y_max = ys.min(), ys.max()
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        col = int((x - x_min) / x_span * (width - 1))
        row = height - 1 - int((y - y_min) / y_span * (height - 1))
        grid[row][col] = "*"
    lines = ["".join(row) for row in grid]
    lines.append(f"x: [{x_min:.2f}, {x_max:.2f}]  y: [{y_min:.3f}, {y_max:.3f}]")
    return "\n".join(lines)
