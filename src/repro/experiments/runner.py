"""Shared experiment-running machinery."""

from __future__ import annotations

from typing import Optional

from ..federated import Federation, FederationConfig, History, LocalTrainConfig
from ..pruning import StructuredConfig, UnstructuredConfig
from .presets import ScalePreset, get_preset


def federation_config(
    dataset: str,
    algorithm: str,
    preset: ScalePreset,
    seed: int = 0,
    unstructured: Optional[UnstructuredConfig] = None,
    structured: Optional[StructuredConfig] = None,
    eval_every: Optional[int] = None,
    **overrides,
) -> FederationConfig:
    """Translate a scale preset into a full :class:`FederationConfig`.

    ``overrides`` may only name config fields this function does not
    already derive from its arguments — e.g. ``partition=``/``backend=``,
    or whole nested sections (``scenario=ScenarioConfig(...)``, typically
    built with :func:`~repro.experiments.presets.sampler_override` /
    :func:`~repro.experiments.presets.partition_override` so the names are
    registry-validated at grid-declaration time).  Passing a preset-derived
    field raises immediately with the dedicated parameter to use instead —
    previously this surfaced as a bare ``TypeError: got multiple values for
    keyword argument`` deep in the dataclass constructor.
    """
    derived = dict(
        dataset=dataset,
        algorithm=algorithm,
        num_clients=preset.num_clients,
        rounds=preset.rounds,
        sample_fraction=preset.sample_fraction,
        n_train=preset.n_train,
        n_test=preset.n_test,
        seed=seed,
        eval_every=preset.eval_every if eval_every is None else eval_every,
        local=LocalTrainConfig(epochs=preset.local_epochs),
        unstructured=unstructured,
        structured=structured,
    )
    colliding = sorted(set(overrides) & set(derived))
    if colliding:
        raise ValueError(
            f"override(s) {colliding} collide with preset-derived fields; "
            "use the dedicated parameters (dataset/algorithm/seed/"
            "unstructured/structured/eval_every), pick a different preset, "
            "or adjust the result with dataclasses.replace()"
        )
    return FederationConfig(**derived, **overrides)


def run_algorithm(
    dataset: str,
    algorithm: str,
    preset: str = "smoke",
    seed: int = 0,
    unstructured: Optional[UnstructuredConfig] = None,
    structured: Optional[StructuredConfig] = None,
    eval_every: Optional[int] = None,
    callbacks=None,
    **overrides,
) -> History:
    """Run one (dataset, algorithm) cell of the evaluation grid."""
    config = federation_config(
        dataset,
        algorithm,
        get_preset(preset),
        seed=seed,
        unstructured=unstructured,
        structured=structured,
        eval_every=eval_every,
        **overrides,
    )
    return Federation.from_config(config).run(callbacks=callbacks)


def format_table(headers, rows) -> str:
    """Plain-text table with column alignment (paper-style output)."""
    columns = [headers, *[[str(cell) for cell in row] for row in rows]]
    widths = [max(len(row[i]) for row in columns) for i in range(len(headers))]
    lines = []
    header_line = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in columns[1:]:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)
