"""Experiment drivers reproducing every table and figure of the paper.

Every multi-run artifact declares its grid as a
:class:`~repro.experiments.sweep.SweepSpec`; the sweep engine
(:class:`~repro.experiments.sweep.SweepRunner`) executes the cells in
parallel and caches them in a :class:`~repro.experiments.sweep.ResultStore`
for resumable reruns (``python -m repro sweep``).
"""

from .presets import (
    PRESETS,
    ScalePreset,
    get_preset,
    partition_override,
    sampler_override,
)
from .runner import federation_config, format_table, run_algorithm
from .sweep import (
    CellResult,
    ResultStore,
    SweepCell,
    SweepError,
    SweepResult,
    SweepRunner,
    SweepSpec,
    Variant,
    export_results,
    run_sweep,
    smoke_spec,
)
from .table1 import (
    Table1Row,
    format_table1,
    run_table1,
    table1_rows,
    table1_spec,
    table1_variants,
)
from .table2 import Table2Row, format_table2, run_table2, uniform_channel_mask
from .ablations import (
    AblationResult,
    ablate_aggregation,
    ablate_heterogeneity,
    ablate_mask_distance_gate,
    ablate_partition,
    ablate_pruning_step,
    aggregation_spec,
    gate_spec,
    heterogeneity_spec,
    partition_spec,
    pruning_step_spec,
)
from .figures import (
    SparsitySweepPoint,
    ascii_plot,
    fig1_series,
    fig1_spec,
    fig2_series,
    fig2_spec,
    fig3_series,
    fig3_spec,
    rounds_to_target,
    run_convergence,
    run_fig1_trajectory,
    run_sparsity_sweep,
)

__all__ = [
    "PRESETS",
    "ScalePreset",
    "get_preset",
    "partition_override",
    "sampler_override",
    "run_algorithm",
    "federation_config",
    "format_table",
    "CellResult",
    "ResultStore",
    "SweepCell",
    "SweepError",
    "SweepResult",
    "SweepRunner",
    "SweepSpec",
    "Variant",
    "export_results",
    "run_sweep",
    "smoke_spec",
    "Table1Row",
    "run_table1",
    "format_table1",
    "table1_rows",
    "table1_spec",
    "table1_variants",
    "Table2Row",
    "run_table2",
    "format_table2",
    "uniform_channel_mask",
    "SparsitySweepPoint",
    "run_sparsity_sweep",
    "fig1_series",
    "fig1_spec",
    "fig2_series",
    "fig2_spec",
    "fig3_spec",
    "run_convergence",
    "run_fig1_trajectory",
    "fig3_series",
    "rounds_to_target",
    "ascii_plot",
    "AblationResult",
    "ablate_aggregation",
    "ablate_mask_distance_gate",
    "ablate_heterogeneity",
    "ablate_partition",
    "ablate_pruning_step",
    "aggregation_spec",
    "gate_spec",
    "heterogeneity_spec",
    "partition_spec",
    "pruning_step_spec",
]
