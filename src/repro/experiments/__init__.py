"""Experiment drivers reproducing every table and figure of the paper."""

from .presets import PRESETS, ScalePreset, get_preset
from .runner import federation_config, format_table, run_algorithm
from .table1 import Table1Row, format_table1, run_table1
from .table2 import Table2Row, format_table2, run_table2, uniform_channel_mask
from .ablations import (
    AblationResult,
    ablate_aggregation,
    ablate_heterogeneity,
    ablate_mask_distance_gate,
    ablate_pruning_step,
)
from .figures import (
    SparsitySweepPoint,
    ascii_plot,
    fig1_series,
    fig2_series,
    fig3_series,
    rounds_to_target,
    run_convergence,
    run_fig1_trajectory,
    run_sparsity_sweep,
)

__all__ = [
    "PRESETS",
    "ScalePreset",
    "get_preset",
    "run_algorithm",
    "federation_config",
    "format_table",
    "Table1Row",
    "run_table1",
    "format_table1",
    "Table2Row",
    "run_table2",
    "format_table2",
    "uniform_channel_mask",
    "SparsitySweepPoint",
    "run_sparsity_sweep",
    "fig1_series",
    "fig2_series",
    "run_convergence",
    "run_fig1_trajectory",
    "fig3_series",
    "rounds_to_target",
    "ascii_plot",
    "AblationResult",
    "ablate_aggregation",
    "ablate_mask_distance_gate",
    "ablate_heterogeneity",
    "ablate_pruning_step",
]
