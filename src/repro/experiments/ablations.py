"""Ablation studies on Sub-FedAvg's design choices (DESIGN.md §7).

Five ablations, each isolating one mechanism the paper relies on:

* **Aggregation rule** — intersection average vs a naive zero-filling mean.
  Shows why averaging only over keepers matters: zero-filling drags rarely
  kept (i.e. personalized) coordinates toward zero.
* **Mask-distance gate** — the paper's ε-gate vs always-prune.  Measures
  whether gating on first/last-epoch mask drift stabilizes final accuracy.
* **Heterogeneity sweep** — Dirichlet(α) partitions from near-IID to
  pathological.  Sub-FedAvg's advantage over FedAvg should grow as α drops.
* **Pruning-step sensitivity** — per-commit increment r_us from cautious to
  aggressive at a fixed target (the paper iterates 5-10% per event).
* **Partition sweep** — one cell per *registered* partition strategy, so the
  grid automatically widens as partitioners are added (third-party ones
  included): personalization should pay off under the skewed splits and
  wash out under ``iid``.

Scenario axes are declared through the registry-validated helpers in
:mod:`~repro.experiments.presets` (``partition_override``), never as bare
string literals.  Every ablation grid is a
:class:`~repro.experiments.sweep.SweepSpec` executed through the sweep
engine, so cells run in parallel (``jobs=``/``executor=``) and are cached
in a :class:`~repro.experiments.sweep.ResultStore` when one is supplied.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..data.registry import available_partitioners
from ..pruning import UnstructuredConfig
from .presets import partition_override
from .sweep import CellResult, ResultStore, SweepSpec, Variant, run_sweep


@dataclass
class AblationResult:
    """One ablation cell."""

    variant: str
    accuracy: float
    sparsity: float
    communication_gb: float


def _ablation_result(result: CellResult) -> AblationResult:
    history = result.history
    return AblationResult(
        variant=result.tags["variant"],
        accuracy=history.final_accuracy or 0.0,
        sparsity=result.extras.get("mean_unstructured_sparsity", 0.0),
        communication_gb=history.total_communication_gb,
    )


def _run_ablation_spec(
    spec: SweepSpec,
    jobs: int = 1,
    executor: str = "serial",
    store: Optional[ResultStore] = None,
) -> List[AblationResult]:
    sweep = run_sweep(spec, store=store, jobs=jobs, executor=executor)
    sweep.raise_failures()
    return [_ablation_result(result) for result in sweep.ordered()]


def aggregation_spec(
    dataset: str = "mnist", preset: str = "smoke", seed: int = 0
) -> SweepSpec:
    """Intersection average vs naive zero-filling mean, as a sweep grid."""
    pruning = UnstructuredConfig(target_rate=0.5, step=0.2)
    return SweepSpec(
        name="ablate-aggregation",
        datasets=(dataset,),
        algorithms=tuple(
            Variant(
                label=aggregator,
                algorithm="sub-fedavg-un",
                unstructured=pruning,
                trainer_overrides={"aggregator": aggregator},
            )
            for aggregator in ("intersection", "zerofill")
        ),
        seeds=(seed,),
        preset=preset,
    )


def ablate_aggregation(
    dataset: str = "mnist",
    preset: str = "smoke",
    seed: int = 0,
    jobs: int = 1,
    executor: str = "serial",
    store: Optional[ResultStore] = None,
) -> List[AblationResult]:
    """Intersection average vs naive zero-filling mean."""
    spec = aggregation_spec(dataset, preset=preset, seed=seed)
    return _run_ablation_spec(spec, jobs=jobs, executor=executor, store=store)


def gate_spec(
    dataset: str = "mnist", preset: str = "smoke", seed: int = 0
) -> SweepSpec:
    """The ε mask-distance gate vs pruning unconditionally (ε = 0)."""
    return SweepSpec(
        name="ablate-gate",
        datasets=(dataset,),
        algorithms=tuple(
            Variant(
                label=label,
                algorithm="sub-fedavg-un",
                unstructured=UnstructuredConfig(
                    target_rate=0.5, step=0.2, epsilon=epsilon
                ),
            )
            for label, epsilon in (("gated (paper eps)", 1e-4), ("ungated (eps=0)", 0.0))
        ),
        seeds=(seed,),
        preset=preset,
    )


def ablate_mask_distance_gate(
    dataset: str = "mnist",
    preset: str = "smoke",
    seed: int = 0,
    jobs: int = 1,
    executor: str = "serial",
    store: Optional[ResultStore] = None,
) -> List[AblationResult]:
    """The ε mask-distance gate vs pruning unconditionally (ε = 0)."""
    spec = gate_spec(dataset, preset=preset, seed=seed)
    return _run_ablation_spec(spec, jobs=jobs, executor=executor, store=store)


def heterogeneity_spec(
    dataset: str = "mnist",
    alphas: Sequence[float] = (0.1, 0.5, 5.0),
    preset: str = "smoke",
    seed: int = 0,
) -> SweepSpec:
    """Dirichlet(α) × {Sub-FedAvg, FedAvg} as a two-axis sweep grid."""
    return SweepSpec(
        name="ablate-heterogeneity",
        datasets=(dataset,),
        algorithms=(
            Variant(
                label="sub-fedavg-un",
                algorithm="sub-fedavg-un",
                unstructured=UnstructuredConfig(target_rate=0.5, step=0.2),
            ),
            "fedavg",
        ),
        seeds=(seed,),
        preset=preset,
        overrides={
            f"alpha={alpha:g}": partition_override("dirichlet", dirichlet_alpha=alpha)
            for alpha in alphas
        },
    )


def ablate_heterogeneity(
    dataset: str = "mnist",
    alphas: Sequence[float] = (0.1, 0.5, 5.0),
    preset: str = "smoke",
    seed: int = 0,
    jobs: int = 1,
    executor: str = "serial",
    store: Optional[ResultStore] = None,
) -> Dict[float, Dict[str, float]]:
    """Dirichlet(α) sweep: Sub-FedAvg vs FedAvg accuracy per heterogeneity level.

    Returns ``{alpha: {"sub-fedavg-un": acc, "fedavg": acc}}``.
    """
    spec = heterogeneity_spec(dataset, alphas=alphas, preset=preset, seed=seed)
    sweep = run_sweep(spec, store=store, jobs=jobs, executor=executor)
    sweep.raise_failures()
    results: Dict[float, Dict[str, float]] = {alpha: {} for alpha in alphas}
    for result in sweep.ordered():
        alpha = result.config.dirichlet_alpha
        results[alpha][result.tags["variant"]] = (
            result.history.final_accuracy or 0.0
        )
    return results


def partition_spec(
    dataset: str = "mnist",
    partitions: Optional[Sequence[str]] = None,
    preset: str = "smoke",
    seed: int = 0,
) -> SweepSpec:
    """Sub-FedAvg vs FedAvg across every registered partition strategy.

    ``partitions`` defaults to the full partitioner registry, so the grid
    grows automatically when a new strategy (builtin or third-party) is
    registered — no edits here.
    """
    names: Tuple[str, ...] = (
        tuple(partitions) if partitions is not None else available_partitioners()
    )
    return SweepSpec(
        name="ablate-partition",
        datasets=(dataset,),
        algorithms=(
            Variant(
                label="sub-fedavg-un",
                algorithm="sub-fedavg-un",
                unstructured=UnstructuredConfig(target_rate=0.5, step=0.2),
            ),
            "fedavg",
        ),
        seeds=(seed,),
        preset=preset,
        overrides={name: partition_override(name) for name in names},
    )


def ablate_partition(
    dataset: str = "mnist",
    partitions: Optional[Sequence[str]] = None,
    preset: str = "smoke",
    seed: int = 0,
    jobs: int = 1,
    executor: str = "serial",
    store: Optional[ResultStore] = None,
) -> Dict[str, Dict[str, float]]:
    """Accuracy per (partition strategy × algorithm).

    Returns ``{partition: {"sub-fedavg-un": acc, "fedavg": acc}}`` over the
    registered partitioners (or the explicit ``partitions`` subset).
    """
    spec = partition_spec(dataset, partitions=partitions, preset=preset, seed=seed)
    sweep = run_sweep(spec, store=store, jobs=jobs, executor=executor)
    sweep.raise_failures()
    results: Dict[str, Dict[str, float]] = {}
    for result in sweep.ordered():
        partition = result.tags["override"]
        results.setdefault(partition, {})[result.tags["variant"]] = (
            result.history.final_accuracy or 0.0
        )
    return results


def pruning_step_spec(
    dataset: str = "mnist",
    steps: Sequence[float] = (0.05, 0.1, 0.25, 0.5),
    preset: str = "smoke",
    seed: int = 0,
) -> SweepSpec:
    """Sensitivity to the per-commit pruning increment r_us."""
    return SweepSpec(
        name="ablate-step",
        datasets=(dataset,),
        algorithms=tuple(
            Variant(
                label=f"step={step:.2f}",
                algorithm="sub-fedavg-un",
                unstructured=UnstructuredConfig(
                    target_rate=0.5, step=step, epsilon=0.0
                ),
            )
            for step in steps
        ),
        seeds=(seed,),
        preset=preset,
    )


def ablate_pruning_step(
    dataset: str = "mnist",
    steps: Sequence[float] = (0.05, 0.1, 0.25, 0.5),
    preset: str = "smoke",
    seed: int = 0,
    jobs: int = 1,
    executor: str = "serial",
    store: Optional[ResultStore] = None,
) -> List[AblationResult]:
    """Sensitivity to the per-commit pruning increment r_us."""
    spec = pruning_step_spec(dataset, steps=steps, preset=preset, seed=seed)
    return _run_ablation_spec(spec, jobs=jobs, executor=executor, store=store)
