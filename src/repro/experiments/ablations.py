"""Ablation studies on Sub-FedAvg's design choices (DESIGN.md §7).

Four ablations, each isolating one mechanism the paper relies on:

* **Aggregation rule** — intersection average vs a naive zero-filling mean.
  Shows why averaging only over keepers matters: zero-filling drags rarely
  kept (i.e. personalized) coordinates toward zero.
* **Mask-distance gate** — the paper's ε-gate vs always-prune.  Measures
  whether gating on first/last-epoch mask drift stabilizes final accuracy.
* **Heterogeneity sweep** — Dirichlet(α) partitions from near-IID to
  pathological.  Sub-FedAvg's advantage over FedAvg should grow as α drops.
* **Pruning-step sensitivity** — per-commit increment r_us from cautious to
  aggressive at a fixed target (the paper iterates 5-10% per event).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Sequence

from ..federated import Federation, FederationConfig
from ..pruning import UnstructuredConfig
from .presets import get_preset
from .runner import federation_config, run_algorithm


@dataclass
class AblationResult:
    """One ablation cell."""

    variant: str
    accuracy: float
    sparsity: float
    communication_gb: float


def _run_subfedavg_with(
    config: FederationConfig, aggregator: str, unstructured: UnstructuredConfig
) -> tuple:
    federation = Federation.from_config(
        replace(config, unstructured=unstructured), aggregator=aggregator
    )
    history = federation.run()
    return federation.trainer, history


def ablate_aggregation(
    dataset: str = "mnist", preset: str = "smoke", seed: int = 0
) -> List[AblationResult]:
    """Intersection average vs naive zero-filling mean."""
    base = federation_config(dataset, "sub-fedavg-un", get_preset(preset), seed=seed)
    pruning = UnstructuredConfig(target_rate=0.5, step=0.2)
    results = []
    for aggregator in ("intersection", "zerofill"):
        trainer, history = _run_subfedavg_with(base, aggregator, pruning)
        results.append(
            AblationResult(
                variant=aggregator,
                accuracy=history.final_accuracy or 0.0,
                sparsity=trainer.mean_unstructured_sparsity(),
                communication_gb=history.total_communication_gb,
            )
        )
    return results


def ablate_mask_distance_gate(
    dataset: str = "mnist", preset: str = "smoke", seed: int = 0
) -> List[AblationResult]:
    """The ε mask-distance gate vs pruning unconditionally (ε = 0)."""
    base = federation_config(dataset, "sub-fedavg-un", get_preset(preset), seed=seed)
    results = []
    for variant, epsilon in (("gated (paper eps)", 1e-4), ("ungated (eps=0)", 0.0)):
        pruning = UnstructuredConfig(target_rate=0.5, step=0.2, epsilon=epsilon)
        trainer, history = _run_subfedavg_with(base, "intersection", pruning)
        results.append(
            AblationResult(
                variant=variant,
                accuracy=history.final_accuracy or 0.0,
                sparsity=trainer.mean_unstructured_sparsity(),
                communication_gb=history.total_communication_gb,
            )
        )
    return results


def ablate_heterogeneity(
    dataset: str = "mnist",
    alphas: Sequence[float] = (0.1, 0.5, 5.0),
    preset: str = "smoke",
    seed: int = 0,
) -> Dict[float, Dict[str, float]]:
    """Dirichlet(α) sweep: Sub-FedAvg vs FedAvg accuracy per heterogeneity level.

    Returns ``{alpha: {"sub-fedavg-un": acc, "fedavg": acc}}``.
    """
    results: Dict[float, Dict[str, float]] = {}
    for alpha in alphas:
        cell: Dict[str, float] = {}
        for algorithm in ("sub-fedavg-un", "fedavg"):
            history = run_algorithm(
                dataset,
                algorithm,
                preset,
                seed=seed,
                partition="dirichlet",
                dirichlet_alpha=alpha,
                unstructured=UnstructuredConfig(target_rate=0.5, step=0.2)
                if algorithm == "sub-fedavg-un"
                else None,
            )
            cell[algorithm] = history.final_accuracy or 0.0
        results[alpha] = cell
    return results


def ablate_pruning_step(
    dataset: str = "mnist",
    steps: Sequence[float] = (0.05, 0.1, 0.25, 0.5),
    preset: str = "smoke",
    seed: int = 0,
) -> List[AblationResult]:
    """Sensitivity to the per-commit pruning increment r_us."""
    base = federation_config(dataset, "sub-fedavg-un", get_preset(preset), seed=seed)
    results = []
    for step in steps:
        pruning = UnstructuredConfig(target_rate=0.5, step=step, epsilon=0.0)
        trainer, history = _run_subfedavg_with(base, "intersection", pruning)
        results.append(
            AblationResult(
                variant=f"step={step:.2f}",
                accuracy=history.final_accuracy or 0.0,
                sparsity=trainer.mean_unstructured_sparsity(),
                communication_gb=history.total_communication_gb,
            )
        )
    return results
