"""Table 1 reproduction: accuracy / pruned % / communication cost per algorithm.

The paper's Table 1 compares, per dataset, the personalized accuracy,
achieved pruning percentages and total communication cost of Standalone,
FedAvg, MTL, FedProx (MNIST only), LG-FedAvg, Sub-FedAvg (Un) at target
rates 30/50/70% and Sub-FedAvg (Hy) at 50/70/90%.  This driver regenerates
those rows at a configurable scale preset; every cell runs through the
registry-backed :class:`~repro.federated.federation.Federation` path, so a
newly registered algorithm can be added to the grid by name alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..federated import History
from ..pruning import StructuredConfig, UnstructuredConfig
from .runner import format_table, run_algorithm

# The (algorithm, target-rate) grid of the paper's Table 1.
UNSTRUCTURED_TARGETS = (0.3, 0.5, 0.7)
HYBRID_TARGETS = (0.5, 0.7, 0.9)
BASELINES = ("standalone", "fedavg", "mtl", "lg-fedavg")


@dataclass
class Table1Row:
    """One line of Table 1."""

    algorithm: str
    accuracy: float
    channel_pruned_pct: float  # structured branch (Hy only)
    unstructured_pruned_pct: float
    communication_gb: float

    def cells(self) -> List[str]:
        pruned = (
            f"{self.channel_pruned_pct:.0f}% + {self.unstructured_pruned_pct:.0f}%"
            if self.channel_pruned_pct
            else (
                f"{self.unstructured_pruned_pct:.0f}%"
                if self.unstructured_pruned_pct
                else "0"
            )
        )
        return [
            self.algorithm,
            f"{self.accuracy * 100:.2f}%",
            pruned,
            f"{self.communication_gb:.4f} GB",
        ]


def _row_from_history(
    algorithm: str,
    history: History,
    unstructured_pct: float = 0.0,
    channel_pct: float = 0.0,
) -> Table1Row:
    return Table1Row(
        algorithm=algorithm,
        accuracy=history.final_accuracy or 0.0,
        channel_pruned_pct=channel_pct,
        unstructured_pruned_pct=unstructured_pct,
        communication_gb=history.total_communication_gb,
    )


def run_table1(
    dataset: str = "cifar10",
    preset: str = "smoke",
    seed: int = 0,
    include_fedprox: Optional[bool] = None,
    step: float = 0.15,
) -> List[Table1Row]:
    """Regenerate the Table 1 rows for one dataset.

    ``step`` is the per-commit pruning increment (the paper iterates by
    5-10% per pruning event; smoke-scale runs use a larger step so targets
    are reachable within few rounds).
    """
    if include_fedprox is None:
        include_fedprox = dataset == "mnist"  # the paper reports FedProx on MNIST only
    rows: List[Table1Row] = []

    for algorithm in BASELINES:
        history = run_algorithm(dataset, algorithm, preset, seed=seed)
        rows.append(_row_from_history(algorithm, history))
    if include_fedprox:
        history = run_algorithm(dataset, "fedprox", preset, seed=seed)
        rows.insert(3, _row_from_history("fedprox", history))

    for target in UNSTRUCTURED_TARGETS:
        config = UnstructuredConfig(target_rate=target, step=step)
        history = run_algorithm(
            dataset, "sub-fedavg-un", preset, seed=seed, unstructured=config
        )
        rows.append(
            _row_from_history(
                f"sub-fedavg-un@{int(target * 100)}",
                history,
                unstructured_pct=_final_sparsity(history) * 100,
            )
        )

    for target in HYBRID_TARGETS:
        un = UnstructuredConfig(target_rate=target, step=step)
        st = StructuredConfig(target_rate=min(target, 0.5), step=step)
        history = run_algorithm(
            dataset, "sub-fedavg-hy", preset, seed=seed, unstructured=un, structured=st
        )
        rows.append(
            _row_from_history(
                f"sub-fedavg-hy@{int(target * 100)}",
                history,
                unstructured_pct=_final_sparsity(history) * 100,
                channel_pct=_final_channel_sparsity(history) * 100,
            )
        )
    return rows


def _final_sparsity(history: History) -> float:
    return history.rounds[-1].mean_sparsity if history.rounds else 0.0


def _final_channel_sparsity(history: History) -> float:
    return history.rounds[-1].mean_channel_sparsity if history.rounds else 0.0


def format_table1(dataset: str, rows: List[Table1Row]) -> str:
    headers = ["algorithm", "accuracy", "pruned (ch + un)", "communication"]
    title = f"Table 1 — {dataset}"
    return title + "\n" + format_table(headers, [row.cells() for row in rows])
