"""Table 1 reproduction: accuracy / pruned % / communication cost per algorithm.

The paper's Table 1 compares, per dataset, the personalized accuracy,
achieved pruning percentages and total communication cost of Standalone,
FedAvg, MTL, FedProx (MNIST only), LG-FedAvg, Sub-FedAvg (Un) at target
rates 30/50/70% and Sub-FedAvg (Hy) at 50/70/90%.  This driver regenerates
those rows at a configurable scale preset; every cell runs through the
registry-backed :class:`~repro.federated.federation.Federation` path, so a
newly registered algorithm can be added to the grid by name alone.

The grid itself is declared as a :class:`~repro.experiments.sweep.SweepSpec`
(:func:`table1_spec`) and executed through the sweep engine, so rows can be
computed in parallel (``jobs=``/``executor=``) and cached in a
:class:`~repro.experiments.sweep.ResultStore` for resumable reruns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..federated import History
from ..pruning import StructuredConfig, UnstructuredConfig
from .runner import format_table
from .sweep import ResultStore, SweepResult, SweepSpec, Variant, run_sweep

# The (algorithm, target-rate) grid of the paper's Table 1.
UNSTRUCTURED_TARGETS = (0.3, 0.5, 0.7)
HYBRID_TARGETS = (0.5, 0.7, 0.9)
BASELINES = ("standalone", "fedavg", "mtl", "lg-fedavg")


@dataclass
class Table1Row:
    """One line of Table 1."""

    algorithm: str
    accuracy: float
    channel_pruned_pct: float  # structured branch (Hy only)
    unstructured_pruned_pct: float
    communication_gb: float

    def cells(self) -> List[str]:
        pruned = (
            f"{self.channel_pruned_pct:.0f}% + {self.unstructured_pruned_pct:.0f}%"
            if self.channel_pruned_pct
            else (
                f"{self.unstructured_pruned_pct:.0f}%"
                if self.unstructured_pruned_pct
                else "0"
            )
        )
        return [
            self.algorithm,
            f"{self.accuracy * 100:.2f}%",
            pruned,
            f"{self.communication_gb:.4f} GB",
        ]


def _row_from_history(
    algorithm: str,
    history: History,
    unstructured_pct: float = 0.0,
    channel_pct: float = 0.0,
) -> Table1Row:
    return Table1Row(
        algorithm=algorithm,
        accuracy=history.final_accuracy or 0.0,
        channel_pruned_pct=channel_pct,
        unstructured_pruned_pct=unstructured_pct,
        communication_gb=history.total_communication_gb,
    )


def table1_variants(
    include_fedprox: bool, step: float = 0.15
) -> List[Variant]:
    """The paper's Table 1 rows as a declarative algorithm axis, in row
    order: baselines (FedProx after MTL, MNIST only), then Sub-FedAvg (Un)
    per unstructured target, then Sub-FedAvg (Hy) per hybrid target."""
    variants = [Variant(label=name, algorithm=name) for name in BASELINES]
    if include_fedprox:
        variants.insert(3, Variant(label="fedprox", algorithm="fedprox"))
    for target in UNSTRUCTURED_TARGETS:
        variants.append(
            Variant(
                label=f"sub-fedavg-un@{int(target * 100)}",
                algorithm="sub-fedavg-un",
                unstructured=UnstructuredConfig(target_rate=target, step=step),
                tags={"pruned": "unstructured"},
            )
        )
    for target in HYBRID_TARGETS:
        variants.append(
            Variant(
                label=f"sub-fedavg-hy@{int(target * 100)}",
                algorithm="sub-fedavg-hy",
                unstructured=UnstructuredConfig(target_rate=target, step=step),
                structured=StructuredConfig(target_rate=min(target, 0.5), step=step),
                tags={"pruned": "hybrid"},
            )
        )
    return variants


def table1_spec(
    dataset: str = "cifar10",
    preset: str = "smoke",
    seed: int = 0,
    include_fedprox: Optional[bool] = None,
    step: float = 0.15,
) -> SweepSpec:
    """Declare the Table 1 grid for one dataset as a sweep."""
    if include_fedprox is None:
        include_fedprox = dataset == "mnist"  # the paper reports FedProx on MNIST only
    return SweepSpec(
        name="table1",
        datasets=(dataset,),
        algorithms=table1_variants(include_fedprox, step=step),
        seeds=(seed,),
        preset=preset,
    )


def table1_rows(sweep: SweepResult) -> List[Table1Row]:
    """Render Table 1 rows from a completed sweep (cells in grid order)."""
    sweep.raise_failures()
    rows: List[Table1Row] = []
    for result in sweep.ordered():
        history = result.history
        label = result.tags["variant"]
        pruned = result.tags.get("pruned")
        rows.append(
            _row_from_history(
                label,
                history,
                unstructured_pct=(
                    _final_sparsity(history) * 100 if pruned else 0.0
                ),
                channel_pct=(
                    _final_channel_sparsity(history) * 100
                    if pruned == "hybrid"
                    else 0.0
                ),
            )
        )
    return rows


def run_table1(
    dataset: str = "cifar10",
    preset: str = "smoke",
    seed: int = 0,
    include_fedprox: Optional[bool] = None,
    step: float = 0.15,
    jobs: int = 1,
    executor: str = "serial",
    store: Optional[ResultStore] = None,
) -> List[Table1Row]:
    """Regenerate the Table 1 rows for one dataset.

    ``step`` is the per-commit pruning increment (the paper iterates by
    5-10% per pruning event; smoke-scale runs use a larger step so targets
    are reachable within few rounds).  ``jobs``/``executor``/``store``
    forward to the sweep engine: rows are independent cells, so they can
    run concurrently and resume from a result store.
    """
    spec = table1_spec(
        dataset, preset=preset, seed=seed, include_fedprox=include_fedprox, step=step
    )
    return table1_rows(run_sweep(spec, store=store, jobs=jobs, executor=executor))


def _final_sparsity(history: History) -> float:
    return history.rounds[-1].mean_sparsity if history.rounds else 0.0


def _final_channel_sparsity(history: History) -> float:
    return history.rounds[-1].mean_channel_sparsity if history.rounds else 0.0


def format_table1(dataset: str, rows: List[Table1Row]) -> str:
    headers = ["algorithm", "accuracy", "pruned (ch + un)", "communication"]
    title = f"Table 1 — {dataset}"
    return title + "\n" + format_table(headers, [row.cells() for row in rows])
