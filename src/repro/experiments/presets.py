"""Scale presets and scenario-override helpers for the paper's experiments.

The paper's runs (100 clients, 300-500 rounds, full 50k-example datasets)
take GPU-days; the presets here reproduce the same protocol at three
scales.  ``smoke`` finishes in seconds per algorithm and is what the
benchmark suite runs; ``small`` gives more faithful numbers in minutes;
``paper`` is the full protocol for completeness (expect hours on CPU).

Experiment grids that vary the *data scenario* build their override dicts
with :func:`partition_override` / :func:`sampler_override`, which validate
names against the partitioner and sampler registries — so a grid over a
misspelled or unregistered strategy fails at declaration time, not three
cells into a sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

from ..data.registry import get_partitioner
from ..federated.scenario import ScenarioConfig, get_sampler
from ..systems import SystemsConfig, get_fleet, get_round_policy


@dataclass(frozen=True)
class ScalePreset:
    """Federation sizing shared by every experiment driver."""

    name: str
    num_clients: int
    rounds: int
    sample_fraction: float
    n_train: int
    n_test: int
    local_epochs: int
    eval_every: int = 0


PRESETS: Dict[str, ScalePreset] = {
    "smoke": ScalePreset(
        name="smoke",
        num_clients=8,
        rounds=4,
        sample_fraction=0.5,
        n_train=480,
        n_test=240,
        local_epochs=3,
    ),
    "small": ScalePreset(
        name="small",
        num_clients=20,
        rounds=15,
        sample_fraction=0.3,
        n_train=2000,
        n_test=600,
        local_epochs=5,
    ),
    "paper": ScalePreset(
        name="paper",
        num_clients=100,
        rounds=500,
        sample_fraction=0.1,
        n_train=50000,
        n_test=10000,
        local_epochs=5,
    ),
}


def get_preset(name: str) -> ScalePreset:
    if name not in PRESETS:
        raise KeyError(f"unknown preset {name!r}; choose from {sorted(PRESETS)}")
    return PRESETS[name]


def partition_override(partition: str, **params) -> Dict[str, Any]:
    """Config overrides selecting a *registered* partition strategy.

    ``params`` are :class:`~repro.data.partition.DataConfig` fields (e.g.
    ``dirichlet_alpha=0.1``); the partitioner name is resolved through the
    registry so a typo or unregistered strategy raises here, where the
    grid is declared, instead of inside a sweep worker.
    """
    get_partitioner(partition)  # raises KeyError for unknown strategies
    return {"partition": partition, **params}


def sampler_override(sampler: str, **params) -> Dict[str, Any]:
    """Config overrides selecting a *registered* participation model.

    Returns a ``{"scenario": ScenarioConfig(...)}`` override; ``params``
    are :class:`~repro.federated.scenario.ScenarioConfig` fields (e.g.
    ``dropout=0.2``).  The sampler name is validated via the registry at
    declaration time.
    """
    get_sampler(sampler)  # raises KeyError for unknown samplers
    return {"scenario": ScenarioConfig(sampler=sampler, **params)}


def systems_override(round_policy: str, **params) -> Dict[str, Any]:
    """Config overrides enabling fleet simulation under a *registered* policy.

    Returns a ``{"systems": SystemsConfig(...)}`` override; ``params``
    are :class:`~repro.systems.config.SystemsConfig` fields (e.g.
    ``deadline_seconds=1.0``, ``buffer_size=2``).  The policy name — and
    its parameter constraints, like a positive deadline — are validated
    here, at grid-declaration time.
    """
    get_round_policy(round_policy)  # raises KeyError for unknown policies
    return {"systems": SystemsConfig(round_policy=round_policy, **params)}


def fleet_override(fleet: str, **params) -> Dict[str, Any]:
    """Config overrides selecting a *registered* fleet shape.

    Returns a ``{"scenario": ScenarioConfig(...)}`` override; ``params``
    are the remaining scenario fields (typically ``profiles=(...)`` for
    the ``tiers`` shape or ``client_profiles=(...)`` for
    ``profile-list``).  The fleet name is validated via the registry at
    declaration time.
    """
    get_fleet(fleet)  # raises KeyError for unknown fleet shapes
    return {"scenario": ScenarioConfig(fleet=fleet, **params)}
