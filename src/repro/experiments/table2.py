"""Table 2 reproduction: FLOP and parameter reduction factors.

Table 2 reports, per algorithm variant, the conv-FLOP speed-up and the
fraction of parameters removed.  For Sub-FedAvg (Un) the FLOP count is
unchanged (masked scalars still occupy dense kernels — the paper reports
0×) and parameters shrink by the target rate; for Sub-FedAvg (Hy) the
channel pruning delivers the FLOP reduction (paper: 2.4× at ~50% channels
on LeNet-5).  These quantities are analytic — they follow from the channel
census, not from training — which is how the paper itself derives them, so
this driver computes them exactly (no federation is built; the trainer
registry is not involved).

The algorithm/target grid is shared with Table 1
(:data:`~repro.experiments.table1.BASELINES`,
:data:`~repro.experiments.table1.UNSTRUCTURED_TARGETS`,
:data:`~repro.experiments.table1.HYBRID_TARGETS`), so both tables always
report the same variants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..models import create_model
from ..models.registry import input_spatial_size
from ..pruning import ChannelMask, reduction_report
from .runner import format_table
from .table1 import BASELINES, HYBRID_TARGETS, UNSTRUCTURED_TARGETS


@dataclass
class Table2Row:
    algorithm: str
    flop_reduction: float  # speed-up factor (1.0 = none)
    param_reduction: float  # fraction of parameters removed

    def cells(self) -> List[str]:
        flop = "0x" if self.flop_reduction <= 1.0 else f"{self.flop_reduction:.1f}x"
        return [self.algorithm, flop, f"{self.param_reduction:.2f}x"]


def uniform_channel_mask(model, rate: float) -> ChannelMask:
    """Prune the same fraction of channels in every layer (keep >= 1)."""
    mask = ChannelMask()
    for bn_name, count in model.channel_census():
        keep_count = max(1, count - int(round(rate * count)))
        keep = np.zeros(count, dtype=bool)
        keep[:keep_count] = True
        mask[bn_name] = keep
    return mask


def run_table2(dataset: str = "cifar10", seed: int = 0) -> List[Table2Row]:
    """Regenerate Table 2's reduction factors for one dataset's model."""
    model = create_model(dataset, seed=seed)
    side = input_spatial_size(dataset)
    rows = [Table2Row(name, 1.0, 0.0) for name in BASELINES]
    for target in UNSTRUCTURED_TARGETS:
        # Unstructured masks do not shrink conv kernels: FLOPs unchanged.
        rows.append(Table2Row(f"sub-fedavg-un@{int(target*100)}", 1.0, target))
    for target in HYBRID_TARGETS:
        channel_rate = 0.5  # the paper's Hy runs prune ~half the channels
        report = reduction_report(model, uniform_channel_mask(model, channel_rate), side)
        rows.append(
            Table2Row(
                f"sub-fedavg-hy@{int(target*100)}",
                report.flop_reduction,
                target,
            )
        )
    return rows


def format_table2(dataset: str, rows: List[Table2Row]) -> str:
    headers = ["algorithm", "flop reduction", "param reduction"]
    title = f"Table 2 — {dataset}"
    return title + "\n" + format_table(headers, [row.cells() for row in rows])
