"""Parallel experiment sweeps: declarative grids, a resumable result store.

The paper's artifacts (Tables 1-2, Figures 1-3, the ablations) are grids of
independent ``(dataset, algorithm, seed, overrides)`` cells.  This module
turns such a grid into three composable pieces:

* :class:`SweepSpec` — a declarative description of the grid.  Axes
  (``datasets`` × ``algorithms`` × ``overrides`` × ``seeds``) expand into
  :class:`SweepCell` objects, each carrying a full
  :class:`~repro.federated.builder.FederationConfig` plus optional trainer
  overrides (e.g. ``aggregator="zerofill"`` for the ablations).
* :class:`ResultStore` — one JSON file per cell, named by the cell's
  content hash (:meth:`FederationConfig.stable_hash` over canonical JSON),
  so an interrupted sweep resumes instead of recomputing and the artifacts
  are machine-readable.
* :class:`SweepRunner` — executes the pending cells concurrently on a
  ``serial``/``thread``/``process`` executor (the same worker plumbing and
  naming as the round-level :mod:`~repro.federated.execution` backends,
  one level up: whole runs instead of single clients).  A failing cell is
  isolated — its error is recorded and every other cell still completes.

Determinism contract: a cell is built from its config alone (fresh
federation, per-client RNG streams), so a sweep cell's history is
bit-identical to a serial single-cell :func:`~repro.experiments.runner
.run_algorithm` call whatever executor or job count ran it.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
import time
import traceback
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Union

from ..federated import Federation, FederationConfig
from ..federated.execution import WorkerPool, default_worker_count
from ..federated.metrics import History
from ..pruning import StructuredConfig, UnstructuredConfig
from ..utils.serialization import history_from_dict, history_to_dict
from .presets import get_preset
from .runner import federation_config

#: Result-store schema version, bumped on layout changes so stale caches
#: are recomputed rather than misread.
SCHEMA_VERSION = 1

#: Executor names accepted by :class:`SweepRunner` (mirrors the
#: round-level backend names in ``repro.federated.execution``).
SWEEP_EXECUTORS = ("serial", "thread", "process")


# ----------------------------------------------------------------------
# Grid description
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Variant:
    """One entry of a spec's algorithm axis.

    A plain string in the axis means "this algorithm, no extras"; a
    ``Variant`` additionally pins pruning configs, config overrides and
    trainer-constructor overrides, under a human-readable ``label`` that
    becomes part of the cell key (e.g. ``sub-fedavg-un@70``).
    """

    label: str
    algorithm: str
    unstructured: Optional[UnstructuredConfig] = None
    structured: Optional[StructuredConfig] = None
    overrides: Mapping[str, Any] = field(default_factory=dict)
    trainer_overrides: Mapping[str, Any] = field(default_factory=dict)
    tags: Mapping[str, Any] = field(default_factory=dict)


def _as_variant(entry: Union[str, Variant]) -> Variant:
    if isinstance(entry, Variant):
        return entry
    return Variant(label=entry, algorithm=entry)


@dataclass
class SweepCell:
    """One grid cell: a complete run description plus rendering metadata."""

    key: str
    config: FederationConfig
    trainer_overrides: Dict[str, Any] = field(default_factory=dict)
    tags: Dict[str, Any] = field(default_factory=dict)

    @property
    def config_hash(self) -> str:
        """Content hash identifying this cell in the result store.

        Trainer overrides change the computation, so they are folded into
        the hash; ``tags`` are rendering hints and deliberately are not.
        """
        extra = {"trainer_overrides": self.trainer_overrides}
        return self.config.stable_hash(extra=extra if self.trainer_overrides else None)


@dataclass
class SweepSpec:
    """Declarative sweep grid: axes that expand into :class:`SweepCell`s.

    ``datasets`` × ``algorithms`` × ``overrides`` × ``seeds`` is the
    expansion order (and therefore the cell order).  ``overrides`` is a
    mapping of axis label → :func:`federation_config` keyword overrides
    (e.g. ``{"alpha=0.1": {"partition": "dirichlet", "dirichlet_alpha":
    0.1}}``); the default single unlabeled entry keeps keys short for the
    common no-override grids.  ``base`` applies to every cell.
    """

    name: str
    datasets: Sequence[str]
    algorithms: Sequence[Union[str, Variant]]
    seeds: Sequence[int] = (0,)
    preset: str = "smoke"
    overrides: Mapping[str, Mapping[str, Any]] = field(
        default_factory=lambda: {"": {}}
    )
    base: Mapping[str, Any] = field(default_factory=dict)

    def expand(self) -> List[SweepCell]:
        """Materialize the grid as a list of fully-configured cells."""
        preset = get_preset(self.preset)
        cells: List[SweepCell] = []
        axes = itertools.product(
            self.datasets, map(_as_variant, self.algorithms), self.overrides, self.seeds
        )
        for dataset, variant, override_label, seed in axes:
            kwargs: Dict[str, Any] = dict(self.base)
            kwargs.update(self.overrides[override_label])
            kwargs.update(variant.overrides)
            config = federation_config(
                dataset,
                variant.algorithm,
                preset,
                seed=seed,
                unstructured=variant.unstructured,
                structured=variant.structured,
                # eval_every has a dedicated parameter (preset-derived by
                # default), so it must not travel with the overrides.
                eval_every=kwargs.pop("eval_every", None),
                **kwargs,
            )
            parts = [self.name, dataset, variant.label]
            if override_label:
                parts.append(override_label)
            parts.append(f"seed{seed}")
            cells.append(
                SweepCell(
                    key="/".join(parts),
                    config=config,
                    trainer_overrides=dict(variant.trainer_overrides),
                    tags={
                        "dataset": dataset,
                        "variant": variant.label,
                        "override": override_label,
                        "seed": seed,
                        **variant.tags,
                    },
                )
            )
        return cells


# ----------------------------------------------------------------------
# Cell results and the on-disk store
# ----------------------------------------------------------------------
@dataclass
class CellResult:
    """Outcome of one executed (or cache-loaded) cell."""

    key: str
    config_hash: str
    config: FederationConfig
    trainer_overrides: Dict[str, Any] = field(default_factory=dict)
    tags: Dict[str, Any] = field(default_factory=dict)
    history: Optional[History] = None
    extras: Dict[str, Any] = field(default_factory=dict)
    elapsed_seconds: float = 0.0
    error: Optional[str] = None
    cached: bool = False  # loaded from the store rather than executed

    @property
    def ok(self) -> bool:
        return self.error is None and self.history is not None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": SCHEMA_VERSION,
            "key": self.key,
            "config_hash": self.config_hash,
            "config": self.config.to_dict(),
            "trainer_overrides": self.trainer_overrides,
            "tags": self.tags,
            "history": None if self.history is None else history_to_dict(self.history),
            "extras": self.extras,
            "elapsed_seconds": self.elapsed_seconds,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CellResult":
        history = payload.get("history")
        return cls(
            key=payload["key"],
            config_hash=payload["config_hash"],
            config=FederationConfig.from_dict(payload["config"]),
            trainer_overrides=dict(payload.get("trainer_overrides", {})),
            tags=dict(payload.get("tags", {})),
            history=None if history is None else history_from_dict(history),
            extras=dict(payload.get("extras", {})),
            elapsed_seconds=payload.get("elapsed_seconds", 0.0),
        )


class ResultStore:
    """One JSON file per cell, keyed by content hash; ``root=None`` keeps
    results in memory only (used by the drivers when no cache is wanted)."""

    def __init__(self, root: Optional[Union[str, Path]] = None) -> None:
        self.root = None if root is None else Path(root)
        self._memory: Dict[str, CellResult] = {}

    def path_for(self, config_hash: str) -> Optional[Path]:
        return None if self.root is None else self.root / f"{config_hash}.json"

    def load(self, config_hash: str) -> Optional[CellResult]:
        """Return the stored result for a hash, or None (also on any stale
        or unreadable file — a bad cache entry is recomputed, not fatal)."""
        if self.root is None:
            return self._memory.get(config_hash)
        path = self.path_for(config_hash)
        if not path.exists():
            return None
        try:
            payload = json.loads(path.read_text())
            if payload.get("schema") != SCHEMA_VERSION:
                return None
            return CellResult.from_dict(payload)
        except (ValueError, KeyError, TypeError):
            return None

    def save(self, result: CellResult) -> None:
        if self.root is None:
            self._memory[result.config_hash] = result
            return
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(result.config_hash)
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(result.to_dict(), indent=2))
        tmp.replace(path)  # atomic: a killed sweep never leaves half a cell

    def load_all(self) -> List[CellResult]:
        """Every stored result (for exports); skips unreadable files."""
        if self.root is None:
            return list(self._memory.values())
        if not self.root.exists():
            return []
        results = []
        for path in sorted(self.root.glob("*.json")):
            result = self.load(path.stem)
            if result is not None:
                results.append(result)
        return results


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def _execute_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Run one cell from a picklable payload; never raises.

    Module-level so the process executor can ship it to fork workers; the
    thread and serial executors call it directly.  Any exception becomes an
    ``error`` string in the returned payload — one bad cell must not kill
    the sweep.
    """
    started = time.perf_counter()
    try:
        config = FederationConfig.from_dict(payload["config"])
        federation = Federation.from_config(config, **payload["trainer_overrides"])
        history = federation.run()
        return {
            "key": payload["key"],
            "history": history_to_dict(history),
            "extras": _collect_extras(federation.trainer),
            "elapsed_seconds": time.perf_counter() - started,
            "error": None,
        }
    except Exception:
        return {
            "key": payload["key"],
            "history": None,
            "extras": {},
            "elapsed_seconds": time.perf_counter() - started,
            "error": traceback.format_exc(limit=8),
        }


def _collect_extras(trainer) -> Dict[str, Any]:
    """Trainer-side quantities the drivers render but History omits."""
    extras: Dict[str, Any] = {}
    if hasattr(trainer, "mean_unstructured_sparsity"):
        extras["mean_unstructured_sparsity"] = trainer.mean_unstructured_sparsity()
    if hasattr(trainer, "mean_channel_sparsity"):
        extras["mean_channel_sparsity"] = trainer.mean_channel_sparsity()
    trajectory = getattr(trainer, "trajectory", None)
    if trajectory:
        extras["trajectory"] = [asdict(point) for point in trajectory]
    return extras


@dataclass
class SweepResult:
    """Everything a sweep produced, in cell order."""

    cells: List[SweepCell]
    results: Dict[str, CellResult]  # key -> result (also under duplicate keys)
    executed: List[str] = field(default_factory=list)
    reused: List[str] = field(default_factory=list)
    failed: Dict[str, str] = field(default_factory=dict)

    def __getitem__(self, key: str) -> CellResult:
        return self.results[key]

    def history(self, key: str) -> History:
        """The run history of one cell; raises if that cell failed."""
        self.raise_failures(keys=(key,))
        return self.results[key].history

    def ordered(self) -> List[CellResult]:
        """Results in grid-expansion order (failures included)."""
        return [self.results[cell.key] for cell in self.cells]

    def raise_failures(self, keys: Optional[Iterable[str]] = None) -> None:
        """Raise ``SweepError`` if any (selected) cell failed."""
        selected = set(self.failed if keys is None else keys)
        messages = [
            f"{key}:\n{error}" for key, error in self.failed.items() if key in selected
        ]
        if messages:
            raise SweepError(
                f"{len(messages)} sweep cell(s) failed:\n" + "\n".join(messages)
            )


class SweepError(RuntimeError):
    """At least one sweep cell raised during execution."""


class SweepRunner:
    """Execute a grid's cells concurrently with cache-based resume.

    ``jobs`` counts concurrent cells (0 = one per CPU); ``executor`` picks
    how they run: ``"serial"`` in the calling thread, ``"thread"`` on a
    thread pool (local SGD is GIL-releasing BLAS, so cells overlap), or
    ``"process"`` on a persistent
    :class:`~repro.federated.execution.WorkerPool` (full isolation, the
    default for multi-core sweeps; fork where available, spawn
    otherwise).  A shared ``pool`` reuses its workers across several
    runners — grid after grid on one warm pool.  With ``resume=True``
    cells whose hash is already in the store are loaded, not recomputed
    — an interrupted sweep picks up where it stopped, and a completed
    one is a no-op.
    """

    def __init__(
        self,
        spec: Union[SweepSpec, Sequence[SweepCell]],
        store: Optional[ResultStore] = None,
        jobs: int = 1,
        executor: str = "serial",
        resume: bool = True,
        pool: Optional[WorkerPool] = None,
    ) -> None:
        if executor not in SWEEP_EXECUTORS:
            raise KeyError(
                f"unknown sweep executor {executor!r}; "
                f"choose from {sorted(SWEEP_EXECUTORS)}"
            )
        self.cells = spec.expand() if isinstance(spec, SweepSpec) else list(spec)
        self.store = store if store is not None else ResultStore()
        self.jobs = default_worker_count(jobs)
        self.executor = executor
        self.resume = resume
        self.pool = pool

    def run(self) -> SweepResult:
        """Run (or load) every cell; one failing cell never kills the rest."""
        by_hash: Dict[str, CellResult] = {}
        pending: List[SweepCell] = []
        for cell in self.cells:
            if cell.config_hash in by_hash:
                continue  # duplicate cell in the grid: compute once
            cached = self.store.load(cell.config_hash) if self.resume else None
            if cached is not None:
                cached.cached = True
                by_hash[cell.config_hash] = cached
            else:
                pending.append(cell)

        payloads = [
            {
                "key": cell.key,
                "config": cell.config.to_dict(),
                "trainer_overrides": cell.trainer_overrides,
            }
            for cell in pending
        ]
        outcomes = self._map(payloads)
        for cell, outcome in zip(pending, outcomes):
            history = outcome["history"]
            result = CellResult(
                key=cell.key,
                config_hash=cell.config_hash,
                config=cell.config,
                trainer_overrides=cell.trainer_overrides,
                tags=cell.tags,
                history=None if history is None else history_from_dict(history),
                extras=outcome["extras"],
                elapsed_seconds=outcome["elapsed_seconds"],
                error=outcome["error"],
            )
            if result.ok:
                self.store.save(result)
            by_hash[cell.config_hash] = result

        sweep = SweepResult(cells=self.cells, results={})
        executed_hashes = {cell.config_hash for cell in pending}
        counted: set = set()
        for cell in self.cells:
            result = by_hash[cell.config_hash]
            if result.key != cell.key or result.tags != cell.tags:
                # A cache hit from another grid (or a duplicate cell in
                # this one) carries the *originating* cell's labels; rebind
                # to the requesting cell so renderers see their own
                # key/tags.  The computation is identical by hash.
                result = dataclasses.replace(
                    result, key=cell.key, config=cell.config, tags=dict(cell.tags)
                )
            sweep.results[cell.key] = result
            if result.error is not None:
                sweep.failed[cell.key] = result.error
            elif (
                cell.config_hash in executed_hashes
                and cell.config_hash not in counted
            ):
                sweep.executed.append(cell.key)
                counted.add(cell.config_hash)
            else:
                # from the store, or a duplicate of a cell computed above
                sweep.reused.append(cell.key)
        return sweep

    def _map(self, payloads: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        if not payloads:
            return []
        if self.executor == "serial" or len(payloads) == 1 or self.jobs == 1:
            return [_execute_payload(payload) for payload in payloads]
        if self.executor == "thread":
            with ThreadPoolExecutor(max_workers=self.jobs) as pool:
                return list(pool.map(_execute_payload, payloads))
        if self.pool is not None:
            return self.pool.map(_execute_payload, payloads)
        with WorkerPool(workers=min(self.jobs, len(payloads))) as pool:
            return pool.map(_execute_payload, payloads)


def run_sweep(
    spec: Union[SweepSpec, Sequence[SweepCell]],
    store: Optional[ResultStore] = None,
    jobs: int = 1,
    executor: str = "serial",
    resume: bool = True,
) -> SweepResult:
    """One-call convenience wrapper over :class:`SweepRunner`."""
    return SweepRunner(
        spec, store=store, jobs=jobs, executor=executor, resume=resume
    ).run()


def smoke_spec(seed: int = 0) -> SweepSpec:
    """The CI smoke grid: 2 datasets × 2 algorithms at the smoke preset."""
    return SweepSpec(
        name="smoke",
        datasets=("mnist", "emnist"),
        algorithms=(
            "fedavg",
            Variant(
                label="sub-fedavg-un@50",
                algorithm="sub-fedavg-un",
                unstructured=UnstructuredConfig(target_rate=0.5, step=0.2),
            ),
        ),
        seeds=(seed,),
        preset="smoke",
    )


def fleet_spec(dataset: str = "mnist", preset: str = "smoke", seed: int = 0) -> SweepSpec:
    """The fleet-simulation grid: 2 algorithms × 3 round policies.

    Every cell runs on a heterogeneous two-tier fleet (edge phones +
    Raspberry Pis, round-robin) with per-round evaluation, under a
    *pinned* cost model (1e6 conv FLOPs/example, 100 examples/round) so
    the policies separate identically on every dataset: the Pi tier needs
    ~1.4 s per round while the phone tier needs ~0.75 s, so a 1-second
    deadline drops the Pi uploads and the async buffer (K=2) closes on
    the two fastest arrivals.  Rendering the cells' accuracy curves over
    ``simulated_seconds`` gives the sync-vs-deadline-vs-async
    time-to-accuracy comparison for FedAvg vs Sub-FedAvg.
    """
    from ..federated.scenario import ScenarioConfig
    from ..systems import SystemsConfig

    pricing = dict(flops_per_example=1e6, examples_per_round=100.0)
    return SweepSpec(
        name="fleet",
        datasets=(dataset,),
        algorithms=(
            "fedavg",
            Variant(
                label="sub-fedavg-un@50",
                algorithm="sub-fedavg-un",
                unstructured=UnstructuredConfig(target_rate=0.5, step=0.2),
            ),
        ),
        seeds=(seed,),
        preset=preset,
        base={
            "eval_every": 1,
            "scenario": ScenarioConfig(
                fleet="tiers", profiles=("edge-phone", "raspberry-pi")
            ),
        },
        overrides={
            "sync": {
                "systems": SystemsConfig(round_policy="synchronous", **pricing)
            },
            "deadline": {
                "systems": SystemsConfig(
                    round_policy="deadline", deadline_seconds=1.0, **pricing
                )
            },
            "async": {
                "systems": SystemsConfig(
                    round_policy="async-buffer", buffer_size=2, **pricing
                )
            },
        },
    )


def export_results(results: Iterable[CellResult]) -> str:
    """Merge cell results into one JSON document (the CI ``BENCH_sweep``
    artifact): summary numbers up front, full payloads after."""
    results = list(results)
    payload = {
        "schema": SCHEMA_VERSION,
        "cells": [
            {
                "key": result.key,
                "config_hash": result.config_hash,
                "final_accuracy": None
                if result.history is None
                else result.history.final_accuracy,
                "communication_gb": None
                if result.history is None
                else result.history.total_communication_gb,
                "elapsed_seconds": result.elapsed_seconds,
            }
            for result in results
        ],
        "details": [result.to_dict() for result in results],
    }
    return json.dumps(payload, indent=2)
