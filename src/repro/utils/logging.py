"""Minimal structured logging for experiment drivers."""

from __future__ import annotations

import logging
import sys

_FORMAT = "%(asctime)s %(name)s %(levelname)s %(message)s"


def get_logger(name: str, level: int = logging.INFO) -> logging.Logger:
    """Namespaced logger writing to stderr; idempotent per name."""
    logger = logging.getLogger(f"repro.{name}")
    if not logger.handlers:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(logging.Formatter(_FORMAT, datefmt="%H:%M:%S"))
        logger.addHandler(handler)
        logger.propagate = False
    logger.setLevel(level)
    return logger
