"""Shared utilities: seeding, logging, timing."""

from .rng import seed_everything, spawn_rng
from .logging import get_logger
from .timer import Timer
from .serialization import (
    history_from_dict,
    history_to_dict,
    load_history,
    load_mask,
    load_state,
    save_history,
    save_mask,
    save_state,
)

__all__ = [
    "seed_everything",
    "spawn_rng",
    "get_logger",
    "Timer",
    "save_state",
    "load_state",
    "save_mask",
    "load_mask",
    "save_history",
    "load_history",
    "history_to_dict",
    "history_from_dict",
]
