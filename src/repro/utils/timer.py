"""Wall-clock timing helper for experiment drivers."""

from __future__ import annotations

import time
from typing import Optional


class Timer:
    """Context manager / stopwatch measuring elapsed seconds."""

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def start(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("Timer.stop() called before start()")
        self.elapsed = time.perf_counter() - self._start
        self._start = None
        return self.elapsed

    def lap(self) -> float:
        """Elapsed seconds since start without stopping."""
        if self._start is None:
            raise RuntimeError("Timer.lap() called before start()")
        return time.perf_counter() - self._start
