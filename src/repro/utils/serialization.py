"""Persistence for model states, masks and run histories.

State dicts and mask sets serialize to ``.npz`` archives; run histories
serialize to JSON.  Round-tripping is exact for float64 arrays, which the
checkpoint/restore tests rely on.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Dict, Union

import numpy as np

from ..federated.metrics import History, RoundRecord
from ..pruning import MaskSet

PathLike = Union[str, Path]


def save_state(path: PathLike, state: Dict[str, np.ndarray]) -> None:
    """Write a state dict (or any name->array mapping) to an ``.npz`` file."""
    np.savez(Path(path), **state)


def load_state(path: PathLike) -> Dict[str, np.ndarray]:
    """Read a state dict written by :func:`save_state`."""
    with np.load(Path(path)) as archive:
        return {name: archive[name].copy() for name in archive.files}


def save_mask(path: PathLike, mask: MaskSet) -> None:
    """Persist a mask set (stored as uint8 to keep archives small)."""
    np.savez(Path(path), **{name: value.astype(np.uint8) for name, value in mask.items()})


def load_mask(path: PathLike) -> MaskSet:
    with np.load(Path(path)) as archive:
        return MaskSet({name: archive[name].astype(np.float64) for name in archive.files})


def history_to_dict(history: History) -> Dict:
    """JSON-safe dict for a run history (arrays are plain lists)."""
    return {
        "algorithm": history.algorithm,
        "final_accuracy": history.final_accuracy,
        "final_per_client_accuracy": {
            str(cid): acc for cid, acc in history.final_per_client_accuracy.items()
        },
        "total_communication_bytes": history.total_communication_bytes,
        "rounds": [asdict(record) for record in history.rounds],
    }


def history_from_dict(payload: Dict) -> History:
    """Inverse of :func:`history_to_dict`; the round trip is exact."""
    history = History(algorithm=payload["algorithm"])
    for record in payload["rounds"]:
        history.rounds.append(RoundRecord(**record))
    history.final_accuracy = payload["final_accuracy"]
    history.final_per_client_accuracy = {
        int(cid): acc for cid, acc in payload["final_per_client_accuracy"].items()
    }
    history.total_communication_bytes = payload["total_communication_bytes"]
    return history


def save_history(path: PathLike, history: History) -> None:
    """Serialize a run history to JSON."""
    Path(path).write_text(json.dumps(history_to_dict(history), indent=2))


def load_history(path: PathLike) -> History:
    return history_from_dict(json.loads(Path(path).read_text()))
