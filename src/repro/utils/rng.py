"""Deterministic randomness management.

Every stochastic component in the library takes either a seed or a
``numpy.random.Generator``; these helpers centralize how experiment-level
seeds are fanned out to independent streams so that runs are exactly
reproducible and components do not steal entropy from each other.
"""

from __future__ import annotations

import random
from typing import Union

import numpy as np

SeedLike = Union[int, tuple]


def seed_everything(seed: int) -> np.random.Generator:
    """Seed Python's and numpy's global RNGs; return a fresh Generator.

    The library itself never uses global RNG state, but third-party code in
    examples might; seeding both keeps full runs deterministic.
    """
    random.seed(seed)
    np.random.seed(seed % (2 ** 32))
    return np.random.default_rng(seed)


def spawn_rng(seed: SeedLike, *stream: Union[int, str]) -> np.random.Generator:
    """Derive an independent generator for a named sub-stream.

    ``spawn_rng(42, "partition")`` and ``spawn_rng(42, "model", 3)`` yield
    decorrelated streams from the same experiment seed.
    """
    tokens = []
    base = seed if isinstance(seed, tuple) else (seed,)
    for token in (*base, *stream):
        if isinstance(token, str):
            tokens.append(abs(hash_stable(token)))
        else:
            tokens.append(int(token))
    return np.random.default_rng(tuple(tokens))


def hash_stable(text: str) -> int:
    """Process-stable string hash (builtin ``hash`` varies per process)."""
    import zlib

    return zlib.crc32(text.encode("utf-8"))
