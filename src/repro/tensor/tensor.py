"""Reverse-mode automatic differentiation over numpy arrays.

This module provides the :class:`Tensor` class, a thin wrapper around
``numpy.ndarray`` that records a computation graph and supports
backpropagation.  It replaces the subset of PyTorch functionality the
Sub-FedAvg reproduction needs: elementwise arithmetic with broadcasting,
matrix multiplication, reductions, reshaping and indexing.  Convolution,
pooling and batch-norm live in :mod:`repro.tensor.ops` as dedicated ops with
hand-written backward passes for speed.

Design notes
------------
* Gradients are accumulated into ``Tensor.grad`` as plain numpy arrays.
* The graph is a DAG of tensors; ``backward()`` runs a topological sort and
  calls each node's ``_backward`` closure exactly once.
* Broadcasting in the forward pass is undone in the backward pass by
  :func:`unbroadcast`, which sums gradient over broadcast axes.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, Sequence]

DEFAULT_DTYPE = np.float64


def _as_array(data: ArrayLike, dtype=DEFAULT_DTYPE) -> np.ndarray:
    """Coerce ``data`` to a numpy array of the engine's default dtype."""
    if isinstance(data, np.ndarray):
        if data.dtype == dtype:
            return data
        return data.astype(dtype)
    return np.asarray(data, dtype=dtype)


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that it has ``shape``.

    Numpy broadcasting may have expanded an operand from ``shape`` to
    ``grad.shape`` during the forward pass; the chain rule requires summing
    the incoming gradient over every broadcast dimension.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over dimensions that were 1 in the original shape.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array plus the bookkeeping needed for backpropagation."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Tuple["Tensor", ...] = (),
        name: Optional[str] = None,
    ) -> None:
        self.data = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents = _parents
        self.name = name

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but outside the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Graph construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _lift(value: ArrayLike) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = grad.copy() if grad.base is not None or grad.flags.writeable is False else grad
        else:
            self.grad = self.grad + grad

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor that does not require grad")
        if grad is None:
            if self.size != 1:
                raise RuntimeError("grad must be supplied for non-scalar outputs")
            grad = np.ones_like(self.data)
        grad = _as_array(grad)
        if grad.shape != self.shape:
            raise ValueError(f"grad shape {grad.shape} does not match tensor shape {self.shape}")

        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = self._lift(other)
        out = Tensor(
            self.data + other.data,
            requires_grad=self.requires_grad or other.requires_grad,
            _parents=(self, other),
        )

        def _backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(unbroadcast(grad, other.shape))

        out._backward = _backward
        return out

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        out = Tensor(-self.data, requires_grad=self.requires_grad, _parents=(self,))

        def _backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        out._backward = _backward
        return out

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-self._lift(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._lift(other) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = self._lift(other)
        out = Tensor(
            self.data * other.data,
            requires_grad=self.requires_grad or other.requires_grad,
            _parents=(self, other),
        )

        def _backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(unbroadcast(grad * self.data, other.shape))

        out._backward = _backward
        return out

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = self._lift(other)
        out = Tensor(
            self.data / other.data,
            requires_grad=self.requires_grad or other.requires_grad,
            _parents=(self, other),
        )

        def _backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(unbroadcast(grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(
                    unbroadcast(-grad * self.data / (other.data ** 2), other.shape)
                )

        out._backward = _backward
        return out

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._lift(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out = Tensor(self.data ** exponent, requires_grad=self.requires_grad, _parents=(self,))

        def _backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        out._backward = _backward
        return out

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other = self._lift(other)
        out = Tensor(
            self.data @ other.data,
            requires_grad=self.requires_grad or other.requires_grad,
            _parents=(self, other),
        )

        def _backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other.data.ndim == 1:
                    self._accumulate(np.outer(grad, other.data) if grad.ndim == 1 else grad[..., None] * other.data)
                else:
                    self._accumulate(unbroadcast(grad @ other.data.swapaxes(-1, -2), self.shape))
            if other.requires_grad:
                if self.data.ndim == 1:
                    other._accumulate(np.outer(self.data, grad))
                else:
                    other._accumulate(unbroadcast(self.data.swapaxes(-1, -2) @ grad, other.shape))

        out._backward = _backward
        return out

    # ------------------------------------------------------------------
    # Elementwise functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        value = np.exp(self.data)
        out = Tensor(value, requires_grad=self.requires_grad, _parents=(self,))

        def _backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * value)

        out._backward = _backward
        return out

    def log(self) -> "Tensor":
        out = Tensor(np.log(self.data), requires_grad=self.requires_grad, _parents=(self,))

        def _backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        out._backward = _backward
        return out

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def tanh(self) -> "Tensor":
        value = np.tanh(self.data)
        out = Tensor(value, requires_grad=self.requires_grad, _parents=(self,))

        def _backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - value ** 2))

        out._backward = _backward
        return out

    def sigmoid(self) -> "Tensor":
        value = 1.0 / (1.0 + np.exp(-self.data))
        out = Tensor(value, requires_grad=self.requires_grad, _parents=(self,))

        def _backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * value * (1.0 - value))

        out._backward = _backward
        return out

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out = Tensor(self.data * mask, requires_grad=self.requires_grad, _parents=(self,))

        def _backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        out._backward = _backward
        return out

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)
        out = Tensor(np.abs(self.data), requires_grad=self.requires_grad, _parents=(self,))

        def _backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * sign)

        out._backward = _backward
        return out

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out = Tensor(
            self.data.sum(axis=axis, keepdims=keepdims),
            requires_grad=self.requires_grad,
            _parents=(self,),
        )

        def _backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                for ax in sorted(a % self.ndim for a in axes):
                    g = np.expand_dims(g, ax)
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        out._backward = _backward
        return out

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a % self.ndim] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        mu = self.mean(axis=axis, keepdims=True)
        sq = (self - mu) ** 2
        return sq.mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        value = self.data.max(axis=axis, keepdims=keepdims)
        out = Tensor(value, requires_grad=self.requires_grad, _parents=(self,))

        def _backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            expanded = self.data.max(axis=axis, keepdims=True)
            mask = self.data == expanded
            counts = mask.sum(axis=axis, keepdims=True)
            g = grad
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                for ax in sorted(a % self.ndim for a in axes):
                    g = np.expand_dims(g, ax)
            self._accumulate(mask * g / counts)

        out._backward = _backward
        return out

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out = Tensor(self.data.reshape(shape), requires_grad=self.requires_grad, _parents=(self,))

        def _backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(self.shape))

        out._backward = _backward
        return out

    def flatten_batch(self) -> "Tensor":
        """Flatten all dimensions except the leading batch dimension."""
        return self.reshape(self.shape[0], -1)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        out = Tensor(self.data.transpose(axes), requires_grad=self.requires_grad, _parents=(self,))
        inverse = np.argsort(axes)

        def _backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        out._backward = _backward
        return out

    def __getitem__(self, index) -> "Tensor":
        out = Tensor(self.data[index], requires_grad=self.requires_grad, _parents=(self,))

        def _backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        out._backward = _backward
        return out

    def pad2d(self, padding: int) -> "Tensor":
        """Zero-pad the last two (spatial) dimensions symmetrically."""
        if padding == 0:
            return self
        pad_width = [(0, 0)] * (self.ndim - 2) + [(padding, padding), (padding, padding)]
        out = Tensor(np.pad(self.data, pad_width), requires_grad=self.requires_grad, _parents=(self,))

        def _backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                slices = [slice(None)] * (self.ndim - 2) + [
                    slice(padding, -padding),
                    slice(padding, -padding),
                ]
                self._accumulate(grad[tuple(slices)])

        out._backward = _backward
        return out


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    tensors = [Tensor._lift(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    requires = any(t.requires_grad for t in tensors)
    out = Tensor(data, requires_grad=requires, _parents=tuple(tensors))
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def _backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                slicer = [slice(None)] * grad.ndim
                slicer[axis] = slice(start, stop)
                tensor._accumulate(grad[tuple(slicer)])

    out._backward = _backward
    return out


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient support."""
    tensors = [Tensor._lift(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)
    requires = any(t.requires_grad for t in tensors)
    out = Tensor(data, requires_grad=requires, _parents=tuple(tensors))

    def _backward(grad: np.ndarray) -> None:
        moved = np.moveaxis(grad, axis, 0)
        for tensor, g in zip(tensors, moved):
            if tensor.requires_grad:
                tensor._accumulate(g)

    out._backward = _backward
    return out


def zeros(shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(shape), requires_grad=requires_grad)


def ones(shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones(shape), requires_grad=requires_grad)
