"""Reverse-mode automatic differentiation over the compute engine.

This module provides the :class:`Tensor` class, a thin autograd wrapper
that records a computation graph and supports backpropagation.  It
replaces the subset of PyTorch functionality the Sub-FedAvg reproduction
needs: elementwise arithmetic with broadcasting, matrix multiplication,
reductions, reshaping and indexing.  Convolution, pooling and batch-norm
live in :mod:`repro.tensor.ops` as dedicated ops with hand-written
backward passes for speed.

Every forward primitive routes through :func:`_apply`, which either runs
the op's reference kernel immediately (the historical **eager** engine,
the default) or records it as a :class:`~repro.engine.lazy.LazyBuffer`
node when a lazy :class:`~repro.engine.ComputeConfig` is active.  In lazy
mode ``Tensor._data`` holds the pending buffer; touching ``.data`` (or
``item()``, ``backward()``, …) realizes it through the scheduler, which
fuses elementwise chains and folds movement ops.  Backward passes are
always eager numpy over realized arrays — intermediates a backward
closure will read are ``keep``-marked at record time so fusion never
hides them, keeping lazy training bit-identical to eager.

Design notes
------------
* Gradients are accumulated into ``Tensor.grad`` as plain numpy arrays.
* The graph is a DAG of tensors; ``backward()`` runs a topological sort and
  calls each node's ``_backward`` closure exactly once.
* Broadcasting in the forward pass is undone in the backward pass by
  :func:`unbroadcast`, which sums gradient over broadcast axes.
* :func:`no_grad` suspends graph recording entirely — evaluation paths
  use it, which also unlocks full fusion (no keep marks, no closures).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Callable, Optional, Sequence, Tuple, Union

import numpy as np

from ..engine.lazy import LazyBuffer
from ..engine.ops import infer_shape, run_kernel
from ..engine.runtime import active_runtime

ArrayLike = Union[np.ndarray, float, int, Sequence]

DEFAULT_DTYPE = np.float64

class _GradMode(threading.local):
    """Per-thread recording flag (the thread backend trains concurrently)."""

    enabled = True


_GRAD_MODE = _GradMode()


def grad_enabled() -> bool:
    """Whether new ops currently record backward closures (this thread)."""
    return _GRAD_MODE.enabled


@contextmanager
def no_grad():
    """Suspend gradient recording (and keep-marking) inside the block.

    Evaluation paths run under this: outputs never require grad, no
    backward closures are attached, and — under a lazy engine — no
    intermediate is pinned for backward, so whole forward passes fuse.
    The flag is thread-local, so a client evaluating on one worker thread
    never disables recording for a client training on another.
    """
    previous = _GRAD_MODE.enabled
    _GRAD_MODE.enabled = False
    try:
        yield
    finally:
        _GRAD_MODE.enabled = previous


def _as_array(data: ArrayLike, dtype=DEFAULT_DTYPE) -> np.ndarray:
    """Coerce ``data`` to a numpy array of the engine's default dtype."""
    if isinstance(data, np.ndarray):
        if data.dtype == dtype:
            return data
        return data.astype(dtype)
    return np.asarray(data, dtype=dtype)


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that it has ``shape``.

    Numpy broadcasting may have expanded an operand from ``shape`` to
    ``grad.shape`` during the forward pass; the chain rule requires summing
    the incoming gradient over every broadcast dimension.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over dimensions that were 1 in the original shape.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _apply(op, args, attrs=None, out_shape=None):
    """Run or record one engine primitive over raw ``_data`` values.

    Eager (no active runtime): executes the reference kernel immediately
    and returns ``(ndarray, saved-or-None)``.  Lazy: builds a
    :class:`LazyBuffer` node and returns ``(buffer, None)`` — saved
    intermediates become available as ``buffer.saved`` after realization.
    """
    runtime = active_runtime()
    if runtime is None:
        host = [a if type(a) is np.ndarray else _value_of(a) for a in args]
        value, saved = run_kernel(op, attrs, host)
        if not isinstance(value, np.ndarray):
            value = np.asarray(value)  # numpy returns scalars for 0-d results
        return value, saved
    if out_shape is None:
        out_shape = infer_shape(op, attrs, [a.shape for a in args])
    srcs = tuple(a if type(a) is LazyBuffer else LazyBuffer.const(a) for a in args)
    return LazyBuffer(op, srcs, attrs, out_shape), None


def _value_of(data) -> np.ndarray:
    """The realized array behind an ``_data`` value (ndarray or buffer)."""
    if type(data) is np.ndarray:
        return data
    realized = data.realized
    return realized if realized is not None else data.realize()


def _saved_of(data):
    """Saved backward intermediates of a recorded op, realizing if needed."""
    if type(data) is not np.ndarray and data.realized is None:
        data.realize()
    return data.saved


def _keep(*tensors: "Tensor") -> None:
    """Pin pending buffers whose values a backward closure will read."""
    for tensor in tensors:
        data = tensor._data
        if type(data) is LazyBuffer:
            data.keep = True


def _make(value, requires: bool, parents: Tuple["Tensor", ...]) -> "Tensor":
    """Fast Tensor construction around an engine result (no coercion)."""
    out = Tensor.__new__(Tensor)
    out._data = value
    out.grad = None
    out.requires_grad = requires
    out._backward = None
    out._parents = parents if requires else ()
    out.name = None
    return out


def _resolve_shape(shape: Tuple[int, ...], size: int) -> Tuple[int, ...]:
    """Resolve a single ``-1`` in a reshape target against ``size``."""
    shape = tuple(int(dim) for dim in shape)
    if -1 in shape:
        known = 1
        for dim in shape:
            if dim != -1:
                known *= dim
        shape = tuple(size // known if dim == -1 else dim for dim in shape)
    return shape


class Tensor:
    """An engine-backed array plus the bookkeeping needed for backpropagation."""

    __slots__ = ("_data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Tuple["Tensor", ...] = (),
        name: Optional[str] = None,
    ) -> None:
        self._data = data if type(data) is LazyBuffer else _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents = _parents
        self.name = name

    # ------------------------------------------------------------------
    # Data access (the engine's realize() point)
    # ------------------------------------------------------------------
    @property
    def data(self) -> np.ndarray:
        """The underlying array, realizing any pending lazy graph."""
        data = self._data
        if type(data) is np.ndarray:
            return data
        realized = data.realized
        return realized if realized is not None else data.realize()

    @data.setter
    def data(self, value) -> None:
        self._data = value if type(value) is LazyBuffer else _as_array(value)

    @property
    def lazy(self) -> bool:
        """Whether this tensor currently holds an unrealized buffer."""
        data = self._data
        return type(data) is LazyBuffer and data.realized is None

    # ------------------------------------------------------------------
    # Introspection (never triggers realization)
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self._data.shape

    @property
    def ndim(self) -> int:
        return self._data.ndim

    @property
    def size(self) -> int:
        return self._data.size

    @property
    def dtype(self):
        return self._data.dtype

    def __len__(self) -> int:
        shape = self._data.shape
        if not shape:
            raise TypeError("len() of unsized object")
        return shape[0]

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        lazy_flag = ", lazy" if self.lazy else ""
        return f"Tensor(shape={self.shape}{grad_flag}{lazy_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy; realizes if lazy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but outside the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def zero_grad(self) -> None:
        self.grad = None

    def realize(self) -> "Tensor":
        """Force any pending lazy computation; returns ``self``."""
        _ = self.data
        return self

    # ------------------------------------------------------------------
    # Graph construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _lift(value: ArrayLike) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            borrowed = grad.base is not None or grad.flags.writeable is False
            self.grad = grad.copy() if borrowed else grad
        else:
            self.grad = self.grad + grad

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor that does not require grad")
        if grad is None:
            if self.size != 1:
                raise RuntimeError("grad must be supplied for non-scalar outputs")
            grad = np.ones_like(self.data)
        grad = _as_array(grad)
        if grad.shape != self.shape:
            raise ValueError(f"grad shape {grad.shape} does not match tensor shape {self.shape}")

        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = self._lift(other)
        value, _ = _apply("add", (self._data, other._data))
        requires = _GRAD_MODE.enabled and (self.requires_grad or other.requires_grad)
        out = _make(value, requires, (self, other))
        if requires:

            def _backward(grad: np.ndarray) -> None:
                if self.requires_grad:
                    self._accumulate(unbroadcast(grad, self.shape))
                if other.requires_grad:
                    other._accumulate(unbroadcast(grad, other.shape))

            out._backward = _backward
        return out

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        value, _ = _apply("neg", (self._data,))
        requires = _GRAD_MODE.enabled and self.requires_grad
        out = _make(value, requires, (self,))
        if requires:

            def _backward(grad: np.ndarray) -> None:
                self._accumulate(-grad)

            out._backward = _backward
        return out

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-self._lift(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._lift(other) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = self._lift(other)
        value, _ = _apply("mul", (self._data, other._data))
        requires = _GRAD_MODE.enabled and (self.requires_grad or other.requires_grad)
        out = _make(value, requires, (self, other))
        if requires:
            if self.requires_grad:
                _keep(other)
            if other.requires_grad:
                _keep(self)

            def _backward(grad: np.ndarray) -> None:
                if self.requires_grad:
                    self._accumulate(unbroadcast(grad * other.data, self.shape))
                if other.requires_grad:
                    other._accumulate(unbroadcast(grad * self.data, other.shape))

            out._backward = _backward
        return out

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = self._lift(other)
        value, _ = _apply("div", (self._data, other._data))
        requires = _GRAD_MODE.enabled and (self.requires_grad or other.requires_grad)
        out = _make(value, requires, (self, other))
        if requires:
            if self.requires_grad:
                _keep(other)
            if other.requires_grad:
                _keep(self, other)

            def _backward(grad: np.ndarray) -> None:
                if self.requires_grad:
                    self._accumulate(unbroadcast(grad / other.data, self.shape))
                if other.requires_grad:
                    other._accumulate(
                        unbroadcast(-grad * self.data / (other.data ** 2), other.shape)
                    )

            out._backward = _backward
        return out

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._lift(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        value, _ = _apply("pow", (self._data,), {"exponent": exponent})
        requires = _GRAD_MODE.enabled and self.requires_grad
        out = _make(value, requires, (self,))
        if requires:
            _keep(self)

            def _backward(grad: np.ndarray) -> None:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

            out._backward = _backward
        return out

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other = self._lift(other)
        value, _ = _apply("matmul", (self._data, other._data))
        requires = _GRAD_MODE.enabled and (self.requires_grad or other.requires_grad)
        out = _make(value, requires, (self, other))
        if requires:
            if self.requires_grad:
                _keep(other)
            if other.requires_grad:
                _keep(self)

            def _backward(grad: np.ndarray) -> None:
                if self.requires_grad:
                    if other.ndim == 1:
                        if grad.ndim == 1:
                            self._accumulate(np.outer(grad, other.data))
                        else:
                            self._accumulate(grad[..., None] * other.data)
                    else:
                        self._accumulate(unbroadcast(grad @ other.data.swapaxes(-1, -2), self.shape))
                if other.requires_grad:
                    if self.ndim == 1:
                        other._accumulate(np.outer(self.data, grad))
                    else:
                        other._accumulate(unbroadcast(self.data.swapaxes(-1, -2) @ grad, other.shape))

            out._backward = _backward
        return out

    # ------------------------------------------------------------------
    # Elementwise functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        value, _ = _apply("exp", (self._data,))
        requires = _GRAD_MODE.enabled and self.requires_grad
        out = _make(value, requires, (self,))
        if requires:
            _keep(out)

            def _backward(grad: np.ndarray) -> None:
                self._accumulate(grad * _value_of(value))

            out._backward = _backward
        return out

    def log(self) -> "Tensor":
        value, _ = _apply("log", (self._data,))
        requires = _GRAD_MODE.enabled and self.requires_grad
        out = _make(value, requires, (self,))
        if requires:
            _keep(self)

            def _backward(grad: np.ndarray) -> None:
                self._accumulate(grad / self.data)

            out._backward = _backward
        return out

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def tanh(self) -> "Tensor":
        value, _ = _apply("tanh", (self._data,))
        requires = _GRAD_MODE.enabled and self.requires_grad
        out = _make(value, requires, (self,))
        if requires:
            _keep(out)

            def _backward(grad: np.ndarray) -> None:
                forward = _value_of(value)
                self._accumulate(grad * (1.0 - forward ** 2))

            out._backward = _backward
        return out

    def sigmoid(self) -> "Tensor":
        value, _ = _apply("sigmoid", (self._data,))
        requires = _GRAD_MODE.enabled and self.requires_grad
        out = _make(value, requires, (self,))
        if requires:
            _keep(out)

            def _backward(grad: np.ndarray) -> None:
                forward = _value_of(value)
                self._accumulate(grad * forward * (1.0 - forward))

            out._backward = _backward
        return out

    def relu(self) -> "Tensor":
        value, _ = _apply("relu", (self._data,))
        requires = _GRAD_MODE.enabled and self.requires_grad
        out = _make(value, requires, (self,))
        if requires:
            _keep(self)

            def _backward(grad: np.ndarray) -> None:
                self._accumulate(grad * (self.data > 0))

            out._backward = _backward
        return out

    def abs(self) -> "Tensor":
        value, _ = _apply("abs", (self._data,))
        requires = _GRAD_MODE.enabled and self.requires_grad
        out = _make(value, requires, (self,))
        if requires:
            _keep(self)

            def _backward(grad: np.ndarray) -> None:
                self._accumulate(grad * np.sign(self.data))

            out._backward = _backward
        return out

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        value, _ = _apply("sum", (self._data,), {"axis": axis, "keepdims": keepdims})
        requires = _GRAD_MODE.enabled and self.requires_grad
        out = _make(value, requires, (self,))
        if requires:

            def _backward(grad: np.ndarray) -> None:
                g = grad
                if axis is not None and not keepdims:
                    axes = axis if isinstance(axis, tuple) else (axis,)
                    for ax in sorted(a % self.ndim for a in axes):
                        g = np.expand_dims(g, ax)
                self._accumulate(np.broadcast_to(g, self.shape).copy())

            out._backward = _backward
        return out

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a % self.ndim] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        mu = self.mean(axis=axis, keepdims=True)
        sq = (self - mu) ** 2
        return sq.mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        value, _ = _apply("max", (self._data,), {"axis": axis, "keepdims": keepdims})
        requires = _GRAD_MODE.enabled and self.requires_grad
        out = _make(value, requires, (self,))
        if requires:
            _keep(self)

            def _backward(grad: np.ndarray) -> None:
                expanded = self.data.max(axis=axis, keepdims=True)
                mask = self.data == expanded
                counts = mask.sum(axis=axis, keepdims=True)
                g = grad
                if axis is not None and not keepdims:
                    axes = axis if isinstance(axis, tuple) else (axis,)
                    for ax in sorted(a % self.ndim for a in axes):
                        g = np.expand_dims(g, ax)
                self._accumulate(mask * g / counts)

            out._backward = _backward
        return out

    # ------------------------------------------------------------------
    # Shape manipulation (movement ops: folded to views, never kernels)
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        resolved = _resolve_shape(shape, self.size)
        value, _ = _apply("reshape", (self._data,), {"shape": resolved}, resolved)
        requires = _GRAD_MODE.enabled and self.requires_grad
        out = _make(value, requires, (self,))
        if requires:

            def _backward(grad: np.ndarray) -> None:
                self._accumulate(grad.reshape(self.shape))

            out._backward = _backward
        return out

    def flatten_batch(self) -> "Tensor":
        """Flatten all dimensions except the leading batch dimension."""
        return self.reshape(self.shape[0], -1)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        out_shape = tuple(self.shape[a] for a in axes)
        value, _ = _apply("transpose", (self._data,), {"axes": axes}, out_shape)
        requires = _GRAD_MODE.enabled and self.requires_grad
        out = _make(value, requires, (self,))
        inverse = np.argsort(axes)
        if requires:

            def _backward(grad: np.ndarray) -> None:
                self._accumulate(grad.transpose(inverse))

            out._backward = _backward
        return out

    def expand(self, *shape) -> "Tensor":
        """Broadcast to ``shape`` without copying (a movement op)."""
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        shape = tuple(int(dim) for dim in shape)
        value, _ = _apply("expand", (self._data,), {"shape": shape}, shape)
        requires = _GRAD_MODE.enabled and self.requires_grad
        out = _make(value, requires, (self,))
        if requires:

            def _backward(grad: np.ndarray) -> None:
                self._accumulate(unbroadcast(grad, self.shape))

            out._backward = _backward
        return out

    def __getitem__(self, index) -> "Tensor":
        value, _ = _apply("getitem", (self._data,), {"index": index})
        requires = _GRAD_MODE.enabled and self.requires_grad
        out = _make(value, requires, (self,))
        if requires:

            def _backward(grad: np.ndarray) -> None:
                full = np.zeros(self.shape, dtype=DEFAULT_DTYPE)
                np.add.at(full, index, grad)
                self._accumulate(full)

            out._backward = _backward
        return out

    def pad2d(self, padding: int) -> "Tensor":
        """Zero-pad the last two (spatial) dimensions symmetrically."""
        if padding == 0:
            return self
        value, _ = _apply("pad2d", (self._data,), {"padding": padding})
        requires = _GRAD_MODE.enabled and self.requires_grad
        out = _make(value, requires, (self,))
        if requires:

            def _backward(grad: np.ndarray) -> None:
                slices = [slice(None)] * (self.ndim - 2) + [
                    slice(padding, -padding),
                    slice(padding, -padding),
                ]
                self._accumulate(grad[tuple(slices)])

            out._backward = _backward
        return out


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    tensors = [Tensor._lift(t) for t in tensors]
    value, _ = _apply("concat", tuple(t._data for t in tensors), {"axis": axis})
    requires = _GRAD_MODE.enabled and any(t.requires_grad for t in tensors)
    out = _make(value, requires, tuple(tensors))
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)
    if requires:

        def _backward(grad: np.ndarray) -> None:
            for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                if tensor.requires_grad:
                    slicer = [slice(None)] * grad.ndim
                    slicer[axis] = slice(start, stop)
                    tensor._accumulate(grad[tuple(slicer)])

        out._backward = _backward
    return out


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient support."""
    tensors = [Tensor._lift(t) for t in tensors]
    value, _ = _apply("stack", tuple(t._data for t in tensors), {"axis": axis})
    requires = _GRAD_MODE.enabled and any(t.requires_grad for t in tensors)
    out = _make(value, requires, tuple(tensors))
    if requires:

        def _backward(grad: np.ndarray) -> None:
            moved = np.moveaxis(grad, axis, 0)
            for tensor, g in zip(tensors, moved):
                if tensor.requires_grad:
                    tensor._accumulate(g)

        out._backward = _backward
    return out


def zeros(shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(shape), requires_grad=requires_grad)


def ones(shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones(shape), requires_grad=requires_grad)
