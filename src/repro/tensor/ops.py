"""Structured ops with hand-written backward passes.

Convolution, max-pooling and batch normalization are implemented as single
graph nodes rather than compositions of primitive tensor ops.  This keeps the
autograd graph small and the numpy work vectorized, which matters because the
federated experiments train hundreds of client models.

Forward values route through the compute engine (:mod:`repro.engine`) like
the primitive tensor ops do: under a lazy compute config they record as
single graph nodes whose kernels stash *saved* intermediates (im2col
columns, pool argmax, softmax) on the buffer for the backward closures.
Two deliberate eager islands remain:

* :func:`batch_norm` mutates its running statistics in place at call time
  (PyTorch semantics), so deferring it would defer the statistics update —
  it synchronizes its input and executes immediately.
* :func:`dropout` draws its mask from the caller's RNG at call time to
  preserve the eager engine's stream consumption order exactly; only the
  masking multiply itself is recorded.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..engine.ops import col2im, im2col  # noqa: F401  (re-exported, historical home)
from .tensor import Tensor, _apply, _make, _saved_of, grad_enabled


def _conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    return (size + 2 * padding - kernel) // stride + 1


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """2-D cross-correlation of ``x`` ``(N, C, H, W)`` with ``weight`` ``(F, C, kh, kw)``."""
    batch, in_channels, height, width = x.shape
    out_channels, weight_channels, kernel_h, kernel_w = weight.shape
    if in_channels != weight_channels:
        raise ValueError(
            f"input has {in_channels} channels but weight expects {weight_channels}"
        )
    out_h = _conv_output_size(height, kernel_h, stride, padding)
    out_w = _conv_output_size(width, kernel_w, stride, padding)
    if out_h <= 0 or out_w <= 0:
        raise ValueError("convolution output size is non-positive; check kernel/stride/padding")

    out_shape = (batch, out_channels, out_h, out_w)
    attrs = {"stride": stride, "padding": padding, "out_shape": out_shape}
    args = (x._data, weight._data) if bias is None else (x._data, weight._data, bias._data)
    value, saved = _apply("conv2d", args, attrs, out_shape)

    parents = (x, weight) if bias is None else (x, weight, bias)
    requires = grad_enabled() and any(p.requires_grad for p in parents)
    out = _make(value, requires, parents)
    if requires:

        def _backward(grad: np.ndarray) -> None:
            stash = saved if saved is not None else _saved_of(value)
            cols, w2d, padded_shape = stash["cols"], stash["w2d"], stash["padded_shape"]
            grad2d = grad.reshape(batch, out_channels, out_h * out_w)
            if bias is not None and bias.requires_grad:
                bias._accumulate(grad.sum(axis=(0, 2, 3)))
            if weight.requires_grad:
                grad_w = np.einsum("nfl,nkl->fk", grad2d, cols, optimize=True)
                weight._accumulate(grad_w.reshape(weight.shape))
            if x.requires_grad:
                grad_cols = np.einsum("fk,nfl->nkl", w2d, grad2d, optimize=True)
                grad_padded = col2im(
                    grad_cols, padded_shape, kernel_h, kernel_w, stride, out_h, out_w
                )
                if padding:
                    grad_x = grad_padded[:, :, padding:-padding, padding:-padding]
                else:
                    grad_x = grad_padded
                x._accumulate(grad_x)

        out._backward = _backward
    return out


def max_pool2d(x: Tensor, kernel: int = 2, stride: Optional[int] = None) -> Tensor:
    """Max pooling over ``(N, C, H, W)`` with square windows."""
    if stride is None:
        stride = kernel
    batch, channels, height, width = x.shape
    out_h = (height - kernel) // stride + 1
    out_w = (width - kernel) // stride + 1

    out_shape = (batch, channels, out_h, out_w)
    attrs = {"kernel": kernel, "stride": stride, "out_shape": out_shape}
    value, saved = _apply("max_pool2d", (x._data,), attrs, out_shape)

    requires = grad_enabled() and x.requires_grad
    out = _make(value, requires, (x,))
    if requires:

        def _backward(grad: np.ndarray) -> None:
            argmax = (saved if saved is not None else _saved_of(value))["argmax"]
            grad_x = np.zeros(x.shape)
            for idx in range(kernel * kernel):
                i, j = divmod(idx, kernel)
                mask = argmax == idx
                if not mask.any():
                    continue
                i_end = i + stride * out_h
                j_end = j + stride * out_w
                grad_x[:, :, i:i_end:stride, j:j_end:stride] += grad * mask
            x._accumulate(grad_x)

        out._backward = _backward
    return out


def batch_norm(
    x: Tensor,
    gamma: Tensor,
    beta: Tensor,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    training: bool,
    momentum: float = 0.1,
    eps: float = 1e-5,
) -> Tensor:
    """Batch normalization over the channel axis of ``(N, C)`` or ``(N, C, H, W)``.

    ``running_mean`` / ``running_var`` are updated in place during training,
    mirroring PyTorch semantics (exponential moving average with ``momentum``).
    The in-place statistics update is why this op is an eager island: it
    synchronizes ``x`` and executes immediately even under a lazy engine.
    """
    if x.ndim == 4:
        axes = (0, 2, 3)
        shape = (1, -1, 1, 1)
        count = x.shape[0] * x.shape[2] * x.shape[3]
    elif x.ndim == 2:
        axes = (0,)
        shape = (1, -1)
        count = x.shape[0]
    else:
        raise ValueError(f"batch_norm expects 2-D or 4-D input, got {x.ndim}-D")

    if training:
        mean = x.data.mean(axis=axes)
        var = x.data.var(axis=axes)
        if count > 1:
            unbiased = var * count / (count - 1)
        else:
            unbiased = var
        running_mean *= 1.0 - momentum
        running_mean += momentum * mean
        running_var *= 1.0 - momentum
        running_var += momentum * unbiased
    else:
        mean = running_mean
        var = running_var

    # Clamp to non-negative: running_var loaded from an untrusted state dict
    # (e.g. a corrupted federated upload) may be negative, and NaNs here
    # would silently poison every downstream activation.
    inv_std = 1.0 / np.sqrt(np.maximum(var, 0.0) + eps)
    x_hat = (x.data - mean.reshape(shape)) * inv_std.reshape(shape)
    result = gamma.data.reshape(shape) * x_hat + beta.data.reshape(shape)

    parents = (x, gamma, beta)
    requires = grad_enabled() and any(p.requires_grad for p in parents)
    out = _make(result, requires, parents)
    if requires:

        def _backward(grad: np.ndarray) -> None:
            if beta.requires_grad:
                beta._accumulate(grad.sum(axis=axes))
            if gamma.requires_grad:
                gamma._accumulate((grad * x_hat).sum(axis=axes))
            if not x.requires_grad:
                return
            g = gamma.data.reshape(shape)
            if training:
                grad_xhat = grad * g
                sum_grad = grad_xhat.sum(axis=axes, keepdims=True)
                sum_grad_xhat = (grad_xhat * x_hat).sum(axis=axes, keepdims=True)
                grad_x = (
                    inv_std.reshape(shape)
                    / count
                    * (count * grad_xhat - sum_grad - x_hat * sum_grad_xhat)
                )
            else:
                grad_x = grad * g * inv_std.reshape(shape)
            x._accumulate(grad_x)

        out._backward = _backward
    return out


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    value, saved = _apply("log_softmax", (x._data,), {"axis": axis}, x.shape)
    requires = grad_enabled() and x.requires_grad
    out = _make(value, requires, (x,))
    if requires:

        def _backward(grad: np.ndarray) -> None:
            softmax = (saved if saved is not None else _saved_of(value))["softmax"]
            x._accumulate(grad - softmax * grad.sum(axis=axis, keepdims=True))

        out._backward = _backward
    return out


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Softmax along ``axis`` (computed through :func:`log_softmax`)."""
    return log_softmax(x, axis=axis).exp()


def nll_loss(log_probs: Tensor, targets: np.ndarray) -> Tensor:
    """Negative log-likelihood of integer ``targets`` under ``log_probs``."""
    targets = np.asarray(targets)
    batch = log_probs.shape[0]
    value, _ = _apply("nll_loss", (log_probs._data,), {"targets": targets}, ())
    requires = grad_enabled() and log_probs.requires_grad
    out = _make(value, requires, (log_probs,))
    if requires:

        def _backward(grad: np.ndarray) -> None:
            full = np.zeros(log_probs.shape)
            full[np.arange(batch), targets] = -1.0 / batch
            log_probs._accumulate(full * grad)

        out._backward = _backward
    return out


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Softmax cross-entropy between ``logits`` ``(N, K)`` and integer targets."""
    return nll_loss(log_softmax(logits, axis=-1), targets)


def dropout(x: Tensor, rate: float, rng: np.random.Generator, training: bool) -> Tensor:
    """Inverted dropout; identity when not training or ``rate == 0``.

    The mask is drawn eagerly (RNG stream order must not depend on the
    compute engine); only the multiply is recorded.
    """
    if not training or rate <= 0.0:
        return x
    keep = 1.0 - rate
    mask = (rng.random(x.shape) < keep) / keep
    value, _ = _apply("mul", (x._data, mask))
    requires = grad_enabled() and x.requires_grad
    out = _make(value, requires, (x,))
    if requires:

        def _backward(grad: np.ndarray) -> None:
            x._accumulate(grad * mask)

        out._backward = _backward
    return out
