"""Reverse-mode autograd engine on numpy (the reproduction's PyTorch stand-in).

Forward execution is delegated to :mod:`repro.engine` — eager reference
kernels by default, lazy graph recording with fusion under a
``compute: {engine: lazy}`` run config.
"""

from .tensor import (
    Tensor,
    concat,
    grad_enabled,
    no_grad,
    ones,
    stack,
    unbroadcast,
    zeros,
)
from .ops import (
    batch_norm,
    conv2d,
    cross_entropy,
    dropout,
    im2col,
    col2im,
    log_softmax,
    max_pool2d,
    nll_loss,
    softmax,
)
from .gradcheck import check_gradients, numerical_gradient

__all__ = [
    "Tensor",
    "concat",
    "stack",
    "zeros",
    "ones",
    "unbroadcast",
    "no_grad",
    "grad_enabled",
    "conv2d",
    "max_pool2d",
    "batch_norm",
    "log_softmax",
    "softmax",
    "nll_loss",
    "cross_entropy",
    "dropout",
    "im2col",
    "col2im",
    "check_gradients",
    "numerical_gradient",
]
