"""Finite-difference gradient checking for the autograd engine.

Used by the test suite to verify every op and layer against central
differences.  Runs in float64 (the engine default) so the usual ``1e-5``
step size gives ~1e-7 accuracy on smooth ops.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor


def numerical_gradient(
    func: Callable[[], Tensor], tensor: Tensor, eps: float = 1e-5
) -> np.ndarray:
    """Central-difference gradient of ``func()`` (a scalar) w.r.t. ``tensor``."""
    grad = np.zeros_like(tensor.data)
    flat = tensor.data.ravel()
    grad_flat = grad.ravel()
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = func().item()
        flat[i] = original - eps
        minus = func().item()
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def check_gradients(
    func: Callable[[], Tensor],
    tensors: Sequence[Tensor],
    eps: float = 1e-5,
    atol: float = 1e-5,
    rtol: float = 1e-4,
) -> bool:
    """Compare analytic and numerical gradients of ``func`` for ``tensors``.

    ``func`` must rebuild the graph on every call (it is invoked repeatedly
    with perturbed leaf data).  Raises ``AssertionError`` with a diagnostic
    message on mismatch; returns ``True`` on success.
    """
    for tensor in tensors:
        tensor.zero_grad()
    output = func()
    output.backward()
    for index, tensor in enumerate(tensors):
        if not tensor.requires_grad:
            continue
        analytic = tensor.grad if tensor.grad is not None else np.zeros_like(tensor.data)
        numeric = numerical_gradient(func, tensor, eps=eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = np.abs(analytic - numeric).max()
            raise AssertionError(
                f"gradient mismatch for tensor #{index} (shape {tensor.shape}): "
                f"max abs error {worst:.3e}"
            )
    return True
