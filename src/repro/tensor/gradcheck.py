"""Finite-difference gradient checking for the autograd engine.

Used by the test suite to verify every op and layer against central
differences.  Runs in float64 (the engine default) so the usual ``1e-5``
step size gives ~1e-7 accuracy on smooth ops.

For expensive ops (convolution over even a small batch has thousands of
inputs, each costing two forward passes), ``max_checks`` samples a seeded
random subset of entries instead of sweeping all of them — the check
stays deterministic while its cost becomes O(max_checks) forward pairs.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from .tensor import Tensor


def numerical_gradient(
    func: Callable[[], Tensor],
    tensor: Tensor,
    eps: float = 1e-5,
    max_checks: Optional[int] = None,
    seed: int = 0,
) -> np.ndarray:
    """Central-difference gradient of ``func()`` (a scalar) w.r.t. ``tensor``.

    With ``max_checks`` set and smaller than ``tensor.size``, only a seeded
    random sample of entries is perturbed; unchecked entries are NaN in the
    returned array (callers compare only where finite).
    """
    grad = np.full(tensor.shape, np.nan, dtype=tensor.data.dtype)
    flat = tensor.data.ravel()
    grad_flat = grad.ravel()
    if max_checks is not None and max_checks < flat.size:
        rng = np.random.default_rng(seed)
        indices = rng.choice(flat.size, size=max_checks, replace=False)
    else:
        indices = range(flat.size)
    for i in indices:
        original = flat[i]
        flat[i] = original + eps
        plus = func().item()
        flat[i] = original - eps
        minus = func().item()
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def check_gradients(
    func: Callable[[], Tensor],
    tensors: Sequence[Tensor],
    eps: float = 1e-5,
    atol: float = 1e-5,
    rtol: float = 1e-4,
    max_checks: Optional[int] = None,
    seed: int = 0,
) -> bool:
    """Compare analytic and numerical gradients of ``func`` for ``tensors``.

    ``func`` must rebuild the graph on every call (it is invoked repeatedly
    with perturbed leaf data).  Raises ``AssertionError`` with a diagnostic
    message on mismatch; returns ``True`` on success.  ``max_checks``
    bounds the number of entries checked per tensor (seeded sampling).
    """
    for tensor in tensors:
        tensor.zero_grad()
    output = func()
    output.backward()
    for index, tensor in enumerate(tensors):
        if not tensor.requires_grad:
            continue
        analytic = tensor.grad if tensor.grad is not None else np.zeros_like(tensor.data)
        numeric = numerical_gradient(
            func, tensor, eps=eps, max_checks=max_checks, seed=seed
        )
        checked = np.isfinite(numeric)
        if not np.allclose(analytic[checked], numeric[checked], atol=atol, rtol=rtol):
            worst = np.abs(analytic[checked] - numeric[checked]).max()
            raise AssertionError(
                f"gradient mismatch for tensor #{index} (shape {tensor.shape}): "
                f"max abs error {worst:.3e}"
            )
    return True
