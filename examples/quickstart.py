#!/usr/bin/env python3
"""Quickstart: train Sub-FedAvg (Un) on a small non-IID MNIST federation.

Runs in well under a minute on a laptop CPU.  Demonstrates the canonical
``Federation`` API: a serializable :class:`FederationConfig` describes the
run, ``Federation.from_config`` builds clients + trainer through the
algorithm registry, and lifecycle callbacks observe every round as it
happens.  The config is written to ``quickstart.json``, so the exact run
can be replayed later with ``python -m repro run --config quickstart.json``.

Usage::

    python examples/quickstart.py
"""

from repro.federated import (
    Federation,
    FederationConfig,
    LocalTrainConfig,
    ProgressLogger,
)
from repro.pruning import UnstructuredConfig


def main() -> None:
    config = FederationConfig(
        dataset="mnist",  # synthetic stand-in; see DESIGN.md §2
        algorithm="sub-fedavg-un",  # Algorithm 1 of the paper (registry name)
        num_clients=10,
        rounds=5,
        sample_fraction=0.5,  # 5 clients per round
        n_train=600,
        n_test=300,
        seed=0,
        local=LocalTrainConfig(lr=0.01, momentum=0.5, batch_size=10, epochs=3),
        unstructured=UnstructuredConfig(
            target_rate=0.5,  # p_us: prune half of all weights, eventually
            step=0.15,  # r_us: 15% more per committed pruning event
            epsilon=1e-4,  # mask-distance gate (paper's value)
            acc_threshold=0.5,  # Acc_th on local validation accuracy
        ),
    )

    # The config is a plain serializable value: saved next to the results,
    # `python -m repro run --config quickstart.json` reproduces this run.
    from pathlib import Path

    Path("quickstart.json").write_text(config.to_json())
    print("run config written to quickstart.json")

    federation = Federation.from_config(config)
    history = federation.run(callbacks=[ProgressLogger()])

    print(f"algorithm: {history.algorithm}")
    print(f"final mean personalized accuracy: {history.final_accuracy:.1%}")
    print(f"total communication: {history.total_communication_gb * 1000:.1f} MB")

    worst = min(history.final_per_client_accuracy.items(), key=lambda kv: kv[1])
    best = max(history.final_per_client_accuracy.items(), key=lambda kv: kv[1])
    print(f"best client:  #{best[0]} at {best[1]:.1%}")
    print(f"worst client: #{worst[0]} at {worst[1]:.1%}")


if __name__ == "__main__":
    main()
