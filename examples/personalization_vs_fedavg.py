#!/usr/bin/env python3
"""Why personalization matters under data heterogeneity (paper's Remark-2).

Reproduces the paper's central motivation at small scale: under a
pathological 2-shard non-IID partition, a single FedAvg global model can be
WORSE for individual clients than training alone, while Sub-FedAvg's
personalized subnetworks recover and beat both.

Compares Standalone, FedAvg and Sub-FedAvg (Un) on the same federation and
prints per-client accuracies so the collapse of the global model is visible
client by client.

Usage::

    python examples/personalization_vs_fedavg.py [dataset]

with ``dataset`` one of mnist / emnist / cifar10 (default mnist).
"""

import sys

from repro.federated import LocalTrainConfig, build_federation
from repro.pruning import UnstructuredConfig

SETTINGS = dict(
    num_clients=10,
    rounds=6,
    sample_fraction=0.5,
    n_train=600,
    n_test=300,
    seed=7,
    local=LocalTrainConfig(epochs=3, batch_size=10),
)


def run(dataset: str, algorithm: str, **extra):
    trainer = build_federation(dataset=dataset, algorithm=algorithm, **SETTINGS, **extra)
    return trainer.run()


def main() -> None:
    dataset = sys.argv[1] if len(sys.argv) > 1 else "mnist"
    print(f"dataset: {dataset} (2 shards per client => ~2 labels each)\n")

    histories = {
        "standalone": run(dataset, "standalone"),
        "fedavg": run(dataset, "fedavg"),
        "sub-fedavg-un": run(
            dataset,
            "sub-fedavg-un",
            unstructured=UnstructuredConfig(target_rate=0.5, step=0.15),
        ),
    }

    print(f"{'client':>8} | " + " | ".join(f"{name:>13}" for name in histories))
    client_ids = sorted(histories["fedavg"].final_per_client_accuracy)
    for client_id in client_ids:
        cells = " | ".join(
            f"{history.final_per_client_accuracy[client_id]:>12.1%}"
            for history in histories.values()
        )
        print(f"{client_id:>8} | {cells}")

    print("-" * 60)
    means = " | ".join(
        f"{history.final_accuracy:>12.1%}" for history in histories.values()
    )
    print(f"{'mean':>8} | {means}")

    standalone = histories["standalone"].final_accuracy
    fedavg = histories["fedavg"].final_accuracy
    sub = histories["sub-fedavg-un"].final_accuracy
    print()
    if fedavg < standalone:
        print(
            "FedAvg's single global model underperforms local training "
            "(the paper's Remark-2) — federation is not worth joining..."
        )
    if sub > fedavg:
        print(
            "...but Sub-FedAvg's personalized subnetworks make federation "
            f"pay off again (+{(sub - fedavg) * 100:.1f} points over FedAvg)."
        )


if __name__ == "__main__":
    main()
