#!/usr/bin/env python3
"""From federated hybrid pruning to an actually-smaller deployed model.

The hybrid algorithm (Sub-FedAvg Hy) prunes whole channels via batch-norm
scales, which the paper motivates with edge deployment: "a compressed
network that can be efficiently inferenced on conventional CNN platforms"
(§3.3).  Masks only *simulate* that; this example completes the story:

1. run a small Sub-FedAvg (Hy) federation,
2. take one client's personal channel mask,
3. **physically compact** the model (channels sliced out of every tensor),
4. verify the compacted network predicts identically to the masked one and
   report the parameter / FLOP savings and measured inference speed-up.

Usage::

    python examples/deploy_compact_model.py
"""

import time

import numpy as np

from repro.data import full_batch
from repro.federated import FederationConfig, LocalTrainConfig, build_trainer, make_clients
from repro.federated.accounting import dense_conv_flops, pruned_conv_flops
from repro.pruning import StructuredConfig, UnstructuredConfig, compact_model, compaction_summary
from repro.tensor import Tensor


def main() -> None:
    config = FederationConfig(
        dataset="mnist",
        algorithm="sub-fedavg-hy",
        num_clients=8,
        rounds=4,
        sample_fraction=1.0,
        n_train=480,
        n_test=240,
        seed=2,
        local=LocalTrainConfig(epochs=3, batch_size=10),
        unstructured=UnstructuredConfig(target_rate=0.5, step=0.25, acc_threshold=0.0),
        structured=StructuredConfig(target_rate=0.4, step=0.2, acc_threshold=0.0),
    )
    clients = make_clients(config)
    trainer = build_trainer(config, clients)
    trainer.run()

    client = max(clients, key=lambda c: c.controller.channel_sparsity())
    channels = client.controller.ch_mask
    print(
        f"client #{client.client_id}: "
        f"{channels.kept_channels()}/{channels.total_channels()} channels kept "
        f"({channels.sparsity():.0%} pruned)"
    )

    compacted = compact_model(client.model, channels)
    summary = compaction_summary(client.model, compacted)
    print(f"parameters: {summary['dense_params']} -> {summary['compact_params']} "
          f"({summary['param_reduction']:.0%} removed)")

    side = 28
    dense_flops = dense_conv_flops(client.model, side)
    compact_flops = pruned_conv_flops(client.model, channels, side)
    print(f"conv FLOPs: {dense_flops} -> {compact_flops} "
          f"({dense_flops / max(compact_flops, 1):.2f}x reduction)")

    # Predictions must match exactly.
    images, labels = full_batch(client.data.test)
    client.model.eval()
    compacted.eval()
    dense_pred = client.model(Tensor(images)).data.argmax(axis=1)
    compact_pred = compacted(Tensor(images)).data.argmax(axis=1)
    assert (dense_pred == compact_pred).all(), "compaction changed predictions!"
    accuracy = (compact_pred == labels).mean()
    print(f"compacted model accuracy on the client's test view: {accuracy:.1%} "
          "(identical to the masked model)")

    # Measured wall-clock inference speed-up.
    def time_model(model, repeats=10):
        start = time.perf_counter()
        for _ in range(repeats):
            model(Tensor(images))
        return (time.perf_counter() - start) / repeats

    dense_time = time_model(client.model)
    compact_time = time_model(compacted)
    print(f"inference: {dense_time * 1000:.1f} ms -> {compact_time * 1000:.1f} ms "
          f"per batch ({dense_time / compact_time:.2f}x speed-up)")


if __name__ == "__main__":
    main()
