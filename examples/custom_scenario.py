#!/usr/bin/env python3
"""A complete third-party scenario: dataset + partitioner + sampler plugins.

Everything the paper's evaluation varies about the *data scenario* —
which dataset, how it is split across clients, who shows up each round —
is a registry.  This example registers one of each with decorators only
(zero edits to ``builder.py``, ``partition.py`` or ``federation.py``) and
runs FedAvg on the result:

* ``rings``        — a new dataset: concentric-ring images, 3 classes,
* ``first-labels`` — a new partitioner: client i owns the lowest labels
                     left after clients 0..i-1 took theirs,
* ``flaky-fleet``  — a new sampler: half the fleet is reliable, half
                     rarely reachable.

Usage::

    python examples/custom_scenario.py
"""

import numpy as np

from repro.data import ArrayDataset
from repro.data.registry import register_dataset, register_partitioner
from repro.data.synthetic import DatasetSpec
from repro.federated import (
    AvailabilitySampler,
    Federation,
    FederationConfig,
    LocalTrainConfig,
    ProgressLogger,
    ScenarioConfig,
)
from repro.federated.scenario import register_sampler


# ----------------------------------------------------------------------
# 1. A new dataset: 12x12 images whose class is the radius of a ring.
# ----------------------------------------------------------------------
@register_dataset(
    DatasetSpec("rings", (1, 12, 12), 3, signal=2.5, noise=1.0, max_shift=0),
    summary="concentric rings, class = ring radius",
)
def load_rings(spec, n_train, n_test, seed):
    yy, xx = np.mgrid[0 : spec.shape[1], 0 : spec.shape[2]]
    radius = np.sqrt((yy - 5.5) ** 2 + (xx - 5.5) ** 2)

    def split(count, offset):
        rng = np.random.default_rng(seed + offset)
        labels = rng.integers(0, spec.num_classes, size=count)
        rings = np.stack(
            [np.abs(radius - (2 + 1.5 * label)) < 0.9 for label in labels]
        )[:, None, :, :]
        images = spec.signal * rings + rng.normal(
            scale=spec.noise, size=(count, *spec.shape)
        )
        return ArrayDataset(images, labels.astype(np.int64))

    return split(n_train, 0), split(n_test, 1)


# ----------------------------------------------------------------------
# 2. A new partitioner: deterministic label blocks, one per client.
# ----------------------------------------------------------------------
@register_partitioner(
    "first-labels",
    params={"k": "labels_per_client"},
    summary="client i owns labels [i*k, i*k + k), wrapping around",
)
def first_labels(labels, num_clients, k=1, rng=None):
    num_classes = int(labels.max()) + 1
    owned = [
        {(i * k + j) % num_classes for j in range(k)} for i in range(num_clients)
    ]
    owners = [
        [client for client in range(num_clients) if label in owned[client]]
        for label in range(num_classes)
    ]
    # Split each label's examples among exactly its owners, so the deal is
    # disjoint and covers every example of every owned label.
    assignments = [[] for _ in range(num_clients)]
    for label, label_owners in enumerate(owners):
        if not label_owners:
            continue
        chunks = np.array_split(np.flatnonzero(labels == label), len(label_owners))
        for client, chunk in zip(label_owners, chunks):
            assignments[client].extend(chunk.tolist())
    return [np.sort(np.asarray(a, dtype=np.int64)) for a in assignments]


# ----------------------------------------------------------------------
# 3. A new participation model: a bimodal (reliable/flaky) fleet.
# ----------------------------------------------------------------------
@register_sampler("flaky-fleet", summary="even clients reliable, odd clients flaky")
def flaky_fleet(num_clients, sample_fraction, seed, scenario):
    probs = [0.95 if i % 2 == 0 else 0.25 for i in range(num_clients)]
    return AvailabilitySampler(
        num_clients,
        sample_fraction,
        seed=seed,
        participation_probs=probs,
        dropout=scenario.dropout,
    )


def main() -> None:
    config = FederationConfig(
        dataset="rings",
        algorithm="fedavg",
        num_clients=6,
        rounds=5,
        sample_fraction=1.0,
        n_train=360,
        n_test=120,
        seed=0,
        local=LocalTrainConfig(lr=0.05, momentum=0.5, batch_size=10, epochs=2),
        partition="first-labels",
        scenario=ScenarioConfig(sampler="flaky-fleet", dropout=0.1),
    )
    history = Federation.from_config(config).run(callbacks=[ProgressLogger()])

    print(f"final mean personalized accuracy: {history.final_accuracy:.1%}")
    attendance = {}
    for record in history.rounds:
        for client in record.sampled_clients:
            attendance[client] = attendance.get(client, 0) + 1
    print("rounds attended per client (even = reliable, odd = flaky):")
    for client in range(config.num_clients):
        print(f"  client {client}: {attendance.get(client, 0)}/{len(history.rounds)}")


if __name__ == "__main__":
    main()
