#!/usr/bin/env python3
"""Federated learning under real-world failure modes (§1.1).

The paper scopes out "availability of the clients, corrupted updates by
the clients" — this example shows the library handling them anyway:

1. 20% of sampled clients drop out of every round,
2. 20% of uploads are replaced with large Gaussian noise (a crashed or
   Byzantine client),
3. clients have heterogeneous compute budgets (1-5 local epochs),

and compares a plain mean aggregator against the coordinate-wise median
under identical faults.

Usage::

    python examples/robust_federation.py
"""

from repro.federated import (
    AvailabilityModel,
    CorruptionModel,
    FederationConfig,
    LocalTrainConfig,
    RobustFedAvg,
    StragglerModel,
    make_clients,
)
from repro.federated.builder import model_factory


def run(aggregation: str):
    config = FederationConfig(
        dataset="mnist",
        algorithm="fedavg",
        num_clients=10,
        rounds=5,
        sample_fraction=0.8,
        n_train=600,
        n_test=300,
        seed=6,
        local=LocalTrainConfig(epochs=3, batch_size=10),
    )
    clients = make_clients(config)
    trainer = RobustFedAvg(
        clients=clients,
        model_fn=model_factory(config),
        rounds=config.rounds,
        sample_fraction=config.sample_fraction,
        seed=config.seed,
        availability=AvailabilityModel(dropout_prob=0.2, seed=1),
        corruption=CorruptionModel(rate=0.2, scale=10.0, seed=2),
        stragglers=StragglerModel(config.num_clients, 1, 5, seed=3),
        aggregation=aggregation,
        # With ~7 participants, trim at least one update from each end
        # (floor(0.2 * 7) = 1); smaller fractions trim nothing.
        trim_fraction=0.2,
    )
    return trainer.run()


def main() -> None:
    print("Faults injected every round: 20% dropout, 20% corrupted uploads,")
    print("heterogeneous 1-5 epoch budgets.\n")
    for aggregation in ("mean", "median", "trimmed"):
        history = run(aggregation)
        participants = [len(record.sampled_clients) for record in history.rounds]
        print(
            f"aggregation={aggregation:>7}: final accuracy "
            f"{history.final_accuracy:.1%} "
            f"(participants per round: {participants})"
        )
    print(
        "\nThe plain mean lets a single corrupted upload poison the global "
        "model; median/trimmed aggregation bound its influence."
    )


if __name__ == "__main__":
    main()
