#!/usr/bin/env python3
"""Communication-cost analysis across algorithms (paper §4.2.2).

Edge devices upload at ~1 MB/s; the paper argues Sub-FedAvg wins twice on
communication: each exchange is smaller (pruned subnetworks + 1-bit masks)
and fewer rounds are needed.  This example measures both effects:

1. runs each algorithm with per-round accuracy evaluation,
2. prints per-round uplink traffic and the accrued total,
3. reports rounds-to-target-accuracy and the projected wall-clock upload
   time at 1 MB/s.

Usage::

    python examples/communication_budget.py
"""

from repro.federated import LocalTrainConfig, build_federation
from repro.pruning import UnstructuredConfig

UPLOAD_BYTES_PER_SECOND = 1e6  # the paper's constrained-edge assumption
TARGET_ACCURACY = 0.75

SETTINGS = dict(
    dataset="mnist",
    num_clients=10,
    rounds=6,
    sample_fraction=0.5,
    n_train=600,
    n_test=300,
    seed=3,
    eval_every=1,
    local=LocalTrainConfig(epochs=3, batch_size=10),
)


def main() -> None:
    algorithms = {
        "fedavg": {},
        "lg-fedavg": {},
        "sub-fedavg-un": {
            "unstructured": UnstructuredConfig(target_rate=0.7, step=0.25)
        },
    }

    results = {}
    for name, extra in algorithms.items():
        trainer = build_federation(algorithm=name, **SETTINGS, **extra)
        results[name] = trainer.run()

    print(f"{'algorithm':>14} | {'total up+down':>13} | {'rounds->' + format(TARGET_ACCURACY, '.0%'):>10} | upload time @1MB/s")
    print("-" * 66)
    for name, history in results.items():
        total_mb = history.total_communication_bytes / 1e6
        uploaded = sum(record.uploaded_bytes for record in history.rounds)
        rounds_needed = history.rounds_to_accuracy(TARGET_ACCURACY)
        rounds_text = str(rounds_needed) if rounds_needed else "never"
        seconds = uploaded / UPLOAD_BYTES_PER_SECOND
        print(
            f"{name:>14} | {total_mb:>10.2f} MB | {rounds_text:>10} | {seconds:>8.1f} s"
        )

    print("\nper-round uplink (MB), showing Sub-FedAvg's shrinking exchanges:")
    for name, history in results.items():
        per_round = ", ".join(
            f"{record.uploaded_bytes / 1e6:.2f}" for record in history.rounds
        )
        print(f"  {name:>14}: {per_round}")


if __name__ == "__main__":
    main()
