#!/usr/bin/env python3
"""A third-party compute backend, plugged in with one decorator.

The tensor layer records ops through :mod:`repro.engine`; under a lazy
``compute:`` config the scheduler dispatches fused kernels to whatever
:class:`Runtime` the registry names.  This example registers a
*counting* runtime — numpy kernels behind an instrumentation shim that
tallies per-op dispatches — then runs the same tiny federation eagerly
and on the custom backend and shows the histories agree bit for bit.

A real accelerator backend implements the same four methods; anything it
does not claim via ``supports`` (and every op with saved backward
intermediates) transparently falls back to the reference kernels, so a
partial backend is still a correct one.

Usage::

    python examples/custom_runtime.py
"""

from collections import Counter

from repro.engine import (
    OPS,
    ComputeConfig,
    Runtime,
    get_runtime,
    register_runtime,
)
from repro.federated import Federation, FederationConfig, LocalTrainConfig


# ----------------------------------------------------------------------
# 1. The backend: numpy execution with a per-op dispatch tally.
# ----------------------------------------------------------------------
@register_runtime("counting", summary="numpy kernels + per-op dispatch tally")
class CountingRuntime(Runtime):
    def __init__(self) -> None:
        self.dispatches: Counter = Counter()

    def supports(self, op: str) -> bool:
        return op in OPS

    def execute(self, op: str, attrs, args):
        self.dispatches[op] += 1
        return OPS[op].kernel(attrs or {}, *args)


# ----------------------------------------------------------------------
# 2. One smoke federation, twice: eager reference vs the new backend.
# ----------------------------------------------------------------------
def tiny_config(compute: ComputeConfig) -> FederationConfig:
    return FederationConfig(
        dataset="mnist",
        algorithm="sub-fedavg-un",
        num_clients=4,
        rounds=2,
        sample_fraction=1.0,
        n_train=160,
        n_test=80,
        seed=0,
        local=LocalTrainConfig(epochs=1, batch_size=10),
        compute=compute,
    )


def main() -> None:
    eager = Federation.from_config(tiny_config(ComputeConfig())).run()
    lazy = Federation.from_config(
        tiny_config(ComputeConfig(engine="lazy", runtime="counting"))
    ).run()

    assert eager.final_accuracy == lazy.final_accuracy, "engines disagree!"
    print(f"final accuracy (both engines, bit-identical): {lazy.final_accuracy:.1%}")

    runtime = get_runtime("counting")
    total = sum(runtime.dispatches.values())
    print(f"\nkernels dispatched to the custom backend: {total}")
    for op, count in runtime.dispatches.most_common(8):
        print(f"  {op:<12} {count:>8}")


if __name__ == "__main__":
    main()
