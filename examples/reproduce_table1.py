#!/usr/bin/env python3
"""Regenerate the paper's Table 1 for one dataset at a chosen scale.

Usage::

    python examples/reproduce_table1.py [dataset] [preset]

``dataset``: mnist / emnist / cifar10 / cifar100 (default mnist)
``preset``:  smoke (seconds-scale, default) / small (minutes) / paper
             (the full 100-client, 500-round protocol — hours on CPU)

Prints the same row structure as Table 1: per-algorithm personalized
accuracy, achieved pruning percentages, and total communication cost.
"""

import sys

from repro.experiments import format_table1, run_table1


def main() -> None:
    dataset = sys.argv[1] if len(sys.argv) > 1 else "mnist"
    preset = sys.argv[2] if len(sys.argv) > 2 else "smoke"
    print(f"Regenerating Table 1 for {dataset!r} at preset {preset!r}...\n")
    rows = run_table1(dataset, preset=preset, seed=0)
    print(format_table1(f"{dataset} ({preset} preset)", rows))
    print(
        "\nShape checks vs the paper: Sub-FedAvg rows should beat fedavg on "
        "accuracy and undercut it on communication; see EXPERIMENTS.md."
    )


if __name__ == "__main__":
    main()
