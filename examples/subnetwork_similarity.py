#!/usr/bin/env python3
"""The Client Subnetwork Observation (paper §3.1).

The paper's key empirical observation: clients whose local data share
labels end up with *similar* pruned subnetworks, without any coordination
or data sharing — the non-IID data alone shapes the masks.  Sub-FedAvg's
intersection averaging exploits exactly this.

This example runs Sub-FedAvg (Un), then compares every pair of clients on:

* label overlap (Jaccard similarity of owned label sets), and
* mask agreement (1 − normalized Hamming distance of their keep-masks),

and reports the correlation between the two.  A positive correlation is
the observation the paper builds on.

Usage::

    python examples/subnetwork_similarity.py
"""

import numpy as np

from repro.data.partition import label_overlap
from repro.federated import LocalTrainConfig, FederationConfig, build_trainer, make_clients
from repro.pruning import UnstructuredConfig, hamming_distance


def main() -> None:
    config = FederationConfig(
        dataset="mnist",
        algorithm="sub-fedavg-un",
        num_clients=12,
        rounds=6,
        sample_fraction=1.0,  # everyone participates: all masks evolve
        n_train=720,
        n_test=300,
        seed=5,
        local=LocalTrainConfig(epochs=3, batch_size=10),
        unstructured=UnstructuredConfig(target_rate=0.6, step=0.2),
    )
    clients = make_clients(config)
    trainer = build_trainer(config, clients)
    trainer.run()

    overlaps, agreements, pairs = [], [], []
    for i in range(len(clients)):
        for j in range(i + 1, len(clients)):
            a, b = clients[i], clients[j]
            overlap = label_overlap(a.data, b.data)
            agreement = 1.0 - hamming_distance(a.mask, b.mask)
            overlaps.append(overlap)
            agreements.append(agreement)
            pairs.append((a.client_id, b.client_id, overlap, agreement))

    print("client pair | label overlap | mask agreement")
    print("-" * 48)
    for i, j, overlap, agreement in sorted(pairs, key=lambda p: -p[2])[:8]:
        print(f"   ({i:2d},{j:2d})   | {overlap:>12.2f} | {agreement:>13.3f}")
    print("   ...")
    for i, j, overlap, agreement in sorted(pairs, key=lambda p: p[2])[:4]:
        print(f"   ({i:2d},{j:2d})   | {overlap:>12.2f} | {agreement:>13.3f}")

    overlaps = np.array(overlaps)
    agreements = np.array(agreements)
    same = agreements[overlaps > 0].mean() if (overlaps > 0).any() else float("nan")
    disjoint = agreements[overlaps == 0].mean() if (overlaps == 0).any() else float("nan")
    print()
    print(f"mean mask agreement, overlapping labels: {same:.4f}")
    print(f"mean mask agreement, disjoint labels:    {disjoint:.4f}")
    if overlaps.std() > 0:
        correlation = np.corrcoef(overlaps, agreements)[0, 1]
        print(f"correlation(label overlap, mask agreement) = {correlation:+.3f}")
        if correlation > 0:
            print("clients with similar data share similar subnetworks (§3.1).")


if __name__ == "__main__":
    main()
