"""Round policies and the FleetSimulator engine."""

import pytest

from repro.federated import (
    EDGE_PHONE,
    History,
    RASPBERRY_PI,
    RoundRecord,
    WallClockModel,
)
from repro.systems import (
    AsyncBufferPolicy,
    DeadlinePolicy,
    Fleet,
    FleetSimulator,
    SynchronousPolicy,
    SystemsConfig,
    UPLOAD_DONE,
    build_round_policy,
    build_timelines,
)

TWO_TIER = Fleet(cycle=(EDGE_PHONE, RASPBERRY_PI))


def record(index, clients, up=1e6, down=1e6, accuracy=None, per_client=None):
    rec = RoundRecord(
        round_index=index,
        sampled_clients=list(clients),
        train_loss=1.0,
        mean_accuracy=accuracy,
        uploaded_bytes=up,
        downloaded_bytes=down,
    )
    if per_client is not None:
        rec.client_uploaded_bytes = {cid: b for cid, (b, _) in per_client.items()}
        rec.client_downloaded_bytes = {cid: b for cid, (_, b) in per_client.items()}
    return rec


def history(records):
    run = History(algorithm="x")
    for rec in records:
        run.append(rec)
    return run


def simulator(policy, fleet=TWO_TIER, **kwargs):
    defaults = dict(
        flops_per_example=1e6,
        examples_per_round=100,
        server_overhead_seconds=0.5,
        seed=0,
    )
    defaults.update(kwargs)
    return FleetSimulator(fleet, policy, **defaults)


class TestSynchronousParity:
    """The pinned regression: sync policy == legacy WallClockModel, bitwise."""

    def legacy_model(self, overhead=0.5):
        return WallClockModel(
            (EDGE_PHONE, RASPBERRY_PI),
            flops_per_example=1e6,
            examples_per_round=100,
            server_overhead_seconds=overhead,
        )

    def test_even_split_history_matches_bit_for_bit(self):
        run = history(
            [record(i, clients=[0, 1, 2], up=2e6, down=3e6) for i in range(1, 6)]
        )
        report = simulator(SynchronousPolicy()).simulate(run)
        assert report.total_seconds == self.legacy_model().total_seconds(run)

    def test_per_client_traffic_history_matches_bit_for_bit(self):
        per_client = {0: (4e5, 1e6), 1: (3.7e6, 2e6), 5: (9e5, 1.5e6)}
        run = history(
            [
                record(
                    1, clients=[0, 1, 5], up=5e6, down=4.5e6, per_client=per_client
                )
            ]
        )
        report = simulator(SynchronousPolicy()).simulate(run)
        assert report.total_seconds == self.legacy_model().total_seconds(run)

    def test_per_round_seconds_match_too(self):
        run = history([record(1, clients=[0, 3]), record(2, clients=[1])])
        report = simulator(SynchronousPolicy()).simulate(run)
        model = self.legacy_model()
        for outcome, rec in zip(report.outcomes, run.rounds):
            assert outcome.round_seconds == model.round_seconds(rec)

    def test_no_stragglers_under_synchrony(self):
        run = history([record(1, clients=[0, 1, 2, 3])])
        report = simulator(SynchronousPolicy()).simulate(run)
        assert report.total_stragglers == 0


class TestDeadlinePolicy:
    def test_slow_tier_misses_a_tight_deadline(self):
        # Pi clients (odd ids) need ~1.4 s; phones ~0.75 s at these bytes.
        run = history([record(1, clients=[0, 1, 2, 3], up=1.6e6, down=1.6e6)])
        report = simulator(DeadlinePolicy(1.0)).simulate(run)
        (outcome,) = report.outcomes
        assert set(outcome.stragglers) == {1, 3}
        assert outcome.round_seconds == pytest.approx(1.5)  # deadline + overhead

    def test_straggler_deliveries_are_excluded_not_discounted(self):
        # Even split over two clients: the phone (id 0) needs ~0.86 s, the
        # Pi (id 1) ~1.5 s, so a 1-second deadline drops only the Pi.
        run = history([record(1, clients=[0, 1], up=1.0e6, down=1.0e6)])
        report = simulator(DeadlinePolicy(1.0)).simulate(run)
        (outcome,) = report.outcomes
        delivered = {d.client_id for d in outcome.deliveries}
        assert delivered == {0}
        assert all(d.weight == 1.0 for d in outcome.deliveries)

    def test_round_closes_early_when_everyone_makes_it(self):
        run = history([record(1, clients=[0, 2], up=1e5, down=1e5)])
        relaxed = simulator(DeadlinePolicy(100.0)).simulate(run)
        sync = simulator(SynchronousPolicy()).simulate(run)
        assert relaxed.total_seconds == sync.total_seconds

    def test_requires_positive_deadline(self):
        with pytest.raises(ValueError):
            DeadlinePolicy(0.0)
        with pytest.raises(ValueError):
            SystemsConfig(round_policy="deadline")  # deadline_seconds unset


class TestAsyncBufferPolicy:
    def test_round_closes_on_kth_arrival(self):
        run = history([record(1, clients=[0, 1, 2, 3], up=1.6e6, down=1.6e6)])
        report = simulator(AsyncBufferPolicy(buffer_size=2)).simulate(run)
        (outcome,) = report.outcomes
        delivered = {d.client_id for d in outcome.deliveries}
        assert delivered == {0, 2}  # the two phones arrive first
        assert set(outcome.stragglers) == {1, 3}
        sync = simulator(SynchronousPolicy()).simulate(run)
        assert report.total_seconds < sync.total_seconds

    def test_stragglers_carry_over_and_deliver_stale(self):
        engine = simulator(AsyncBufferPolicy(buffer_size=2))
        engine.observe(record(1, clients=[0, 1, 2, 3], up=1.6e6, down=1.6e6))
        assert set(engine.in_flight) == {1, 3}
        # Next round samples fresh phones; the in-flight Pi uploads are
        # still pending and land as carried, staleness-discounted
        # deliveries in a later round.
        outcome = engine.observe(record(2, clients=[4, 6], up=1.6e6, down=1.6e6))
        carried = [d for d in outcome.deliveries if d.round_started == 1]
        assert carried, "in-flight uploads never landed"
        assert all(d.staleness == 1 for d in carried)
        assert all(d.weight == pytest.approx(2 ** -0.5) for d in carried)

    def test_busy_clients_do_not_restart(self):
        engine = simulator(AsyncBufferPolicy(buffer_size=2))
        engine.observe(record(1, clients=[0, 1, 2, 3], up=1.6e6, down=1.6e6))
        plan = engine.plan_round(
            2, [1, 4], {1: (1.6e6, 1.6e6), 4: (1.6e6, 1.6e6)}
        )
        assert plan.busy == (1,)
        assert plan.started == (4,)
        engine.complete_round(None)

    def test_all_busy_round_restarts_everyone(self):
        engine = simulator(AsyncBufferPolicy(buffer_size=1))
        engine.observe(record(1, clients=[0, 1, 2, 3], up=1.6e6, down=1.6e6))
        busy = sorted(engine.in_flight)
        plan = engine.plan_round(
            2, busy, {cid: (1.6e6, 1.6e6) for cid in busy}
        )
        assert plan.busy == ()
        assert plan.started == tuple(busy)
        engine.complete_round(None)

    def test_staleness_weight_formula(self):
        policy = AsyncBufferPolicy(buffer_size=1, staleness_exponent=0.5)
        assert policy.weight(0) == 1.0
        assert policy.weight(3) == pytest.approx(0.5)

    def test_auto_buffer_is_half_the_arrivals(self):
        run = history([record(1, clients=[0, 1, 2, 3])])
        report = simulator(AsyncBufferPolicy(buffer_size=0)).simulate(run)
        assert len(report.outcomes[0].deliveries) == 2


class TestDeterminism:
    def test_simulate_twice_identical_outcomes_and_trace(self):
        run = history(
            [record(i, clients=[0, 1, 2, 3], up=1.6e6, down=1.6e6) for i in range(1, 5)]
        )
        engine = simulator(AsyncBufferPolicy(buffer_size=2))
        first, second = engine.simulate(run), engine.simulate(run)
        assert first.trace == second.trace
        assert first.round_seconds == second.round_seconds
        assert [o.deliveries for o in first.outcomes] == [
            o.deliveries for o in second.outcomes
        ]

    def test_jitter_is_seed_deterministic(self):
        run = history([record(i, clients=[0, 1, 2]) for i in range(1, 4)])
        a = simulator(SynchronousPolicy(), jitter=0.3, seed=7).simulate(run)
        b = simulator(SynchronousPolicy(), jitter=0.3, seed=7).simulate(run)
        c = simulator(SynchronousPolicy(), jitter=0.3, seed=8).simulate(run)
        assert a.round_seconds == b.round_seconds
        assert a.round_seconds != c.round_seconds

    def test_upload_events_drain_in_arrival_order(self):
        # Scalar pricing schedules one event per client phase; the vector
        # path keeps the heap for cross-round carries only.
        run = history([record(1, clients=[0, 1, 2, 3])])
        report = simulator(SynchronousPolicy(), pricing="scalar").simulate(run)
        uploads = [e for e in report.trace if e.kind == UPLOAD_DONE]
        assert len(uploads) == 4
        assert [e.time for e in uploads] == sorted(e.time for e in uploads)

    def test_vector_pricing_drops_per_phase_events(self):
        run = history([record(1, clients=[0, 1, 2, 3])])
        vector = simulator(SynchronousPolicy()).simulate(run)
        scalar = simulator(SynchronousPolicy(), pricing="scalar").simulate(run)
        assert vector.trace == ()
        assert vector.round_seconds == scalar.round_seconds


class TestEngineProtocol:
    def test_dangling_plan_self_heals(self):
        engine = simulator(SynchronousPolicy())
        engine.plan_round(1, [0, 1], {0: (1e6, 1e6), 1: (1e6, 1e6)})
        # A second plan without completing the first must not stall time.
        engine.plan_round(2, [0, 1], {0: (1e6, 1e6), 1: (1e6, 1e6)})
        assert engine.clock.now > 0.0
        assert len(engine.outcomes) == 1
        engine.complete_round(None)

    def test_complete_without_plan_raises(self):
        with pytest.raises(RuntimeError):
            simulator(SynchronousPolicy()).complete_round(None)

    def test_repriced_late_delivery_leaves_no_stale_events(self):
        """A planned-delivered client whose actual bytes push its finish
        past the close must not leak events into the next round's trace."""
        engine = simulator(DeadlinePolicy(1.0), pricing="scalar")
        # Estimate says client 0 (phone) makes the deadline easily...
        engine.plan_round(1, [0], {0: (1e5, 1e5)})
        # ...but the recorded actuals blow way past it.
        late = record(1, clients=[0], per_client={0: (8e6, 8e6)})
        engine.complete_round(late)
        outcome = engine.observe(record(2, clients=[2], up=1e5, down=1e5))
        assert all(e.round_index == 2 for e in outcome.events)
        assert len(engine.clock) == 0

    def test_completion_reprices_from_the_record(self):
        engine = simulator(SynchronousPolicy())
        estimate = {0: (1e5, 1e5)}
        engine.plan_round(1, [0], estimate)
        actual = record(1, clients=[0], per_client={0: (8e6, 8e6)})
        outcome = engine.complete_round(actual)
        # Actual bytes are 80x the estimate; the recorded time reflects them.
        assert outcome.round_seconds > 8.0

    def test_build_round_policy_from_config(self):
        policy = build_round_policy(
            SystemsConfig(round_policy="async-buffer", buffer_size=3)
        )
        assert isinstance(policy, AsyncBufferPolicy)
        assert policy.buffer_size == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            simulator(SynchronousPolicy(), flops_per_example=0)
        with pytest.raises(ValueError):
            simulator(SynchronousPolicy(), jitter=1.5)
        with pytest.raises(KeyError):
            SystemsConfig(round_policy="psychic")


class TestTimelines:
    def test_phases_priced_from_profile_rates(self):
        (timeline,) = build_timelines(
            Fleet(cycle=(EDGE_PHONE,)),
            round_index=1,
            start=0.0,
            client_ids=[0],
            traffic={0: (1e6, 8e6)},
            flops_per_example=1e6,
            examples_per_round=100,
        )
        assert timeline.upload_seconds == pytest.approx(1.0)  # 1 MB at 1 MB/s
        assert timeline.download_seconds == pytest.approx(1.0)  # 8 MB at 8 MB/s
        assert timeline.compute_seconds == pytest.approx(0.3)
        assert timeline.finish == pytest.approx(2.3)

    def test_missing_traffic_prices_compute_only(self):
        (timeline,) = build_timelines(
            Fleet(cycle=(EDGE_PHONE,)),
            round_index=1,
            start=0.0,
            client_ids=[9],
            traffic={},
            flops_per_example=1e6,
            examples_per_round=100,
        )
        assert timeline.upload_seconds == 0.0
        assert timeline.duration == pytest.approx(0.3)
