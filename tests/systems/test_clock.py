"""SimClock: ordering, stable tie-breaking, tracing, determinism."""

import pytest

from repro.systems import (
    COMPUTE_DONE,
    DOWNLOAD_DONE,
    UPLOAD_DONE,
    Event,
    SimClock,
)


class TestEvent:
    def test_orders_by_time_then_seq(self):
        early = Event(time=1.0, seq=5, kind=UPLOAD_DONE)
        late = Event(time=2.0, seq=0, kind=UPLOAD_DONE)
        tie_a = Event(time=2.0, seq=1, kind=UPLOAD_DONE)
        assert early < late < tie_a

    def test_rejects_unknown_kind_and_negative_time(self):
        with pytest.raises(ValueError):
            Event(time=0.0, seq=0, kind="teleport")
        with pytest.raises(ValueError):
            Event(time=-1.0, seq=0, kind=UPLOAD_DONE)


class TestSimClock:
    def test_pop_advances_now_in_time_order(self):
        clock = SimClock()
        clock.schedule(2.0, UPLOAD_DONE, client_id=1)
        clock.schedule(1.0, DOWNLOAD_DONE, client_id=2)
        first = clock.pop()
        assert (first.kind, first.client_id, clock.now) == (DOWNLOAD_DONE, 2, 1.0)
        second = clock.pop()
        assert (second.kind, clock.now) == (UPLOAD_DONE, 2.0)

    def test_simultaneous_events_drain_in_schedule_order(self):
        clock = SimClock()
        for client_id in (3, 1, 2):  # deliberately not sorted by id
            clock.schedule(1.0, UPLOAD_DONE, client_id=client_id)
        drained = [clock.pop().client_id for _ in range(3)]
        assert drained == [3, 1, 2]

    def test_pop_until_drains_inclusive_and_advances(self):
        clock = SimClock()
        clock.schedule(1.0, DOWNLOAD_DONE)
        clock.schedule(2.0, COMPUTE_DONE)
        clock.schedule(3.0, UPLOAD_DONE)
        drained = clock.pop_until(2.0)
        assert [event.kind for event in drained] == [DOWNLOAD_DONE, COMPUTE_DONE]
        assert clock.now == 2.0
        assert len(clock) == 1  # the upload stays queued

    def test_trace_records_every_pop(self):
        clock = SimClock()
        clock.schedule(1.0, DOWNLOAD_DONE, client_id=7)
        clock.pop_until(5.0)
        assert [event.client_id for event in clock.trace] == [7]

    def test_cannot_schedule_into_the_past(self):
        clock = SimClock()
        clock.schedule(1.0, UPLOAD_DONE)
        clock.pop()
        with pytest.raises(ValueError):
            clock.schedule_at(0.5, UPLOAD_DONE)

    def test_discard_removes_only_that_client(self):
        clock = SimClock()
        clock.schedule(1.0, UPLOAD_DONE, client_id=1)
        clock.schedule(2.0, UPLOAD_DONE, client_id=2)
        clock.schedule(3.0, COMPUTE_DONE, client_id=1)
        assert clock.discard(1) == 2
        assert [event.client_id for event in clock.pop_until(10.0)] == [2]

    def test_same_seed_same_rng_stream(self):
        a, b = SimClock(seed=42), SimClock(seed=42)
        assert list(a.rng.random(4)) == list(b.rng.random(4))

    def test_identical_schedules_produce_identical_traces(self):
        def drive(clock):
            clock.schedule(1.0, DOWNLOAD_DONE, client_id=0, round_index=1)
            clock.schedule(1.0, DOWNLOAD_DONE, client_id=1, round_index=1)
            clock.schedule(2.5, UPLOAD_DONE, client_id=0, round_index=1)
            clock.pop_until(3.0)
            return list(clock.trace)

        assert drive(SimClock(seed=0)) == drive(SimClock(seed=0))
