"""Fleet shapes: the registry, round-robin parity, scenario wiring."""

import pytest

from repro.federated import AvailabilitySampler, ScenarioConfig, WallClockModel
from repro.systems import (
    DEVICE_PROFILES,
    EDGE_PHONE,
    RASPBERRY_PI,
    WORKSTATION,
    Fleet,
    available_fleets,
    build_fleet,
    get_fleet,
    register_fleet,
    unregister_fleet,
)


class TestFleet:
    def test_cycle_reproduces_the_historical_modulo_rule(self):
        profiles = (EDGE_PHONE, RASPBERRY_PI, WORKSTATION)
        fleet = Fleet(cycle=profiles)
        for client_id in range(10):
            assert fleet.profile_for(client_id) is profiles[client_id % 3]

    def test_assignments_win_then_cycle_takes_over(self):
        fleet = Fleet(cycle=(EDGE_PHONE,), assignments=(WORKSTATION, RASPBERRY_PI))
        assert fleet.profile_for(0) is WORKSTATION
        assert fleet.profile_for(1) is RASPBERRY_PI
        assert fleet.profile_for(2) is EDGE_PHONE

    def test_needs_at_least_one_profile(self):
        with pytest.raises(ValueError):
            Fleet(cycle=())

    def test_device_classes_deduplicated_in_order(self):
        fleet = Fleet(cycle=(RASPBERRY_PI, EDGE_PHONE, RASPBERRY_PI))
        assert fleet.device_classes() == ("raspberry-pi", "edge-phone")


class TestRegistry:
    def test_builtin_shapes_registered(self):
        assert set(available_fleets()) >= {"tiers", "uniform", "profile-list"}

    def test_unknown_fleet_raises_with_choices(self):
        with pytest.raises(KeyError, match="tiers"):
            get_fleet("armada")

    def test_register_and_unregister_roundtrip(self):
        @register_fleet("test-everyone-pi", summary="all raspberry-pi")
        def _factory(num_clients, scenario):
            return Fleet(cycle=(RASPBERRY_PI,))

        try:
            fleet = build_fleet(
                ScenarioConfig(fleet="test-everyone-pi"), num_clients=4
            )
            assert fleet.profile_for(3) is RASPBERRY_PI
        finally:
            unregister_fleet("test-everyone-pi")
        assert "test-everyone-pi" not in available_fleets()

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_fleet("tiers")(lambda n, s: Fleet())


class TestScenarioWiring:
    def test_tiers_uses_scenario_profiles_round_robin(self):
        scenario = ScenarioConfig(profiles=("workstation", "raspberry-pi"))
        fleet = scenario.build_fleet(num_clients=4)
        assert fleet.profile_for(0) is WORKSTATION
        assert fleet.profile_for(1) is RASPBERRY_PI
        assert fleet.profile_for(2) is WORKSTATION

    def test_tiers_defaults_to_edge_phone(self):
        fleet = ScenarioConfig().build_fleet(num_clients=3)
        assert fleet.profile_for(2) is EDGE_PHONE

    def test_uniform_takes_first_profile_only(self):
        scenario = ScenarioConfig(
            fleet="uniform", profiles=("raspberry-pi", "workstation")
        )
        fleet = scenario.build_fleet(num_clients=5)
        assert all(fleet.profile_for(i) is RASPBERRY_PI for i in range(5))

    def test_profile_list_is_explicit_per_client(self):
        scenario = ScenarioConfig(
            fleet="profile-list",
            client_profiles=("workstation", "edge-phone", "raspberry-pi"),
        )
        fleet = scenario.build_fleet(num_clients=3)
        assert [fleet.profile_for(i).name for i in range(3)] == [
            "workstation", "edge-phone", "raspberry-pi",
        ]

    def test_profile_list_requires_enough_entries(self):
        scenario = ScenarioConfig(
            fleet="profile-list", client_profiles=("edge-phone",)
        )
        with pytest.raises(ValueError, match="1 device classes for 2 clients"):
            scenario.build_fleet(num_clients=2)

    def test_unknown_profile_name_raises(self):
        with pytest.raises(KeyError, match="edge-phone"):
            ScenarioConfig(profiles=("quantum-phone",)).build_fleet(num_clients=2)

    def test_unknown_fleet_name_rejected_at_config_time(self):
        with pytest.raises(KeyError):
            ScenarioConfig(fleet="armada")

    def test_scenario_fleet_fields_json_roundtrip(self):
        from repro.federated import FederationConfig

        config = FederationConfig(
            dataset="mnist",
            algorithm="fedavg",
            num_clients=3,
            rounds=1,
            n_train=60,
            n_test=30,
            scenario=ScenarioConfig(
                fleet="profile-list",
                client_profiles=("edge-phone", "raspberry-pi", "workstation"),
                diurnal_amplitude=0.5,
            ),
        )
        assert FederationConfig.from_json(config.to_json()) == config


class TestSharedAssignment:
    """The satellite: one Fleet feeds both pricing and availability."""

    def test_wall_clock_model_delegates_to_the_fleet(self):
        profiles = (EDGE_PHONE, WORKSTATION)
        model = WallClockModel(
            profiles, flops_per_example=1e6, examples_per_round=100
        )
        fleet = Fleet(cycle=profiles)
        for client_id in range(6):
            assert model.profile_for(client_id) is fleet.profile_for(client_id)

    def test_wall_clock_model_accepts_a_fleet_directly(self):
        fleet = Fleet(cycle=(RASPBERRY_PI,))
        model = WallClockModel(fleet, flops_per_example=1e6, examples_per_round=10)
        assert model.profile_for(0) is RASPBERRY_PI

    def test_availability_sampler_consumes_the_same_fleet(self):
        fleet = Fleet(cycle=(EDGE_PHONE, RASPBERRY_PI))
        sampler = AvailabilitySampler(
            num_clients=6,
            sample_fraction=1.0,
            seed=0,
            fleet=fleet,
            profile_participation={"raspberry-pi": 0.25, "edge-phone": 0.95},
        )
        # Probabilities follow the fleet's assignment, not a private map.
        for client_id in range(6):
            expected = 0.95 if fleet.profile_for(client_id) is EDGE_PHONE else 0.25
            assert sampler.participation_probs[client_id] == pytest.approx(expected)

    def test_legacy_profiles_argument_still_works(self):
        sampler = AvailabilitySampler(
            num_clients=4,
            sample_fraction=1.0,
            seed=0,
            profiles=[EDGE_PHONE, RASPBERRY_PI],
            profile_participation={"raspberry-pi": 0.3},
        )
        assert sampler.participation_probs[1] == pytest.approx(0.3)
        assert sampler.participation_probs[3] == pytest.approx(0.3)

    def test_device_profiles_reexported_from_simulation(self):
        from repro.federated import simulation

        assert simulation.DEVICE_PROFILES is DEVICE_PROFILES
        assert simulation.EDGE_PHONE is EDGE_PHONE
