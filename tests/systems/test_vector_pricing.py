"""Vectorized round pricing: the numpy batch path vs the scalar loop.

The contract under test is *bit-for-bit* equivalence: a simulator built
with ``pricing="vector"`` (the default) must produce exactly the plans,
outcomes, clock positions and in-flight sets of the legacy per-client
scalar path — same floats, not approximately-same floats — and a
federation backed by a :class:`~repro.federated.pool.ClientPool` must
reproduce eager-client histories exactly, evictions and all.
"""

import numpy as np
import pytest

from repro.federated import (
    EDGE_PHONE,
    Federation,
    FederationConfig,
    RASPBERRY_PI,
    ScenarioConfig,
    SystemsConfig,
    WORKSTATION,
)
from repro.systems import (
    AsyncBufferPolicy,
    DeadlinePolicy,
    Fleet,
    FleetSimulator,
    HierarchicalFleet,
    LazyDeliveries,
    RoundPolicy,
    SynchronousPolicy,
    build_round_timelines,
    build_timelines,
)
from repro.systems.rounds import Delivery

THREE_TIER = Fleet(cycle=(EDGE_PHONE, RASPBERRY_PI, WORKSTATION))

POLICIES = {
    "synchronous": lambda: SynchronousPolicy(),
    "deadline": lambda: DeadlinePolicy(2.0),
    "async-buffer": lambda: AsyncBufferPolicy(buffer_size=2),
}


def build_simulator(policy_factory, pricing, jitter=0.0, fleet=THREE_TIER):
    return FleetSimulator(
        fleet,
        policy_factory(),
        flops_per_example=1e6,
        examples_per_round=100,
        server_overhead_seconds=0.5,
        jitter=jitter,
        seed=7,
        pricing=pricing,
    )


def traffic_for(cohort):
    """Skewed per-client bytes so re-pricing is not a no-op."""
    return {cid: (1e6 + cid * 3e5, 2e6 + cid * 1e5) for cid in cohort}


#: Overlapping cohorts so async rounds carry work across boundaries.
COHORTS = [(0, 1, 2, 3), (2, 3, 4, 5), (0, 4, 5, 6), (1, 2, 6, 7), (0, 1, 2, 3)]


def drive(simulator):
    """Plan + complete the fixed cohort schedule; return all plans/outcomes."""
    plans, outcomes = [], []
    for round_index, cohort in enumerate(COHORTS, start=1):
        plans.append(
            simulator.plan_round(round_index, cohort, traffic_for(cohort))
        )
        outcomes.append(simulator.complete_round(None))
    return plans, outcomes


@pytest.mark.parametrize("jitter", [0.0, 0.2], ids=["no-jitter", "jitter"])
@pytest.mark.parametrize("policy", sorted(POLICIES))
class TestVectorScalarParity:
    def test_plans_and_outcomes_identical(self, policy, jitter):
        vector = build_simulator(POLICIES[policy], "vector", jitter=jitter)
        scalar = build_simulator(POLICIES[policy], "scalar", jitter=jitter)
        assert vector.pricing == "vector" and scalar.pricing == "scalar"
        vec_plans, vec_outcomes = drive(vector)
        sca_plans, sca_outcomes = drive(scalar)
        for vec, sca in zip(vec_plans, sca_plans):
            assert vec.started == sca.started
            assert vec.busy == sca.busy
            assert vec.stragglers == sca.stragglers
            # LazyDeliveries compares elementwise against Delivery tuples.
            assert vec.deliveries == sca.deliveries
            assert vec.close_seconds == sca.close_seconds
            assert vec.round_seconds == sca.round_seconds
        for vec, sca in zip(vec_outcomes, sca_outcomes):
            assert vec.close_seconds == sca.close_seconds
            assert vec.round_seconds == sca.round_seconds
        # Same clock, same totals, same carried in-flight set — bitwise.
        assert vector.clock.now == scalar.clock.now
        assert vector.total_seconds == scalar.total_seconds
        assert sorted(vector.in_flight) == sorted(scalar.in_flight)
        for cid, timeline in vector.in_flight.items():
            assert timeline.finish == scalar.in_flight[cid].finish

    def test_jitter_streams_share_rng_positions(self, policy, jitter):
        """Both modes must consume identical RNG positions per plan, so
        interleaving modes (or switching mid-run via fresh()) never shifts
        the seed for later rounds."""
        vector = build_simulator(POLICIES[policy], "vector", jitter=jitter)
        scalar = build_simulator(POLICIES[policy], "scalar", jitter=jitter)
        drive(vector)
        drive(scalar)
        assert (
            vector.clock.rng.bit_generator.state
            == scalar.clock.rng.bit_generator.state
        )


class TestRoundTimelines:
    def test_batch_timelines_match_scalar_bitwise(self):
        cohort = tuple(range(17))
        traffic = traffic_for(cohort)
        batch = build_round_timelines(
            THREE_TIER, 3, 12.5, cohort, traffic, 1e6, 100.0
        )
        scalar = build_timelines(THREE_TIER, 3, 12.5, cohort, traffic, 1e6, 100.0)
        assert len(batch) == len(scalar)
        for position, timeline in enumerate(scalar):
            view = batch.view(position)
            assert view.client_id == timeline.client_id
            assert view.download_seconds == timeline.download_seconds
            assert view.compute_seconds == timeline.compute_seconds
            assert view.upload_seconds == timeline.upload_seconds
            assert view.duration == timeline.duration
            assert view.finish == timeline.finish

    def test_jitter_factors_match_scalar_bitwise(self):
        cohort = (0, 1, 2, 3, 4)
        traffic = traffic_for(cohort)
        rng = np.random.default_rng(11)
        draws = rng.uniform(0.8, 1.2, size=len(cohort))
        batch = build_round_timelines(
            THREE_TIER, 1, 0.0, cohort, traffic, 1e6, 100.0, jitter_factors=draws
        )
        factors = {cid: float(f) for cid, f in zip(cohort, draws)}
        scalar = build_timelines(
            THREE_TIER, 1, 0.0, cohort, traffic, 1e6, 100.0, jitter_factors=factors
        )
        for position, timeline in enumerate(scalar):
            assert batch.view(position).duration == timeline.duration

    def test_uniform_traffic_pair_matches_per_client_map(self):
        cohort = (0, 1, 2, 3)
        pair = build_round_timelines(
            THREE_TIER, 1, 0.0, cohort, (2e6, 3e6), 1e6, 100.0
        )
        mapped = build_round_timelines(
            THREE_TIER, 1, 0.0, cohort, {cid: (2e6, 3e6) for cid in cohort},
            1e6, 100.0,
        )
        assert np.array_equal(pair.durations, mapped.durations)


class TestLazyDeliveries:
    def test_sequence_protocol_and_equality(self):
        lazy = LazyDeliveries(
            np.array([3, 1]), np.array([2, 1]), np.array([0, 1]),
            np.array([1.0, 0.5]),
        )
        assert len(lazy) == 2
        assert lazy[0] == Delivery(3, 2, 0, 1.0)
        assert lazy[-1] == Delivery(1, 1, 1, 0.5)
        assert lazy[0:2] == (Delivery(3, 2, 0, 1.0), Delivery(1, 1, 1, 0.5))
        assert lazy == (Delivery(3, 2, 0, 1.0), Delivery(1, 1, 1, 0.5))
        assert lazy != (Delivery(3, 2, 0, 1.0),)
        assert lazy.id_set == frozenset({1, 3})
        assert lazy.weight_for(1) == 0.5
        assert lazy.weight_for(99) == 0.0


class TestThirdPartyPolicyFallback:
    def test_policy_without_batch_path_downgrades_to_scalar(self):
        class LegacyPolicy(RoundPolicy):
            name = "legacy"

            def decide(self, round_index, start, fresh, carried):
                raise NotImplementedError

        simulator = FleetSimulator(
            THREE_TIER, LegacyPolicy(), flops_per_example=1e6,
            examples_per_round=100, pricing="vector",
        )
        assert simulator.pricing == "scalar"

    def test_unknown_pricing_mode_rejected(self):
        with pytest.raises(ValueError, match="pricing"):
            FleetSimulator(
                THREE_TIER, SynchronousPolicy(), flops_per_example=1e6,
                examples_per_round=100, pricing="turbo",
            )


class TestHierarchicalFleet:
    def test_contention_caps_upload_rates(self):
        fleet = HierarchicalFleet(
            cycle=(EDGE_PHONE,), regions=2,
            region_uplink_bytes_per_second=1.5e6,
        )
        # Four clients, two per cell: each gets 0.75 MB/s of backhaul,
        # below the 1 MB/s device uplink.
        rates = fleet.upload_rates((0, 1, 2, 3))
        assert np.all(rates == 0.75e6)
        # A lone client per cell gets the full backhaul, capped by device.
        assert np.all(fleet.upload_rates((0, 1)) == 1e6)

    def test_vector_and_scalar_price_contention_identically(self):
        fleet = HierarchicalFleet(
            cycle=(EDGE_PHONE, RASPBERRY_PI), regions=2,
            region_uplink_bytes_per_second=1.2e6,
        )
        vector = build_simulator(
            POLICIES["deadline"], "vector", jitter=0.2, fleet=fleet
        )
        scalar = build_simulator(
            POLICIES["deadline"], "scalar", jitter=0.2, fleet=fleet
        )
        _, vec_outcomes = drive(vector)
        _, sca_outcomes = drive(scalar)
        assert [o.round_seconds for o in vec_outcomes] == [
            o.round_seconds for o in sca_outcomes
        ]

    def test_crowded_cells_slow_the_round(self):
        uncontended = Fleet(cycle=(EDGE_PHONE,))
        contended = HierarchicalFleet(
            cycle=(EDGE_PHONE,), regions=1,
            region_uplink_bytes_per_second=1e6,
        )
        cohort = tuple(range(8))
        free = build_round_timelines(
            uncontended, 1, 0.0, cohort, (1e6, 1e6), 1e6, 100.0
        )
        shared = build_round_timelines(
            contended, 1, 0.0, cohort, (1e6, 1e6), 1e6, 100.0
        )
        # Eight phones share one 1 MB/s cell: uploads take 8x longer.
        assert shared.max_duration() > free.max_duration()
        assert np.all(shared.upload_seconds == free.upload_seconds * 8.0)

    def test_registry_factory_validates_scenario(self):
        scenario = ScenarioConfig(
            fleet="hierarchical", regions=3,
            region_uplink_bytes_per_second=2e6,
        )
        fleet = scenario.build_fleet(num_clients=12)
        assert isinstance(fleet, HierarchicalFleet)
        assert fleet.regions == 3
        with pytest.raises(ValueError, match="regions"):
            ScenarioConfig(fleet="hierarchical").build_fleet(num_clients=4)
        with pytest.raises(ValueError, match="uplink"):
            ScenarioConfig(fleet="hierarchical", regions=2).build_fleet(
                num_clients=4
            )

    def test_hierarchical_federation_run_end_to_end(self):
        config = FederationConfig(
            dataset="mnist",
            algorithm="fedavg",
            num_clients=6,
            rounds=2,
            sample_fraction=0.5,
            seed=0,
            n_train=240,
            n_test=120,
            scenario=ScenarioConfig(
                profiles=("edge-phone", "raspberry-pi"),
                fleet="hierarchical",
                regions=2,
                region_uplink_bytes_per_second=5e5,
            ),
            systems=SystemsConfig(
                flops_per_example=1e6, examples_per_round=100.0
            ),
        )
        result = Federation.from_config(config).run()
        assert len(result.rounds) == 2
        assert all(r.simulated_seconds > 0 for r in result.rounds)
        # Hash round-trips with the hierarchical scenario fields present.
        restored = FederationConfig.from_json(config.to_json())
        assert restored.stable_hash() == config.stable_hash()


class TestHashGating:
    def base(self, **overrides):
        settings = dict(
            dataset="mnist", algorithm="fedavg", num_clients=6, rounds=2,
            seed=0, n_train=240, n_test=120,
        )
        settings.update(overrides)
        return FederationConfig(**settings)

    def test_pool_defaults_absent_from_canonical_payload(self):
        payload = self.base()._canonical_dict()
        assert "client_cache" not in payload
        assert "state_store" not in payload

    def test_non_default_pool_knobs_join_the_hash(self):
        default = self.base()
        assert (
            self.base(client_cache=8).stable_hash() != default.stable_hash()
        )
        assert (
            self.base(state_store="file").stable_hash() != default.stable_hash()
        )

    def test_pricing_default_absent_from_systems_payload(self):
        config = self.base(
            systems=SystemsConfig(flops_per_example=1e6, examples_per_round=100.0)
        )
        assert "pricing" not in config._canonical_dict()["systems"]
        scalar = self.base(
            systems=SystemsConfig(
                flops_per_example=1e6, examples_per_round=100.0,
                pricing="scalar",
            )
        )
        assert "pricing" in scalar._canonical_dict()["systems"]
        assert scalar.stable_hash() != config.stable_hash()

    def test_hierarchical_scenario_fields_gated(self):
        plain = self.base(scenario=ScenarioConfig())._canonical_dict()
        assert "regions" not in plain.get("scenario", {})
