"""Fleet simulation end to end: configs, runs, records, reporting."""

import dataclasses
import json

import numpy as np
import pytest

from repro.federated import (
    DiurnalSampler,
    Federation,
    FederationConfig,
    FleetSimCallback,
    ScenarioConfig,
    SystemsConfig,
    WallClockModel,
)
from repro.federated.builder import build_fleet_simulator
from repro.systems import SimClock
from repro.systems.report import (
    simulated_time_curve,
    simulated_time_to_accuracy,
    total_stragglers,
)
from repro.utils.serialization import history_from_dict, history_to_dict

#: Two-tier fleet + pinned pricing: phones finish one round in ~0.75 s,
#: Pis in ~1.4 s, so a 1-second deadline reliably drops the Pi tier.
SCENARIO = ScenarioConfig(profiles=("edge-phone", "raspberry-pi"))
PRICING = dict(flops_per_example=1e6, examples_per_round=100.0)


def tiny_config(algorithm="fedavg", systems=None, **overrides):
    base = dict(
        dataset="mnist",
        algorithm=algorithm,
        num_clients=6,
        rounds=3,
        sample_fraction=0.5,
        seed=0,
        eval_every=1,
        n_train=240,
        n_test=120,
        scenario=SCENARIO,
        systems=systems,
    )
    base.update(overrides)
    return FederationConfig(**base)


def run(config):
    return Federation.from_config(config).run()


class TestConfigPlumbing:
    def test_systems_section_json_roundtrip(self):
        config = tiny_config(
            systems=SystemsConfig(
                round_policy="deadline", deadline_seconds=1.0, **PRICING
            )
        )
        restored = FederationConfig.from_json(config.to_json())
        assert restored == config
        assert restored.systems.deadline_seconds == 1.0

    def test_systems_section_accepts_plain_mapping(self):
        config = tiny_config(
            systems={"round_policy": "async-buffer", "buffer_size": 2}
        )
        assert isinstance(config.systems, SystemsConfig)
        assert config.systems.buffer_size == 2

    def test_configs_without_systems_hash_unchanged(self):
        with_section = tiny_config(
            systems=SystemsConfig(round_policy="synchronous", **PRICING)
        )
        without = tiny_config(systems=None)
        assert with_section.stable_hash() != without.stable_hash()
        # The canonical payload of a systems-free config must not even
        # mention the section (that is what keeps old hashes stable).
        assert "systems" not in without._canonical_dict()

    def test_post_pr4_scenario_fields_hash_only_when_set(self):
        base = tiny_config(scenario=ScenarioConfig(sampler="availability"))
        payload = base._canonical_dict()["scenario"]
        assert "fleet" not in payload and "diurnal_amplitude" not in payload
        tweaked = tiny_config(
            scenario=ScenarioConfig(sampler="availability", fleet="uniform")
        )
        assert "fleet" in tweaked._canonical_dict()["scenario"]
        assert tweaked.stable_hash() != base.stable_hash()

    def test_builder_derives_pricing_from_the_run(self):
        simulator = build_fleet_simulator(
            tiny_config(systems=SystemsConfig()), num_clients=6
        )
        assert simulator.flops_per_example > 0
        # 240 examples over 6 clients at the trainer's epoch budget.
        assert simulator.examples_per_round >= 40


class TestLiveRuns:
    def test_sync_systems_run_matches_plain_run_exactly(self):
        """The simulator must observe, not perturb, synchronous training."""
        plain = run(tiny_config(systems=None))
        simulated = run(
            tiny_config(systems=SystemsConfig(round_policy="synchronous", **PRICING))
        )
        assert simulated.final_accuracy == plain.final_accuracy
        assert simulated.final_per_client_accuracy == plain.final_per_client_accuracy
        assert [r.train_loss for r in simulated.rounds] == [
            r.train_loss for r in plain.rounds
        ]

    def test_records_annotated_with_simulated_time(self):
        result = run(
            tiny_config(systems=SystemsConfig(round_policy="synchronous", **PRICING))
        )
        assert all(r.simulated_seconds is not None for r in result.rounds)
        assert result.total_simulated_seconds > 0

    def test_deadline_produces_zero_weight_stragglers(self):
        result = run(
            tiny_config(
                systems=SystemsConfig(
                    round_policy="deadline", deadline_seconds=1.0, **PRICING
                )
            )
        )
        assert total_stragglers(result) > 0
        # Deadline rounds are capped at deadline + overhead.
        assert all(r.simulated_seconds <= 1.5 + 1e-9 for r in result.rounds)

    def test_policies_produce_differing_deterministic_time_curves(self):
        def curve(policy, **params):
            config = tiny_config(
                algorithm="sub-fedavg-un",
                systems=SystemsConfig(round_policy=policy, **params, **PRICING),
            )
            return simulated_time_curve(run(config))

        sync = curve("synchronous")
        deadline = curve("deadline", deadline_seconds=1.0)
        buffered = curve("async-buffer", buffer_size=2)
        assert sync != deadline != buffered
        # Seed determinism: an identical rebuild reproduces each curve.
        assert curve("deadline", deadline_seconds=1.0) == deadline
        assert curve("async-buffer", buffer_size=2) == buffered

    def test_compressed_trainer_honors_the_plan(self):
        """fedavg-compressed delegates to the plan-aware aggregation."""
        result = run(
            tiny_config(
                algorithm="fedavg-compressed",
                systems=SystemsConfig(
                    round_policy="deadline", deadline_seconds=1.0, **PRICING
                ),
            )
        )
        assert total_stragglers(result) > 0
        # Seed-deterministic like every other policy run.
        rerun = run(
            tiny_config(
                algorithm="fedavg-compressed",
                systems=SystemsConfig(
                    round_policy="deadline", deadline_seconds=1.0, **PRICING
                ),
            )
        )
        assert rerun.final_accuracy == result.final_accuracy

    def test_plan_unaware_trainers_refuse_non_sync_policies(self):
        """A policy the trainer cannot enforce must fail loudly, not
        silently misreport stragglers that were aggregated anyway."""
        for algorithm in ("lg-fedavg", "mtl", "standalone", "robust-fedavg"):
            with pytest.raises(ValueError, match="round plan"):
                Federation.from_config(
                    tiny_config(
                        algorithm=algorithm,
                        systems=SystemsConfig(
                            round_policy="deadline",
                            deadline_seconds=1.0,
                            **PRICING,
                        ),
                    )
                )
            # Synchronous simulation is observational and stays allowed.
            Federation.from_config(
                tiny_config(
                    algorithm=algorithm,
                    systems=SystemsConfig(round_policy="synchronous", **PRICING),
                )
            )

    def test_async_run_marks_busy_clients(self):
        config = tiny_config(
            rounds=4,
            systems=SystemsConfig(
                round_policy="async-buffer", buffer_size=1, **PRICING
            ),
        )
        federation = Federation.from_config(config)
        result = federation.run()
        assert all(r.simulated_seconds is not None for r in result.rounds)
        assert total_stragglers(result) > 0

    def test_seconds_to_accuracy_reads_simulated_time(self):
        result = run(
            tiny_config(systems=SystemsConfig(round_policy="synchronous", **PRICING))
        )
        target = result.rounds[0].mean_accuracy
        assert result.seconds_to_accuracy(target) == pytest.approx(
            result.rounds[0].simulated_seconds
        )
        assert simulated_time_to_accuracy(result, 2.0) is None


class TestPerClientTraffic:
    def test_subfedavg_records_carry_per_client_bytes(self):
        result = run(tiny_config(algorithm="sub-fedavg-un", systems=None))
        for record in result.rounds:
            assert record.client_uploaded_bytes is not None
            assert set(record.client_uploaded_bytes) == set(record.sampled_clients)
            assert sum(record.client_uploaded_bytes.values()) == pytest.approx(
                record.uploaded_bytes
            )
            assert sum(record.client_downloaded_bytes.values()) == pytest.approx(
                record.downloaded_bytes
            )

    def test_wall_clock_model_prices_per_client_when_available(self):
        model = WallClockModel(
            SCENARIO.build_fleet(4), flops_per_example=1e6, examples_per_round=100
        )
        from repro.federated import RoundRecord

        base = dict(round_index=1, sampled_clients=[0, 1], train_loss=1.0)

        even_split = RoundRecord(**base, uploaded_bytes=2e6, downloaded_bytes=2e6)
        skewed = RoundRecord(
            **base,
            uploaded_bytes=2e6,
            downloaded_bytes=2e6,
            client_uploaded_bytes={0: 0.2e6, 1: 1.8e6},
            client_downloaded_bytes={0: 0.2e6, 1: 1.8e6},
        )
        # The slow Pi (id 1) carries most of the bytes, so the skewed
        # round is strictly slower than the even-split approximation.
        assert model.round_seconds(skewed) > model.round_seconds(even_split)

    def test_history_serialization_roundtrips_new_fields(self):
        result = run(
            tiny_config(
                algorithm="sub-fedavg-un",
                systems=SystemsConfig(
                    round_policy="deadline", deadline_seconds=1.0, **PRICING
                ),
            )
        )
        restored = history_from_dict(
            json.loads(json.dumps(history_to_dict(result)))
        )
        for original, loaded in zip(result.rounds, restored.rounds):
            assert loaded.client_uploaded_bytes == original.client_uploaded_bytes
            assert loaded.simulated_seconds == original.simulated_seconds
            assert loaded.stragglers == original.stragglers


class TestPostHocCallback:
    def test_callback_annotates_a_plain_run(self):
        config = tiny_config(systems=None)
        federation = Federation.from_config(config)
        simulator = build_fleet_simulator(
            dataclasses.replace(
                config, systems=SystemsConfig(round_policy="synchronous", **PRICING)
            ),
            num_clients=config.num_clients,
        )
        callback = FleetSimCallback(simulator)
        result = federation.run(callbacks=[callback])
        assert all(r.simulated_seconds is not None for r in result.rounds)
        assert callback.total_seconds == pytest.approx(
            sum(r.simulated_seconds for r in result.rounds)
        )

    def test_posthoc_simulate_agrees_with_live_annotation_for_fedavg(self):
        """Dense traffic estimates are exact, so live == replayed."""
        config = tiny_config(
            systems=SystemsConfig(round_policy="synchronous", **PRICING)
        )
        federation = Federation.from_config(config)
        result = federation.run()
        replay = federation.trainer.fleet_sim.simulate(result)
        assert replay.round_seconds == [r.simulated_seconds for r in result.rounds]


class TestDiurnalSampler:
    def test_seed_determinism(self):
        a = DiurnalSampler(20, 0.5, seed=3)
        b = DiurnalSampler(20, 0.5, seed=3)
        assert [a.sample() for _ in range(5)] == [b.sample() for _ in range(5)]

    def test_day_night_cycle_modulates_availability(self):
        sampler = DiurnalSampler(
            10, 1.0, seed=0, amplitude=1.0, period_seconds=100.0, round_seconds=50.0
        )
        peak = sampler.availability(t=0.0)
        # Half a period later every client's availability flips.
        trough = sampler.availability(t=50.0)
        assert not np.allclose(peak, trough)
        # amplitude=0 collapses to flat availability.
        flat = DiurnalSampler(10, 1.0, seed=0, amplitude=0.0, participation=0.7)
        assert np.allclose(flat.availability(t=0.0), 0.7)
        assert np.allclose(flat.availability(t=12345.0), 0.7)

    def test_attached_clock_drives_time(self):
        sampler = DiurnalSampler(10, 0.5, seed=0, round_seconds=100.0)
        clock = SimClock()
        sampler.attach_clock(clock)
        assert sampler.now == 0.0
        clock.advance_to(777.0)
        assert sampler.now == 777.0

    def test_registered_and_buildable_from_scenario(self):
        from repro.federated.scenario import available_samplers, build_sampler

        assert "diurnal" in available_samplers()
        sampler = build_sampler(
            ScenarioConfig(sampler="diurnal", diurnal_amplitude=0.5),
            num_clients=8,
            sample_fraction=0.5,
            seed=0,
        )
        assert isinstance(sampler, DiurnalSampler)
        assert sampler.amplitude == 0.5

    def test_diurnal_run_with_fleet_sim_shares_the_clock(self):
        config = tiny_config(
            scenario=dataclasses.replace(SCENARIO, sampler="diurnal"),
            systems=SystemsConfig(round_policy="synchronous", **PRICING),
        )
        federation = Federation.from_config(config)
        assert federation.trainer.sampler._clock is federation.trainer.fleet_sim.clock
        result = federation.run()
        # The clock advanced while sampling, so the run is well-formed.
        assert federation.trainer.fleet_sim.clock.now > 0
        assert len(result.rounds) == config.rounds

    def test_never_returns_an_empty_round(self):
        sampler = DiurnalSampler(6, 0.5, seed=0, amplitude=1.0, participation=1.0)
        for _ in range(50):
            assert len(sampler.sample()) >= 1
