"""Optimizer semantics: update math, momentum, masking, schedules."""

import numpy as np
import pytest

from repro import nn
from repro.nn.module import Parameter
from repro.optim import SGD, Adam, CosineAnnealingLR, StepLR


def make_param(value):
    param = Parameter(np.array(value, dtype=np.float64))
    param.grad = np.ones_like(param.data)
    return param


class TestSGD:
    def test_vanilla_step(self):
        param = make_param([1.0, 2.0])
        SGD([("p", param)], lr=0.1).step()
        np.testing.assert_allclose(param.data, [0.9, 1.9])

    def test_momentum_accumulates(self):
        param = make_param([0.0])
        optimizer = SGD([("p", param)], lr=1.0, momentum=0.5)
        optimizer.step()  # v=1, p=-1
        param.grad = np.ones(1)
        optimizer.step()  # v=1.5, p=-2.5
        np.testing.assert_allclose(param.data, [-2.5])

    def test_weight_decay(self):
        param = make_param([2.0])
        param.grad = np.zeros(1)
        SGD([("p", param)], lr=0.1, weight_decay=0.5).step()
        np.testing.assert_allclose(param.data, [2.0 - 0.1 * 0.5 * 2.0])

    def test_skips_parameters_without_grad(self):
        param = Parameter(np.array([1.0]))
        SGD([("p", param)], lr=0.1).step()
        np.testing.assert_allclose(param.data, [1.0])

    def test_masked_coordinates_frozen(self):
        param = make_param([1.0, 1.0])
        param.data[1] = 0.0
        optimizer = SGD([("p", param)], lr=0.1, momentum=0.9)
        optimizer.set_masks({"p": np.array([1.0, 0.0])})
        for _ in range(3):
            param.grad = np.ones(2)
            optimizer.step()
        assert param.data[1] == 0.0
        assert param.data[0] < 1.0

    def test_set_masks_zeroes_existing_velocity(self):
        param = make_param([1.0, 1.0])
        optimizer = SGD([("p", param)], lr=0.1, momentum=0.9)
        optimizer.step()
        optimizer.set_masks({"p": np.array([1.0, 0.0])})
        assert optimizer._velocity["p"][1] == 0.0

    def test_mask_clearing(self):
        param = make_param([1.0])
        optimizer = SGD([("p", param)], lr=0.1)
        optimizer.set_masks({"p": np.array([0.0])})
        optimizer.set_masks(None)
        param.grad = np.ones(1)
        optimizer.step()
        assert param.data[0] != 1.0

    def test_zero_grad(self):
        param = make_param([1.0])
        optimizer = SGD([("p", param)], lr=0.1)
        optimizer.zero_grad()
        assert param.grad is None

    def test_accepts_bare_parameters(self):
        param = make_param([1.0])
        SGD([param], lr=0.1).step()

    def test_state_dict_roundtrip(self):
        param = make_param([1.0])
        optimizer = SGD([("p", param)], lr=0.1, momentum=0.9)
        optimizer.step()
        snapshot = optimizer.state_dict()
        optimizer2 = SGD([("p", param)], lr=0.1, momentum=0.9)
        optimizer2.load_state_dict(snapshot)
        np.testing.assert_allclose(optimizer2._velocity["p"], snapshot["p"])

    def test_invalid_hyperparams_raise(self):
        param = make_param([1.0])
        with pytest.raises(ValueError):
            SGD([param], lr=0.0)
        with pytest.raises(ValueError):
            SGD([param], lr=0.1, momentum=-1.0)
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_rejects_non_parameter(self):
        with pytest.raises(TypeError):
            SGD([np.zeros(3)], lr=0.1)


class TestAdam:
    def test_first_step_size(self):
        param = make_param([0.0])
        Adam([("p", param)], lr=0.001).step()
        np.testing.assert_allclose(param.data, [-0.001], atol=1e-6)

    def test_converges_on_quadratic(self):
        param = Parameter(np.array([5.0]))
        optimizer = Adam([("p", param)], lr=0.3)
        for _ in range(200):
            param.grad = 2 * param.data  # d/dx x^2
            optimizer.step()
        assert abs(param.data[0]) < 1e-2

    def test_respects_mask(self):
        param = make_param([1.0, 1.0])
        param.data[1] = 0.0
        optimizer = Adam([("p", param)], lr=0.1)
        optimizer.set_masks({"p": np.array([1.0, 0.0])})
        param.grad = np.ones(2)
        optimizer.step()
        assert param.data[1] == 0.0


class TestSchedulers:
    def test_step_lr(self):
        param = make_param([1.0])
        optimizer = SGD([param], lr=1.0)
        scheduler = StepLR(optimizer, step_size=2, gamma=0.1)
        scheduler.step()
        assert optimizer.lr == 1.0
        scheduler.step()
        np.testing.assert_allclose(optimizer.lr, 0.1)

    def test_cosine_endpoints(self):
        param = make_param([1.0])
        optimizer = SGD([param], lr=1.0)
        scheduler = CosineAnnealingLR(optimizer, t_max=10, eta_min=0.0)
        for _ in range(10):
            scheduler.step()
        np.testing.assert_allclose(optimizer.lr, 0.0, atol=1e-12)

    def test_cosine_monotone_decreasing(self):
        param = make_param([1.0])
        optimizer = SGD([param], lr=1.0)
        scheduler = CosineAnnealingLR(optimizer, t_max=5)
        values = []
        for _ in range(5):
            scheduler.step()
            values.append(optimizer.lr)
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_invalid_args(self):
        optimizer = SGD([make_param([1.0])], lr=1.0)
        with pytest.raises(ValueError):
            StepLR(optimizer, step_size=0)
        with pytest.raises(ValueError):
            CosineAnnealingLR(optimizer, t_max=0)


class TestTrainingIntegration:
    def test_linear_regression_converges(self, rng):
        """End-to-end: SGD on a linear model recovers planted weights."""
        true_w = np.array([[2.0, -1.0]])
        x = rng.normal(size=(100, 2))
        y = x @ true_w.T
        layer = nn.Linear(2, 1, rng=rng)
        optimizer = SGD(list(layer.named_parameters()), lr=0.1, momentum=0.5)
        loss_fn = nn.MSELoss()
        from repro.tensor import Tensor

        for _ in range(100):
            optimizer.zero_grad()
            loss = loss_fn(layer(Tensor(x)), y)
            loss.backward()
            optimizer.step()
        np.testing.assert_allclose(layer.weight.data, true_w, atol=0.05)
