"""Gradient clipping utilities."""

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.optim import clip_grad_norm, clip_grad_value, grad_norm


def param_with_grad(grad):
    param = Parameter(np.zeros_like(np.asarray(grad, dtype=np.float64)))
    param.grad = np.asarray(grad, dtype=np.float64)
    return param


class TestGradNorm:
    def test_joint_norm(self):
        params = [param_with_grad([3.0]), param_with_grad([4.0])]
        assert grad_norm(params) == pytest.approx(5.0)

    def test_skips_missing_grads(self):
        with_grad = param_with_grad([2.0])
        without = Parameter(np.zeros(1))
        assert grad_norm([with_grad, without]) == pytest.approx(2.0)

    def test_accepts_named_tuples(self):
        params = [("a", param_with_grad([1.0]))]
        assert grad_norm(params) == pytest.approx(1.0)


class TestClipGradNorm:
    def test_scales_down_when_over(self):
        params = [param_with_grad([3.0]), param_with_grad([4.0])]
        returned = clip_grad_norm(params, max_norm=1.0)
        assert returned == pytest.approx(5.0)
        assert grad_norm(params) == pytest.approx(1.0)

    def test_no_change_when_under(self):
        params = [param_with_grad([0.3])]
        clip_grad_norm(params, max_norm=1.0)
        np.testing.assert_allclose(params[0].grad, [0.3])

    def test_direction_preserved(self):
        params = [param_with_grad([6.0, -8.0])]
        clip_grad_norm(params, max_norm=5.0)
        np.testing.assert_allclose(params[0].grad, [3.0, -4.0])

    def test_invalid_max_norm(self):
        with pytest.raises(ValueError):
            clip_grad_norm([param_with_grad([1.0])], max_norm=0.0)


class TestClipGradValue:
    def test_clamps_in_place(self):
        param = param_with_grad([-5.0, 0.5, 7.0])
        clip_grad_value([param], max_value=1.0)
        np.testing.assert_allclose(param.grad, [-1.0, 0.5, 1.0])

    def test_invalid_max_value(self):
        with pytest.raises(ValueError):
            clip_grad_value([param_with_grad([1.0])], max_value=-1.0)
