"""Module container semantics: registration, state dicts, modes."""

import numpy as np
import pytest

from repro import nn
from repro.nn.module import Module, Parameter


class Leaf(Module):
    def __init__(self):
        super().__init__()
        self.weight = Parameter(np.ones((2, 2)))
        self.register_buffer("stat", np.zeros(2))

    def forward(self, x):
        return x @ self.weight.transpose()


class Parent(Module):
    def __init__(self):
        super().__init__()
        self.child = Leaf()
        self.other = Leaf()


class TestRegistration:
    def test_parameters_discovered_recursively(self):
        names = [name for name, _ in Parent().named_parameters()]
        assert names == ["child.weight", "other.weight"]

    def test_buffers_discovered(self):
        names = [name for name, _ in Parent().named_buffers()]
        assert names == ["child.stat", "other.stat"]

    def test_named_modules(self):
        names = [name for name, _ in Parent().named_modules()]
        assert names == ["", "child", "other"]

    def test_num_parameters(self):
        assert Parent().num_parameters() == 8

    def test_non_parameter_attrs_not_registered(self):
        module = Leaf()
        module.some_config = 42
        assert "some_config" not in dict(module.named_parameters())


class TestModes:
    def test_train_eval_propagate(self):
        parent = Parent()
        parent.eval()
        assert not parent.child.training
        parent.train()
        assert parent.other.training

    def test_zero_grad_clears_all(self):
        parent = Parent()
        for param in parent.parameters():
            param.grad = np.ones_like(param.data)
        parent.zero_grad()
        assert all(param.grad is None for param in parent.parameters())


class TestStateDict:
    def test_roundtrip(self, rng):
        source, target = Parent(), Parent()
        for param in source.parameters():
            param.data[...] = rng.normal(size=param.shape)
        target.load_state_dict(source.state_dict())
        for (_, a), (_, b) in zip(source.named_parameters(), target.named_parameters()):
            np.testing.assert_array_equal(a.data, b.data)

    def test_state_dict_is_a_copy(self):
        module = Leaf()
        state = module.state_dict()
        state["weight"][...] = 99.0
        assert module.weight.data[0, 0] == 1.0

    def test_buffers_in_state_dict(self):
        state = Leaf().state_dict()
        assert "stat" in state

    def test_load_strict_missing_raises(self):
        module = Leaf()
        state = module.state_dict()
        del state["weight"]
        with pytest.raises(KeyError, match="missing"):
            module.load_state_dict(state)

    def test_load_strict_unexpected_raises(self):
        module = Leaf()
        state = module.state_dict()
        state["bogus"] = np.zeros(1)
        with pytest.raises(KeyError, match="unexpected"):
            module.load_state_dict(state)

    def test_load_non_strict_ignores_mismatch(self):
        module = Leaf()
        state = module.state_dict()
        state["bogus"] = np.zeros(1)
        module.load_state_dict(state, strict=False)

    def test_load_shape_mismatch_raises(self):
        module = Leaf()
        state = module.state_dict()
        state["weight"] = np.zeros((3, 3))
        with pytest.raises(ValueError, match="shape"):
            module.load_state_dict(state)

    def test_buffer_load_preserves_identity(self):
        """Loading must update the same array BN ops mutate in place."""
        module = Leaf()
        buffer_before = module.stat
        state = module.state_dict()
        state["stat"] = np.array([5.0, 6.0])
        module.load_state_dict(state)
        assert module.stat is buffer_before
        np.testing.assert_array_equal(module.stat, [5.0, 6.0])

    def test_repr_contains_children(self):
        assert "child" in repr(Parent())
