"""Edge cases and failure injection across the nn/data substrate."""

import numpy as np
import pytest

from repro import nn
from repro.data import ArrayDataset, DataLoader, Subset
from repro.tensor import Tensor, batch_norm, conv2d, cross_entropy


class TestBatchNormEdgeCases:
    def test_batch_size_one_does_not_crash(self, rng):
        """count == 1 must not divide by zero in the unbiased-variance EMA."""
        layer = nn.BatchNorm1d(3)
        out = layer(Tensor(rng.normal(size=(1, 3))))
        assert np.isfinite(out.data).all()
        assert np.isfinite(layer.running_var).all()

    def test_constant_input_stable(self):
        layer = nn.BatchNorm2d(2)
        x = Tensor(np.full((4, 2, 3, 3), 5.0))
        out = layer(x)
        # Zero variance: output should be ~0, not NaN.
        assert np.isfinite(out.data).all()
        np.testing.assert_allclose(out.data, 0.0, atol=1e-2)

    def test_eval_before_any_training_uses_init_stats(self, rng):
        layer = nn.BatchNorm2d(2)
        layer.eval()
        x = rng.normal(size=(4, 2, 3, 3))
        out = layer(Tensor(x))
        expected = x / np.sqrt(1.0 + 1e-5)
        np.testing.assert_allclose(out.data, expected, atol=1e-6)


class TestConvEdgeCases:
    def test_batch_of_one(self, rng):
        out = conv2d(
            Tensor(rng.normal(size=(1, 1, 5, 5))),
            Tensor(rng.normal(size=(2, 1, 3, 3))),
            None,
        )
        assert out.shape == (1, 2, 3, 3)

    def test_1x1_kernel(self, rng):
        x = rng.normal(size=(2, 3, 4, 4))
        w = rng.normal(size=(5, 3, 1, 1))
        out = conv2d(Tensor(x), Tensor(w), None)
        expected = np.einsum("nchw,fc->nfhw", x, w[:, :, 0, 0])
        np.testing.assert_allclose(out.data, expected, atol=1e-10)

    def test_kernel_equals_input(self, rng):
        x = rng.normal(size=(1, 2, 3, 3))
        w = rng.normal(size=(4, 2, 3, 3))
        out = conv2d(Tensor(x), Tensor(w), None)
        assert out.shape == (1, 4, 1, 1)


class TestLossEdgeCases:
    def test_single_example(self, rng):
        loss = cross_entropy(Tensor(rng.normal(size=(1, 4)), requires_grad=True),
                             np.array([2]))
        assert loss.size == 1

    def test_single_class_logits(self):
        loss = cross_entropy(Tensor(np.zeros((3, 1))), np.array([0, 0, 0]))
        np.testing.assert_allclose(loss.item(), 0.0, atol=1e-12)

    def test_extreme_logits_finite(self):
        logits = Tensor(np.array([[1000.0, -1000.0]]), requires_grad=True)
        loss = cross_entropy(logits, np.array([1]))
        assert np.isfinite(loss.item())
        loss.backward()
        assert np.isfinite(logits.grad).all()


class TestDataEdgeCases:
    def test_empty_subset_loader(self):
        dataset = ArrayDataset(np.zeros((4, 1, 2, 2)), np.zeros(4))
        empty = Subset(dataset, [])
        loader = DataLoader(empty, batch_size=2)
        assert len(loader) == 0
        assert list(loader) == []

    def test_batch_larger_than_dataset(self):
        dataset = ArrayDataset(np.zeros((3, 1, 2, 2)), np.arange(3))
        loader = DataLoader(dataset, batch_size=10, shuffle=False)
        batches = list(loader)
        assert len(batches) == 1
        assert len(batches[0][1]) == 3

    def test_single_example_dataset(self):
        dataset = ArrayDataset(np.zeros((1, 1, 2, 2)), np.zeros(1))
        loader = DataLoader(dataset, batch_size=1)
        assert len(list(loader)) == 1


class TestModuleEdgeCases:
    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            nn.Module()(Tensor(np.zeros(1)))

    def test_empty_sequential(self, rng):
        model = nn.Sequential()
        x = Tensor(rng.normal(size=(2, 3)))
        assert model(x) is x

    def test_deep_nesting_state_dict(self, rng):
        inner = nn.Sequential(nn.Linear(2, 2, rng=rng))
        outer = nn.Sequential(inner, nn.Linear(2, 1, rng=rng))
        state = outer.state_dict()
        assert "0.0.weight" in state
        outer.load_state_dict(state)
