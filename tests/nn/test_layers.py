"""Layer behaviour: shapes, modes, initialization and containers."""

import math

import numpy as np
import pytest

from repro import nn
from repro.nn import init
from repro.tensor import Tensor, check_gradients


class TestLinear:
    def test_output_shape(self, rng):
        layer = nn.Linear(8, 3, rng=rng)
        out = layer(Tensor(rng.normal(size=(5, 8))))
        assert out.shape == (5, 3)

    def test_no_bias(self, rng):
        layer = nn.Linear(4, 2, bias=False, rng=rng)
        assert layer.bias is None
        assert [n for n, _ in layer.named_parameters()] == ["weight"]

    def test_affine_correctness(self, rng):
        layer = nn.Linear(3, 2, rng=rng)
        x = rng.normal(size=(4, 3))
        expected = x @ layer.weight.data.T + layer.bias.data
        np.testing.assert_allclose(layer(Tensor(x)).data, expected)

    def test_gradcheck_through_layer(self, rng):
        layer = nn.Linear(3, 2, rng=rng)
        x = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        check_gradients(lambda: layer(x).sum(), [x, layer.weight, layer.bias])


class TestConvLayer:
    def test_shape_with_padding(self, rng):
        layer = nn.Conv2d(3, 8, kernel_size=3, padding=1, rng=rng)
        out = layer(Tensor(rng.normal(size=(2, 3, 10, 10))))
        assert out.shape == (2, 8, 10, 10)

    def test_shape_valid_conv(self, rng):
        layer = nn.Conv2d(1, 4, kernel_size=5, rng=rng)
        out = layer(Tensor(rng.normal(size=(1, 1, 28, 28))))
        assert out.shape == (1, 4, 24, 24)

    def test_parameter_count(self, rng):
        layer = nn.Conv2d(3, 6, kernel_size=5, rng=rng)
        assert layer.num_parameters() == 6 * 3 * 25 + 6


class TestBatchNormLayers:
    def test_train_mode_uses_batch_stats(self, rng):
        layer = nn.BatchNorm2d(4)
        x = Tensor(rng.normal(loc=10.0, size=(8, 4, 3, 3)))
        out = layer(x)
        np.testing.assert_allclose(out.data.mean(axis=(0, 2, 3)), 0.0, atol=1e-8)

    def test_eval_mode_uses_running_stats(self, rng):
        layer = nn.BatchNorm2d(2)
        x = Tensor(rng.normal(loc=3.0, size=(32, 2, 4, 4)))
        for _ in range(50):
            layer(x)  # accumulate running stats
        layer.eval()
        out = layer(x)
        # After convergence of the EMA, eval output ~ train output.
        np.testing.assert_allclose(out.data.mean(axis=(0, 2, 3)), 0.0, atol=0.05)

    def test_running_stats_are_buffers(self):
        layer = nn.BatchNorm2d(3)
        state = layer.state_dict()
        assert "running_mean" in state and "running_var" in state

    def test_bn1d_on_2d_input(self, rng):
        layer = nn.BatchNorm1d(5)
        out = layer(Tensor(rng.normal(size=(10, 5))))
        assert out.shape == (10, 5)


class TestContainers:
    def test_sequential_order_and_len(self, rng):
        model = nn.Sequential(nn.Linear(4, 8, rng=rng), nn.ReLU(), nn.Linear(8, 2, rng=rng))
        assert len(model) == 3
        assert isinstance(model[1], nn.ReLU)
        out = model(Tensor(rng.normal(size=(3, 4))))
        assert out.shape == (3, 2)

    def test_flatten(self, rng):
        out = nn.Flatten()(Tensor(rng.normal(size=(2, 3, 4, 4))))
        assert out.shape == (2, 48)

    def test_relu_tanh(self):
        x = Tensor(np.array([-1.0, 2.0]))
        np.testing.assert_allclose(nn.ReLU()(x).data, [0.0, 2.0])
        np.testing.assert_allclose(nn.Tanh()(x).data, np.tanh([-1.0, 2.0]))

    def test_sequential_parameters_flow(self, rng):
        model = nn.Sequential(nn.Linear(4, 4, rng=rng), nn.Linear(4, 2, rng=rng))
        assert len(list(model.parameters())) == 4


class TestInit:
    def test_kaiming_bound(self, rng):
        shape = (64, 32)
        weights = init.kaiming_uniform(shape, rng)
        gain = math.sqrt(2.0 / (1.0 + 5.0))
        bound = gain * math.sqrt(3.0 / 32)
        assert np.abs(weights).max() <= bound

    def test_conv_fan_in(self, rng):
        weights = init.kaiming_uniform((8, 4, 3, 3), rng)
        assert weights.shape == (8, 4, 3, 3)

    def test_xavier_bound(self, rng):
        shape = (10, 20)
        weights = init.xavier_uniform(shape, rng)
        bound = math.sqrt(6.0 / 30)
        assert np.abs(weights).max() <= bound

    def test_bias_uniform_shape(self, rng):
        bias = init.bias_uniform((6, 3, 5, 5), rng)
        assert bias.shape == (6,)
        assert np.abs(bias).max() <= 1.0 / math.sqrt(75)

    def test_bad_shape_raises(self, rng):
        with pytest.raises(ValueError):
            init.kaiming_uniform((3,), rng)

    def test_determinism_given_seed(self):
        a = init.kaiming_uniform((4, 4), np.random.default_rng(7))
        b = init.kaiming_uniform((4, 4), np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)


class TestLosses:
    def test_cross_entropy_module(self, rng):
        loss = nn.CrossEntropyLoss()(
            Tensor(rng.normal(size=(4, 3)), requires_grad=True), np.array([0, 1, 2, 0])
        )
        assert loss.size == 1

    def test_mse(self):
        loss = nn.MSELoss()(Tensor([1.0, 2.0]), np.array([0.0, 0.0]))
        np.testing.assert_allclose(loss.item(), 2.5)

    def test_l1(self):
        loss = nn.L1Loss()(Tensor([1.0, -2.0]), np.array([0.0, 0.0]))
        np.testing.assert_allclose(loss.item(), 1.5)

    def test_mse_grad(self, rng):
        pred = Tensor(rng.normal(size=(3,)), requires_grad=True)
        check_gradients(lambda: nn.MSELoss()(pred, np.zeros(3)), [pred])
