"""PruningController gating: the truth table of Algorithms 1-2."""

import numpy as np
import pytest

from repro.models import CNN5, MLP
from repro.pruning import (
    PruningController,
    StructuredConfig,
    UnstructuredConfig,
)


def make_controller(rng, target=0.5, step=0.25, epsilon=0.0, acc_threshold=0.5,
                    structured=False):
    model = CNN5(rng=rng)
    un = UnstructuredConfig(
        target_rate=target, step=step, epsilon=epsilon, acc_threshold=acc_threshold
    )
    st = StructuredConfig(target_rate=0.4, step=0.2, epsilon=0.0) if structured else None
    return PruningController(model, unstructured=un, structured=st), model


def perturb(model, rng):
    """Shift weights so first/last snapshots differ."""
    for _, param in model.named_parameters():
        param.data += rng.normal(scale=0.1, size=param.shape)


class TestGating:
    def test_commits_when_all_gates_pass(self, rng):
        controller, model = make_controller(rng)
        first = controller.snapshot()
        perturb(model, rng)
        last = controller.snapshot()
        decision = controller.update(val_accuracy=0.9, first=first, last=last)
        assert decision.unstructured_applied
        assert controller.un_rate == pytest.approx(0.25)

    def test_blocked_by_low_accuracy(self, rng):
        controller, model = make_controller(rng, acc_threshold=0.8)
        first = controller.snapshot()
        perturb(model, rng)
        last = controller.snapshot()
        decision = controller.update(val_accuracy=0.5, first=first, last=last)
        assert not decision.unstructured_applied
        assert controller.un_rate == 0.0

    def test_blocked_by_mask_distance(self, rng):
        controller, model = make_controller(rng, epsilon=0.9)
        first = controller.snapshot()
        perturb(model, rng)
        last = controller.snapshot()
        decision = controller.update(val_accuracy=1.0, first=first, last=last)
        assert not decision.unstructured_applied
        assert decision.unstructured_distance < 0.9

    def test_blocked_at_target(self, rng):
        controller, model = make_controller(rng, target=0.25, step=0.25)
        first = controller.snapshot()
        perturb(model, rng)
        last = controller.snapshot()
        controller.update(1.0, first, last)
        assert controller.un_rate == pytest.approx(0.25)
        # Second attempt: target reached, must not move.
        first = controller.snapshot()
        perturb(model, rng)
        last = controller.snapshot()
        decision = controller.update(1.0, first, last)
        assert not decision.unstructured_applied
        assert controller.un_rate == pytest.approx(0.25)

    def test_rate_caps_at_target(self, rng):
        controller, model = make_controller(rng, target=0.3, step=0.25)
        for _ in range(4):
            first = controller.snapshot()
            perturb(model, rng)
            last = controller.snapshot()
            controller.update(1.0, first, last)
        assert controller.un_rate == pytest.approx(0.3)
        assert controller.unstructured_sparsity() <= 0.3 + 1e-9

    def test_history_recorded(self, rng):
        controller, model = make_controller(rng)
        first = controller.snapshot()
        last = controller.snapshot()
        controller.update(1.0, first, last)
        assert len(controller.history) == 1


class TestSparsityEvolution:
    def test_sparsity_monotone_nondecreasing(self, rng):
        controller, model = make_controller(rng, target=0.7, step=0.2)
        values = [controller.unstructured_sparsity()]
        for _ in range(5):
            first = controller.snapshot()
            perturb(model, rng)
            last = controller.snapshot()
            controller.update(1.0, first, last)
            controller.combined_mask().apply_to_model(model)
            values.append(controller.unstructured_sparsity())
        assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))

    def test_masks_nested_over_time(self, rng):
        """Committed masks shrink monotonically: once pruned, always pruned."""
        controller, model = make_controller(rng, target=0.6, step=0.3)
        previous = controller.un_mask.copy()
        for _ in range(3):
            first = controller.snapshot()
            perturb(model, rng)
            last = controller.snapshot()
            controller.update(1.0, first, last)
            current = controller.un_mask
            for name in current.names():
                assert ((current[name] == 1) <= (previous[name] == 1)).all()
            previous = current.copy()


class TestHybridIndependence:
    def test_structured_branch_independent(self, rng):
        """Algorithm 2: one branch can commit while the other is blocked."""
        model = CNN5(rng=rng)
        un = UnstructuredConfig(target_rate=0.5, step=0.25, epsilon=float("inf"))
        st = StructuredConfig(target_rate=0.4, step=0.2, epsilon=0.0)
        controller = PruningController(model, unstructured=un, structured=st)
        first = controller.snapshot()
        perturb(model, rng)
        last = controller.snapshot()
        decision = controller.update(1.0, first, last)
        assert not decision.unstructured_applied  # infinite epsilon blocks
        assert decision.structured_applied

    def test_hybrid_un_covers_fc_only(self, rng):
        model = CNN5(rng=rng)
        controller = PruningController(
            model,
            unstructured=UnstructuredConfig(),
            structured=StructuredConfig(),
        )
        assert set(controller.un_names) == set(model.fc_weight_names())

    def test_pure_un_covers_all_weights(self, rng):
        model = CNN5(rng=rng)
        controller = PruningController(model, unstructured=UnstructuredConfig())
        assert set(controller.un_names) == set(model.prunable_weight_names())

    def test_combined_mask_intersects_branches(self, rng):
        model = CNN5(rng=rng)
        controller = PruningController(
            model,
            unstructured=UnstructuredConfig(target_rate=0.5, step=0.5, epsilon=0.0),
            structured=StructuredConfig(target_rate=0.4, step=0.4, epsilon=0.0),
        )
        first = controller.snapshot()
        perturb(model, rng)
        last = controller.snapshot()
        controller.update(1.0, first, last)
        combined = controller.combined_mask()
        assert "conv1.weight" in combined  # structured expansion present
        assert "fc1.weight" in combined  # unstructured branch present
        assert controller.channel_sparsity() > 0.0


class TestValidation:
    def test_requires_some_branch(self, rng):
        with pytest.raises(ValueError):
            PruningController(CNN5(rng=rng))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            UnstructuredConfig(target_rate=1.0)
        with pytest.raises(ValueError):
            UnstructuredConfig(step=0.0)
        with pytest.raises(ValueError):
            StructuredConfig(target_rate=-0.1)

    def test_mlp_structured_free(self, rng):
        """An MLP (no conv units) works with unstructured-only pruning."""
        model = MLP(8, 2, hidden=(6,), rng=rng)
        controller = PruningController(
            model, unstructured=UnstructuredConfig(target_rate=0.5, step=0.5, epsilon=0.0)
        )
        first = controller.snapshot()
        for _, param in model.named_parameters():
            param.data += rng.normal(scale=0.1, size=param.shape)
        last = controller.snapshot()
        decision = controller.update(1.0, first, last)
        assert decision.unstructured_applied
