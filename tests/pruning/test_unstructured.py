"""Magnitude-mask derivation: exact counts, scopes, monotonicity."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.pruning import MaskSet, magnitude_mask, random_mask, sparsity_of


class TestMagnitudeMask:
    def test_prunes_exact_fraction(self):
        state = {"w": np.arange(1.0, 11.0)}  # distinct magnitudes 1..10
        masks = magnitude_mask(state, ["w"], rate=0.3)
        assert masks.sparsity() == pytest.approx(0.3)
        np.testing.assert_array_equal(masks["w"][:3], [0, 0, 0])
        np.testing.assert_array_equal(masks["w"][3:], np.ones(7))

    def test_uses_absolute_value(self):
        state = {"w": np.array([-10.0, 0.1, 5.0, -0.2])}
        masks = magnitude_mask(state, ["w"], rate=0.5)
        np.testing.assert_array_equal(masks["w"], [1, 0, 1, 0])

    def test_zero_rate_keeps_all(self, rng):
        state = {"w": rng.normal(size=20)}
        masks = magnitude_mask(state, ["w"], rate=0.0)
        assert masks.sparsity() == 0.0

    def test_global_scope_ranks_jointly(self):
        state = {"small": np.full(5, 0.1), "big": np.full(5, 10.0)}
        masks = magnitude_mask(state, ["small", "big"], rate=0.5, scope="global")
        assert masks["small"].sum() == 0  # all small weights pruned
        assert masks["big"].sum() == 5

    def test_layer_scope_ranks_per_tensor(self):
        state = {"small": np.arange(1.0, 5.0), "big": np.arange(10.0, 14.0)}
        masks = magnitude_mask(state, ["small", "big"], rate=0.5, scope="layer")
        assert masks["small"].sum() == 2
        assert masks["big"].sum() == 2

    def test_previous_mask_enforced(self):
        state = {"w": np.array([5.0, 4.0, 3.0, 2.0])}
        previous = MaskSet({"w": np.array([0, 1, 1, 1])})
        masks = magnitude_mask(state, ["w"], rate=0.25, previous=previous)
        assert masks["w"][0] == 0  # stays pruned despite large magnitude

    def test_monotone_in_rate(self, rng):
        state = {"w": rng.normal(size=100)}
        low = magnitude_mask(state, ["w"], rate=0.2)
        high = magnitude_mask(state, ["w"], rate=0.6)
        # Everything pruned at 20% is also pruned at 60%.
        assert ((high["w"] == 1) <= (low["w"] == 1)).all()

    def test_invalid_rate_raises(self):
        with pytest.raises(ValueError):
            magnitude_mask({"w": np.ones(3)}, ["w"], rate=1.0)
        with pytest.raises(ValueError):
            magnitude_mask({"w": np.ones(3)}, ["w"], rate=-0.1)

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            magnitude_mask({"w": np.ones(3)}, ["v"], rate=0.5)

    def test_unknown_scope_raises(self):
        with pytest.raises(ValueError):
            magnitude_mask({"w": np.ones(3)}, ["w"], rate=0.5, scope="bogus")

    @settings(max_examples=40, deadline=None)
    @given(
        rate=st.floats(min_value=0.0, max_value=0.95),
        size=st.integers(min_value=1, max_value=200),
    )
    def test_property_sparsity_close_to_rate(self, rate, size):
        rng = np.random.default_rng(0)
        state = {"w": rng.normal(size=size)}
        masks = magnitude_mask(state, ["w"], rate=rate)
        expected = np.floor(rate * size) / size
        assert masks.sparsity() == pytest.approx(expected, abs=1e-12)

    @settings(max_examples=30, deadline=None)
    @given(rate=st.floats(min_value=0.0, max_value=0.9))
    def test_property_kept_entries_dominate_pruned(self, rate):
        rng = np.random.default_rng(1)
        state = {"w": rng.normal(size=64)}
        masks = magnitude_mask(state, ["w"], rate=rate)
        kept = np.abs(state["w"][masks["w"] == 1])
        pruned = np.abs(state["w"][masks["w"] == 0])
        if len(kept) and len(pruned):
            assert kept.min() >= pruned.max()


class TestHelpers:
    def test_sparsity_of(self):
        state = {"w": np.array([0.0, 1.0, 0.0, 2.0])}
        assert sparsity_of(state, ["w"]) == 0.5

    def test_sparsity_of_empty(self):
        assert sparsity_of({}, []) == 0.0

    def test_random_mask_rate(self):
        rng = np.random.default_rng(0)
        masks = random_mask({"w": (100, 100)}, rate=0.3, rng=rng)
        assert masks.sparsity() == pytest.approx(0.3, abs=0.02)

    def test_random_mask_invalid_rate(self):
        with pytest.raises(ValueError):
            random_mask({"w": (3,)}, rate=1.5, rng=np.random.default_rng(0))
