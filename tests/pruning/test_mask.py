"""MaskSet algebra and the Hamming mask distance, with property tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.models import MLP
from repro.pruning import MaskSet, hamming_distance

binary_arrays = hnp.arrays(
    dtype=np.int64,
    shape=hnp.array_shapes(min_dims=1, max_dims=2, min_side=1, max_side=6),
    elements=st.integers(min_value=0, max_value=1),
)


class TestMaskSetBasics:
    def test_set_get_contains(self):
        masks = MaskSet()
        masks["w"] = np.array([1, 0, 1])
        assert "w" in masks
        np.testing.assert_array_equal(masks["w"], [1.0, 0.0, 1.0])

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError, match="0/1"):
            MaskSet({"w": np.array([0.5, 1.0])})

    def test_counts(self):
        masks = MaskSet({"a": np.array([1, 0, 0, 1]), "b": np.ones(4)})
        assert masks.kept() == 6
        assert masks.total() == 8
        assert masks.sparsity() == 0.25
        assert masks.density() == 0.75

    def test_empty_sparsity_zero(self):
        assert MaskSet().sparsity() == 0.0

    def test_copy_is_deep(self):
        masks = MaskSet({"a": np.array([1.0, 0.0])})
        clone = masks.copy()
        clone["a"][0] = 0.0
        assert masks["a"][0] == 1.0

    def test_equality(self):
        a = MaskSet({"w": np.array([1, 0])})
        b = MaskSet({"w": np.array([1, 0])})
        c = MaskSet({"w": np.array([1, 1])})
        assert a == b
        assert a != c
        assert a != MaskSet({"v": np.array([1, 0])})

    def test_for_model(self, rng):
        model = MLP(4, 2, hidden=(3,), rng=rng)
        masks = MaskSet.for_model(model)
        assert masks.total() == model.num_parameters()
        assert masks.sparsity() == 0.0

    def test_for_model_subset(self, rng):
        model = MLP(4, 2, hidden=(3,), rng=rng)
        masks = MaskSet.for_model(model, ["fc1.weight"])
        assert list(masks.names()) == ["fc1.weight"]

    def test_ones_like(self):
        masks = MaskSet.ones_like({"w": (2, 3)})
        assert masks["w"].shape == (2, 3)


class TestMaskAlgebra:
    def test_intersect(self):
        a = MaskSet({"w": np.array([1, 1, 0])})
        b = MaskSet({"w": np.array([1, 0, 0])})
        np.testing.assert_array_equal(a.intersect(b)["w"], [1, 0, 0])

    def test_intersect_missing_treated_dense(self):
        a = MaskSet({"w": np.array([1, 0])})
        b = MaskSet({"v": np.array([0, 1])})
        merged = a.intersect(b)
        np.testing.assert_array_equal(merged["w"], [1, 0])
        np.testing.assert_array_equal(merged["v"], [0, 1])

    def test_union(self):
        a = MaskSet({"w": np.array([1, 0, 0])})
        b = MaskSet({"w": np.array([0, 1, 0])})
        np.testing.assert_array_equal(a.union(b)["w"], [1, 1, 0])

    @settings(max_examples=30, deadline=None)
    @given(binary_arrays, binary_arrays)
    def test_property_intersection_subset(self, a, b):
        if a.shape != b.shape:
            b = np.resize(b, a.shape)
        ma, mb = MaskSet({"w": a}), MaskSet({"w": b})
        inter = ma.intersect(mb)["w"]
        assert (inter <= ma["w"]).all()
        assert (inter <= mb["w"]).all()

    @settings(max_examples=30, deadline=None)
    @given(binary_arrays)
    def test_property_intersect_idempotent(self, a):
        masks = MaskSet({"w": a})
        assert masks.intersect(masks) == masks

    @settings(max_examples=30, deadline=None)
    @given(binary_arrays)
    def test_property_union_intersect_absorption(self, a):
        masks = MaskSet({"w": a})
        assert masks.union(masks.intersect(masks)) == masks


class TestApplication:
    def test_apply_to_model_zeros(self, rng):
        model = MLP(4, 2, hidden=(3,), rng=rng)
        masks = MaskSet({"fc1.weight": np.zeros((3, 4))})
        masks.apply_to_model(model)
        np.testing.assert_array_equal(model.fc1.weight.data, np.zeros((3, 4)))
        assert not np.allclose(model.fc2.weight.data, 0.0)

    def test_apply_unknown_name_raises(self, rng):
        model = MLP(4, 2, rng=rng)
        with pytest.raises(KeyError):
            MaskSet({"bogus": np.ones(3)}).apply_to_model(model)

    def test_apply_to_state_copies(self):
        state = {"w": np.ones(3)}
        masked = MaskSet({"w": np.array([1, 0, 1])}).apply_to_state(state)
        np.testing.assert_array_equal(masked["w"], [1, 0, 1])
        np.testing.assert_array_equal(state["w"], [1, 1, 1])  # untouched

    def test_as_grad_masks_shares_arrays(self):
        masks = MaskSet({"w": np.array([1.0, 0.0])})
        assert masks.as_grad_masks()["w"] is masks["w"]


class TestHammingDistance:
    def test_identical_is_zero(self):
        masks = MaskSet({"w": np.array([1, 0, 1])})
        assert hamming_distance(masks, masks) == 0.0

    def test_normalized_value(self):
        a = MaskSet({"w": np.array([1, 1, 1, 1])})
        b = MaskSet({"w": np.array([1, 0, 1, 0])})
        assert hamming_distance(a, b) == 0.5

    def test_unnormalized(self):
        a = MaskSet({"w": np.array([1, 1])})
        b = MaskSet({"w": np.array([0, 0])})
        assert hamming_distance(a, b, normalized=False) == 2.0

    def test_missing_name_compared_to_ones(self):
        a = MaskSet({"w": np.array([1, 1])})
        b = MaskSet()
        assert hamming_distance(a, b) == 0.0
        a2 = MaskSet({"w": np.array([0, 0])})
        assert hamming_distance(a2, b) == 1.0

    def test_empty_sets(self):
        assert hamming_distance(MaskSet(), MaskSet()) == 0.0

    def test_shape_mismatch_raises(self):
        a = MaskSet({"w": np.array([1, 1])})
        b = MaskSet({"w": np.array([1, 1, 1])})
        with pytest.raises(ValueError):
            hamming_distance(a, b)

    @settings(max_examples=30, deadline=None)
    @given(binary_arrays, binary_arrays)
    def test_property_symmetry(self, a, b):
        if a.shape != b.shape:
            b = np.resize(b, a.shape)
        ma, mb = MaskSet({"w": a}), MaskSet({"w": b})
        assert hamming_distance(ma, mb) == hamming_distance(mb, ma)

    @settings(max_examples=30, deadline=None)
    @given(binary_arrays)
    def test_property_zero_iff_equal(self, a):
        masks = MaskSet({"w": a})
        assert hamming_distance(masks, masks.copy()) == 0.0
